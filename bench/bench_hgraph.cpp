// E9 — the formal-specification machinery itself: "the precise formal
// definitions are then used as the basis for simulations of the various
// virtual machine levels" (Formal Specification of Virtual Machines).
//
// Measures the cost of grammar-conformance checking on reflected VM-layer
// states of growing size, and of checked transform application — i.e.
// whether running the formal specs alongside the system is affordable.
// Uses google-benchmark for the host-side kernels, preceded by a scaling
// table.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "fem/mesh.hpp"
#include "spec/layers.hpp"
#include "spec/reflect.hpp"
#include "spec/transforms.hpp"
#include "support/table.hpp"

using namespace fem2;

namespace {

fem::StructureModel plate_model(std::size_t nx, std::size_t ny) {
  fem::PlateMeshOptions options;
  options.nx = nx;
  options.ny = ny;
  return fem::make_cantilever_plate(options, 100.0);
}

void scaling_table() {
  support::Table table(
      "Grammar conformance of reflected layer-1 states (single check)");
  table.set_header({"grid", "H-graph nodes", "H-graph bytes", "conforms"});
  const auto grammar = spec::appvm_grammar();
  std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {4, 2}, {8, 4}, {16, 8}, {32, 16}, {64, 32}};
  if (bench::smoke()) grids = {{4, 2}, {8, 4}, {16, 8}};
  for (const auto& [nx, ny] : grids) {
    hgraph::HGraph g;
    const auto root = spec::reflect_model(g, plate_model(nx, ny));
    const auto check = grammar.conforms(g, root, "structure");
    table.row()
        .cell(std::to_string(nx) + "x" + std::to_string(ny))
        .cell(static_cast<std::uint64_t>(g.node_count()))
        .cell(static_cast<std::uint64_t>(g.storage_bytes()))
        .cell(check ? "yes" : "NO");
    const std::string grid = std::to_string(nx) + "x" + std::to_string(ny);
    bench::note("hgraph_nodes_" + grid,
                static_cast<double>(g.node_count()), "nodes");
    bench::note("hgraph_bytes_" + grid,
                static_cast<double>(g.storage_bytes()), "bytes");
  }
  table.print(std::cout);
  std::cout << "\n";
}

void bm_reflect_model(benchmark::State& state) {
  const auto model = plate_model(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)) / 2);
  for (auto _ : state) {
    hgraph::HGraph g;
    benchmark::DoNotOptimize(spec::reflect_model(g, model));
  }
}
BENCHMARK(bm_reflect_model)->Arg(8)->Arg(16)->Arg(32);

void bm_conformance_check(benchmark::State& state) {
  const auto model = plate_model(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)) / 2);
  hgraph::HGraph g;
  const auto root = spec::reflect_model(g, model);
  const auto grammar = spec::appvm_grammar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(grammar.conforms(g, root, "structure"));
  }
}
BENCHMARK(bm_conformance_check)->Arg(8)->Arg(16)->Arg(32);

void bm_transform_generate_grid(benchmark::State& state) {
  const auto registry = spec::make_appvm_transforms();
  for (auto _ : state) {
    hgraph::HGraph g;
    const auto name_arg = g.add_node();
    g.add_arc(name_arg, "name", g.add_string("bench"));
    const auto model = registry.apply("define-structure-model", g, name_arg);
    const auto grid_arg = g.add_node();
    g.add_arc(grid_arg, "model", model);
    g.add_arc(grid_arg, "nx", g.add_int(state.range(0)));
    g.add_arc(grid_arg, "ny", g.add_int(state.range(0) / 2));
    g.add_arc(grid_arg, "width", g.add_real(1.0));
    g.add_arc(grid_arg, "height", g.add_real(1.0));
    benchmark::DoNotOptimize(registry.apply("generate-grid", g, grid_arg));
  }
}
BENCHMARK(bm_transform_generate_grid)->Arg(4)->Arg(8)->Arg(16);

void bm_grammar_parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::appvm_grammar());
    benchmark::DoNotOptimize(spec::sysvm_grammar());
    benchmark::DoNotOptimize(spec::navm_grammar());
    benchmark::DoNotOptimize(spec::hw_grammar());
  }
}
BENCHMARK(bm_grammar_parse);

}  // namespace

int main(int argc, char** argv) {
  bench::init("E9", argc, argv);
  std::cout << "======================================================="
               "=====================\n"
               "E9 bench_hgraph — cost of the executable formal "
               "specifications\n"
               "======================================================="
               "=====================\n";
  scaling_table();
  if (!bench::smoke()) {
    // google-benchmark owns the remaining flags; drop ours before handing
    // argv over.  Smoke runs skip the host-kernel timing loops entirely —
    // the scaling table already exercises the code.
    std::vector<char*> pass_through;
    for (int i = 0; i < argc; ++i) {
      if (std::string_view(argv[i]) != "--smoke")
        pass_through.push_back(argv[i]);
    }
    int pass_argc = static_cast<int>(pass_through.size());
    benchmark::Initialize(&pass_argc, pass_through.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  std::cout << "\nShape check: conformance checking is linear in reflected "
               "state size —\ncheap enough to run alongside every "
               "simulation step in the tests.\n";
  return bench::finish();
}
