// E13 — commit throughput and recovery under injected storage faults:
// the price of surviving a flaky disk.  A single session commits a fixed
// number of transactions through a FaultVfs whose plan fails 0%, 1% or
// 10% of all fsyncs (seeded, deterministic).  Every failed fsync drives
// the engine through the full fail-safe cycle: the commit is rejected,
// the engine enters sticky read-only degraded mode, the driver calls
// recover() (snapshot load + full log replay) and retries the commit.
//
// Reported per failure rate: acked commit throughput (wall time includes
// the in-line recoveries), the number of recoveries (deterministic: one
// per fired fault), and the cold recovery time of a fresh engine over
// the surviving directory after a simulated power loss.
#include "bench_common.hpp"

#include <chrono>
#include <filesystem>

#include "db/engine.hpp"
#include "db/iofault.hpp"

using namespace fem2;

namespace {

constexpr std::size_t kNamePool = 64;
constexpr std::size_t kPayloadBytes = 1024;

std::size_t total_commits() { return bench::smoke() ? 256 : 2048; }

struct Outcome {
  double elapsed_ms = 0.0;
  std::uint64_t acked = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t faults_fired = 0;
  double recovery_ms = 0.0;
  std::uint64_t recovered_txns = 0;
};

Outcome run_rate(const std::filesystem::path& dir, std::size_t percent) {
  const std::size_t commits = total_commits();
  db::IoFaultPlan plan;
  if (percent > 0)
    plan = db::IoFaultPlan::random_fsync_failures(
        commits * percent / 100, commits, 0xc4a05ULL + percent);
  auto vfs = std::make_shared<db::FaultVfs>(plan);

  db::EngineOptions options;
  options.directory = dir.string();
  options.compact_after_bytes = 0;  // keep the whole log for recovery
  options.vfs = vfs;

  const std::string payload(kPayloadBytes, 'm');
  Outcome out;
  const auto start = std::chrono::steady_clock::now();
  {
    db::Engine engine(options);
    for (std::size_t i = 0; i < commits; ++i) {
      const auto name = "entry-" + std::to_string(i % kNamePool);
      for (;;) {
        try {
          engine.put(name, "model", payload);
          out.acked += 1;
          break;
        } catch (const db::IoError&) {
          // The commit fsync failed: the engine is read-only until it
          // re-opens from durable state.
          if (engine.degraded()) {
            engine.recover();
            out.recoveries += 1;
          }
        } catch (const db::DegradedError&) {
          engine.recover();
          out.recoveries += 1;
        }
      }
    }
  }
  const auto mid = std::chrono::steady_clock::now();
  out.elapsed_ms =
      std::chrono::duration<double, std::milli>(mid - start).count();
  out.faults_fired = vfs->faults_fired();

  // Power loss, then a cold open over whatever is durable.
  vfs->crash_to_durable();
  db::EngineOptions cold;
  cold.directory = dir.string();
  const auto t0 = std::chrono::steady_clock::now();
  db::Engine recovered(cold);
  const auto t1 = std::chrono::steady_clock::now();
  out.recovery_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.recovered_txns = recovered.stats().recovered_txns;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E13", argc, argv);
  std::cout << "E13: fem2-db commit throughput under injected fsync faults\n"
            << "     " << total_commits() << " acked commits per rate, "
            << kPayloadBytes
            << "-byte payloads; each fired fault costs one full\n"
            << "     degrade + recover() cycle in-line\n\n";

  const auto base = std::filesystem::temp_directory_path() / "fem2_bench_chaos";
  std::filesystem::remove_all(base);

  support::Table table("throughput and recovery by injected fsync-failure rate");
  table.set_header({"fail-%", "acked", "faults", "recoveries", "elapsed-ms",
                    "commits/s", "cold-recovery-ms", "replayed-txns"});

  for (const std::size_t percent : {0u, 1u, 10u}) {
    const auto dir = base / ("f" + std::to_string(percent));
    const auto outcome = run_rate(dir, percent);
    const double commits_per_s =
        1000.0 * static_cast<double>(outcome.acked) / outcome.elapsed_ms;
    table.row()
        .cell(static_cast<std::uint64_t>(percent))
        .cell(outcome.acked)
        .cell(outcome.faults_fired)
        .cell(outcome.recoveries)
        .cell(outcome.elapsed_ms, 1)
        .cell(commits_per_s, 0)
        .cell(outcome.recovery_ms, 2)
        .cell(outcome.recovered_txns);
    const auto tag = "_f" + std::to_string(percent);
    bench::note("commits_per_s" + tag, commits_per_s, "commits/s");
    bench::note("recovery_ms" + tag, outcome.recovery_ms, "ms");
    bench::note("recoveries" + tag, static_cast<double>(outcome.recoveries),
                "iters");
  }
  table.print(std::cout);
  std::filesystem::remove_all(base);

  std::cout
      << "\nReading: every acked commit survives every run — the fault rate\n"
         "buys latency, never lost data.  At 1% the in-line recoveries are\n"
         "noise; at 10% throughput drops roughly with the cost of replaying\n"
         "the accumulated log once per fault (recovery work grows with log\n"
         "volume, so un-checkpointed logs make faults progressively more\n"
         "expensive — exactly why the checkpointer exists).\n";
  return bench::finish();
}
