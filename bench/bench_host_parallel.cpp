// E12 — deterministic multi-threaded host execution.  The engine shards
// its event queues per cluster and runs window-synchronous parallel phases
// (lookahead = the 150-cycle network launch latency), so the same
// simulation at FEM2_HOST_THREADS = 1/2/4/8 must produce bit-identical
// machine metrics, OS stats and results; only host wall-clock may change.
//
// Three workloads: the E1-style distributed solve, the E2-style
// multi-problem user level, and the E5-style solve with a mid-run cluster
// loss under reliable transport.
#include "bench_common.hpp"

#include <chrono>
#include <functional>

#include "fem/assembly.hpp"

using namespace fem2;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  hw::Cycles cycles = 0;
  std::string fingerprint;
};

RunResult time_run(unsigned threads,
                   const std::function<void(bench::Stack&)>& body,
                   const hw::MachineConfig& config,
                   const sysvm::OsOptions& options) {
  bench::Stack stack(config, options);
  stack.machine->engine().set_threads(threads);
  const auto start = std::chrono::steady_clock::now();
  body(stack);
  const auto stop = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  r.cycles = stack.machine->now();
  r.fingerprint =
      stack.machine->metrics().dump() + stack.os->metrics().dump();
  return r;
}

void sweep(const std::string& label, const std::string& title,
           const std::function<void(bench::Stack&)>& body,
           const hw::MachineConfig& config,
           const sysvm::OsOptions& options = {}) {
  support::Table table(title);
  table.set_header({"host threads", "host ms", "speedup",
                    "simulated cycles", "bit-identical"});
  std::vector<unsigned> threads = {1, 2, 4, 8};
  if (bench::smoke()) threads = {1, 2};

  RunResult base;
  for (const unsigned t : threads) {
    const auto r = time_run(t, body, config, options);
    if (t == threads.front()) base = r;
    const bool identical =
        r.cycles == base.cycles && r.fingerprint == base.fingerprint;
    table.row()
        .cell(static_cast<std::uint64_t>(t))
        .cell(r.wall_ms, 1)
        .cell(base.wall_ms / r.wall_ms, 2)
        .cell(static_cast<std::uint64_t>(r.cycles))
        .cell(identical ? "yes" : "NO");
    FEM2_CHECK(identical);
    bench::note(label + "_wall_ms_t" + std::to_string(t), r.wall_ms, "ms");
    if (t == threads.front())
      bench::note(label + "_cycles", static_cast<double>(r.cycles),
                  "cycles");
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E12", argc, argv);
  bench::print_header("E12 bench_host_parallel",
                      "multi-threaded host backend: bit-identical results, "
                      "lower wall-clock");

  const auto config = bench::machine_shape(4, 4);
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 16u : 32u, 8);

  // E1-style: one distributed solve.
  sweep("solve", "distributed solve (8 CG workers, 4 clusters x 4 PEs)",
        [&](bench::Stack& stack) {
          (void)fem::solve_static_parallel(model, "tip-shear",
                                           *stack.runtime,
                                           {.workers = 8, .tolerance = 1e-8});
        },
        config);

  // E2-style: four independent problems running concurrently.
  {
    const auto system = fem::assemble(model);
    const auto rhs = system.load_vector(model.load_sets.at("tip-shear"));
    sweep("multiuser",
          "user level: 4 independent problems launched together",
          [&](bench::Stack& stack) {
            std::vector<sysvm::TaskId> tasks;
            for (std::size_t i = 0; i < 4; ++i) {
              navm::CgProblem problem;
              problem.a = system.stiffness;
              problem.b = rhs;
              problem.workers = 4;
              problem.tolerance = 1e-8;
              tasks.push_back(stack.runtime->launch(
                  navm::kCgDriverTask,
                  navm::make_cg_problem(std::move(problem))));
            }
            stack.runtime->run();
            for (const auto t : tasks)
              FEM2_CHECK(stack.os->task_finished(t));
          },
          config);
  }

  // E5-style: the same solve losing a whole cluster mid-run.
  {
    sysvm::OsOptions reliable;
    reliable.reliable_transport = true;
    hw::Cycles baseline = 0;
    {
      bench::Stack stack(config, reliable);
      (void)fem::solve_static_parallel(model, "tip-shear", *stack.runtime,
                                       {.workers = 8, .tolerance = 1e-8});
      baseline = stack.machine->now();
    }
    const auto kill_at = static_cast<hw::Cycles>(
        0.4 * static_cast<double>(baseline));
    sweep("cluster_loss",
          "solve with cluster 2 lost at 40% (reliable transport)",
          [&](bench::Stack& stack) {
            stack.machine->engine().schedule_at(
                kill_at, [&m = *stack.machine] {
                  m.fail_cluster(hw::ClusterId{2});
                });
            (void)fem::solve_static_parallel(model, "tip-shear",
                                             *stack.runtime,
                                             {.workers = 8,
                                              .tolerance = 1e-8});
          },
          config, reliable);
  }

  std::cout << "Shape check: every thread count reproduces the serial run "
               "byte for byte\n(metrics and OS stats dumps compare equal); "
               "wall-clock falls with threads\nwhen host cores are "
               "available.\n";
  return bench::finish();
}
