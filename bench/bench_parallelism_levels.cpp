// E2 — the three levels of parallelism from the paper's conclusion:
// "parallelism in user requests for simultaneous solution of several
// independent problems, parallelism in the substructure analysis of a
// larger structure, parallelism in the finer structure of solution of a
// particular system of simultaneous equations".
#include "bench_common.hpp"

#include <sstream>

#include "fem/substructure.hpp"

using namespace fem2;

namespace {

/// Level (a): M independent user problems, launched together vs serially.
void user_level() {
  support::Table table(
      "(a) user-request level: M independent problems on 4x4 PEs");
  table.set_header({"problems", "serial cycles", "concurrent cycles",
                    "speedup"});
  const auto config = bench::machine_shape(4, 4);

  std::vector<std::size_t> problem_counts = {1, 2, 4, 8};
  if (bench::smoke()) problem_counts = {1, 2};
  for (const std::size_t m : problem_counts) {
    // Serial: one machine per problem, cycles add up.
    hw::Cycles serial = 0;
    for (std::size_t i = 0; i < m; ++i) {
      bench::ParallelRun run(bench::cantilever_sheet(16, 8), 4, config);
      serial += run.elapsed();
    }
    // Concurrent: all M launched before the machine runs.
    bench::Stack stack(config);
    const auto model = bench::cantilever_sheet(16, 8);
    const auto system = fem::assemble(model);
    const auto rhs = system.load_vector(model.load_sets.at("tip-shear"));
    std::vector<sysvm::TaskId> tasks;
    for (std::size_t i = 0; i < m; ++i) {
      navm::CgProblem problem;
      problem.a = system.stiffness;
      problem.b = rhs;
      problem.workers = 4;
      problem.tolerance = 1e-8;
      tasks.push_back(stack.runtime->launch(
          navm::kCgDriverTask, navm::make_cg_problem(std::move(problem))));
    }
    stack.runtime->run();
    for (const auto t : tasks)
      FEM2_CHECK(stack.os->task_finished(t));
    const hw::Cycles concurrent = stack.machine->now();
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(static_cast<std::uint64_t>(serial))
        .cell(static_cast<std::uint64_t>(concurrent))
        .cell(static_cast<double>(serial) / static_cast<double>(concurrent),
              2);
    bench::note("user_level_cycles_m" + std::to_string(m),
                static_cast<double>(concurrent), "cycles");
  }
  table.print(std::cout);
}

/// Level (b): substructure analysis with growing substructure counts.
void substructure_level() {
  support::Table table(
      "(b) substructure level: condensation tasks on 8 clusters x 2 PEs");
  table.set_header({"substructures", "cycles", "speedup vs 1", "residual"});
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 24u : 48u, 8);
  hw::Cycles base = 0;
  std::vector<std::size_t> counts = {1, 2, 4, 8};
  if (bench::smoke()) counts = {1, 2};
  for (const std::size_t s : counts) {
    bench::Stack stack(bench::machine_shape(8, 2, 256u << 20));
    fem::register_substructure_tasks(*stack.runtime);
    fem::SubstructureStats stats;
    const auto partition = fem::partition_by_x(model, s);
    (void)fem::solve_substructured_parallel(model, "tip-shear", partition,
                                            *stack.runtime, &stats);
    const hw::Cycles elapsed = stack.machine->now();
    if (s == 1) base = elapsed;
    std::ostringstream residual;
    residual.precision(2);
    residual << std::scientific << stats.residual;
    table.row()
        .cell(static_cast<std::uint64_t>(s))
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(static_cast<double>(base) / static_cast<double>(elapsed), 2)
        .cell(residual.str());
    bench::note("substructure_cycles_s" + std::to_string(s),
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);
}

/// Level (c): equation level — CG workers.
void equation_level() {
  support::Table table(
      "(c) equation level: distributed CG workers on 4 clusters x 8 PEs");
  table.set_header({"workers", "cycles", "speedup vs 1", "efficiency",
                    "iterations"});
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 24u : 48u, 12);
  const auto config = bench::machine_shape(4, 8);
  hw::Cycles base = 0;
  std::vector<std::size_t> workers = {1, 2, 4, 8, 16};
  if (bench::smoke()) workers = {1, 4};
  for (const std::size_t k : workers) {
    bench::ParallelRun run(model, k, config);
    if (k == 1) base = run.elapsed();
    const double speedup =
        static_cast<double>(base) / static_cast<double>(run.elapsed());
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(run.elapsed()))
        .cell(speedup, 2)
        .cell(speedup / static_cast<double>(k), 2)
        .cell(static_cast<std::uint64_t>(run.solution.stats.iterations));
    bench::note("equation_cycles_k" + std::to_string(k),
                static_cast<double>(run.elapsed()), "cycles");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E2", argc, argv);
  bench::print_header("E2 bench_parallelism_levels",
                      "the three levels of FEM-2 parallelism (Conclusion)");
  user_level();
  std::cout << "\n";
  substructure_level();
  std::cout << "\n";
  equation_level();
  std::cout << "\nShape check: all three levels give real speedup; "
               "user-level scales best\n(independent problems), equation "
               "level saturates as communication grows.\n";
  return bench::finish();
}
