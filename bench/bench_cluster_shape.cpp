// E10 — "clusters of processing elements organized around a shared
// memory.  Sets of clusters communicate through a common communication
// network" (Hardware architecture).
//
// Fixed budget of 64 PEs factored into different cluster shapes: how the
// split between shared-memory locality and network traffic moves the
// solve time, and where the best shape lies.
#include "bench_common.hpp"

#include "support/strings.hpp"

using namespace fem2;

int main(int argc, char** argv) {
  bench::init("E10", argc, argv);
  bench::print_header("E10 bench_cluster_shape",
                      "factoring a fixed 64-PE budget into clusters");

  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 24u : 48u, 12);
  const std::size_t workers = bench::smoke() ? 16 : 32;

  support::Table table(
      "sheet solve, 64 PEs total (shape = clusters x PEs)");
  table.set_header({"shape", "cycles", "network msgs", "local msgs",
                    "network traffic", "channel busy cycles",
                    "kernel dispatches", "PE utilization %"});

  std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {1, 64}, {2, 32}, {4, 16}, {8, 8}, {16, 4}, {32, 2}, {64, 1}};
  if (bench::smoke()) shapes = {{4, 16}, {8, 8}, {16, 4}};
  for (const auto& [clusters, ppc] : shapes) {
    bench::ParallelRun run(model, workers,
                           bench::machine_shape(clusters, ppc));
    const auto& net = run.stack.machine->metrics().network;
    const auto elapsed = run.elapsed();
    table.row()
        .cell(std::to_string(clusters) + "x" + std::to_string(ppc))
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(net.messages)
        .cell(net.local_messages)
        .cell(support::format_bytes(net.bytes))
        .cell(net.channel_busy_cycles)
        .cell(run.stack.os->metrics().kernel_dispatches)
        .cell(100.0 * run.stack.machine->metrics().pe_utilization(elapsed),
              1);
    bench::note("shape_cycles_" + std::to_string(clusters) + "x" +
                    std::to_string(ppc),
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);

  // --- ablation: task placement policy -----------------------------------
  support::Table placement_table(
      "\nAblation — OS task placement policy (4x16, 16 workers)");
  placement_table.set_header({"placement", "cycles", "network msgs",
                              "local msgs", "PE utilization %"});
  for (const auto& [name, policy] :
       {std::pair<const char*, sysvm::Placement>{"least-loaded",
                                                 sysvm::Placement::LeastLoaded},
        {"round-robin", sysvm::Placement::RoundRobin},
        {"local (no spreading)", sysvm::Placement::Local}}) {
    sysvm::OsOptions options;
    options.placement = policy;
    bench::ParallelRun run(model, 16, bench::machine_shape(4, 16), options);
    const auto& net = run.stack.machine->metrics().network;
    const auto elapsed = run.elapsed();
    placement_table.row()
        .cell(name)
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(net.messages)
        .cell(net.local_messages)
        .cell(100.0 * run.stack.machine->metrics().pe_utilization(elapsed),
              1);
    bench::note(std::string("placement_cycles_") + name,
                static_cast<double>(elapsed), "cycles");
  }
  placement_table.print(std::cout);

  std::cout << "\nShape check: one-PE clusters lose outright (~1.5x slower: "
               "every PE is a kernel,\neverything crosses the network).  A "
               "single monolithic cluster is fastest for one\njob in "
               "simulation — but only because a 64-PE shared memory is "
               "assumed buildable;\nmoderate clusters (8x8, 16x4) come "
               "within ~3%% of it while keeping per-memory\narity, fault "
               "isolation (E5) and extensibility realistic — the "
               "organization the\npaper proposes.  Placement ablation: "
               "spreading policies trade network traffic\nfor balance; "
               "local placement avoids the network but gives up multi-job "
               "balance.\n";
  return bench::finish();
}
