// E7 — the motivating comparison: the original Finite Element Machine
// (bottom-up design: static node-per-processor array, nearest-neighbour
// links + global bus, synchronous relaxation) against FEM-2 (top-down
// design: clusters, dynamic tasks, distributed CG).
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "fem1/fem1.hpp"
#include "support/strings.hpp"

using namespace fem2;

namespace {

void problem_sweep() {
  support::Table table(
      "Time-to-solution, 32 PEs each (FEM-1: 32-PE array + bus, "
      "Gauss-Seidel; FEM-2: 4x8 clusters, distributed CG)");
  table.set_header({"grid", "dofs", "FEM-1 iters", "FEM-1 Mcycles",
                    "FEM-2 iters", "FEM-2 Mcycles", "FEM-2 advantage"});

  std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {8, 4}, {16, 8}, {32, 8}, {48, 12}};
  if (bench::smoke()) grids = {{8, 4}, {16, 8}};
  for (const auto& [nx, ny] : grids) {
    const auto model = bench::cantilever_sheet(nx, ny);
    const auto system = fem::assemble(model);

    fem1::Fem1Config fem1_config;
    fem1_config.processors = 32;
    const auto fem1_result = fem1::fem1_solve_model(
        model, "tip-shear", fem1_config, fem1::Fem1Solver::GaussSeidel, 1e-8,
        2'000'000);

    bench::ParallelRun fem2_run(model, 8, bench::machine_shape(4, 8));

    const double ratio =
        fem1_result.converged
            ? static_cast<double>(fem1_result.elapsed) /
                  static_cast<double>(fem2_run.elapsed())
            : 0.0;
    table.row()
        .cell(std::to_string(nx) + "x" + std::to_string(ny))
        .cell(static_cast<std::uint64_t>(system.dofs.free_dofs))
        .cell(static_cast<std::uint64_t>(fem1_result.iterations))
        .cell(static_cast<double>(fem1_result.elapsed) / 1e6, 1)
        .cell(static_cast<std::uint64_t>(fem2_run.solution.stats.iterations))
        .cell(static_cast<double>(fem2_run.elapsed()) / 1e6, 1)
        .cell(ratio, 1);
    const std::string grid = std::to_string(nx) + "x" + std::to_string(ny);
    bench::note("fem1_cycles_" + grid,
                static_cast<double>(fem1_result.elapsed), "cycles");
    bench::note("fem2_cycles_" + grid,
                static_cast<double>(fem2_run.elapsed()), "cycles");
  }
  table.print(std::cout);
}

void machine_size_sweep() {
  support::Table table(
      "Fixed 32x8 sheet, growing machines (FEM-1 Gauss-Seidel for its best "
      "case)");
  table.set_header({"PEs", "FEM-1 Mcycles", "FEM-1 utilization %",
                    "FEM-2 shape", "FEM-2 Mcycles", "advantage"});
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 16u : 32u, 8);

  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> machines = {
      {4, 1, 4}, {16, 2, 8}, {36, 6, 6}, {64, 8, 8}};
  if (bench::smoke()) machines = {{16, 2, 8}, {64, 8, 8}};
  for (const auto& [pes, clusters, ppc] : machines) {
    fem1::Fem1Config fem1_config;
    fem1_config.processors = pes;
    const auto fem1_result = fem1::fem1_solve_model(
        model, "tip-shear", fem1_config, fem1::Fem1Solver::GaussSeidel, 1e-8,
        2'000'000);

    bench::ParallelRun fem2_run(
        model, std::min<std::size_t>(pes / 2, 16),
        bench::machine_shape(clusters, ppc));

    table.row()
        .cell(static_cast<std::uint64_t>(pes))
        .cell(static_cast<double>(fem1_result.elapsed) / 1e6, 1)
        .cell(100.0 * fem1_result.pe_utilization, 1)
        .cell(std::to_string(clusters) + "x" + std::to_string(ppc))
        .cell(static_cast<double>(fem2_run.elapsed()) / 1e6, 1)
        .cell(static_cast<double>(fem1_result.elapsed) /
                  static_cast<double>(fem2_run.elapsed()),
              1);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E7", argc, argv);
  bench::print_header("E7 bench_fem1_vs_fem2",
                      "bottom-up FEM-1 baseline vs top-down FEM-2");
  problem_sweep();
  std::cout << "\n";
  machine_size_sweep();
  std::cout << "\nShape check: FEM-2 wins by a growing factor as problems "
               "grow — relaxation\niteration counts explode where CG's "
               "do not, and the FEM-1 bus serializes\nwhat FEM-2 windows "
               "keep inside clusters.\n";
  return bench::finish();
}
