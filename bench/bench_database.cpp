// E11 — fem2-db under multi-session load: commit throughput and recovery
// time for K = 1, 4, 16 concurrent sessions hammering one persistent
// engine ("provide multi-user access" meets "long-term storage").
//
// Part 1: K threads commit a fixed total number of transactions — a mix
// of unconditional stores over a name pool and compare-and-swap stores on
// one hot name (retried on conflict).  Every commit pays the full WAL
// discipline: append CRC-framed records, one fsync at the commit point.
// Part 2: the crash path — reopen the directory and time snapshot-load +
// log-replay, reporting how much log the recovery had to chew through.
#include "bench_common.hpp"

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "db/engine.hpp"
#include "support/rng.hpp"

using namespace fem2;

namespace {

constexpr std::size_t kNamePool = 64;
constexpr std::size_t kPayloadBytes = 1024;

std::size_t total_commits() { return bench::smoke() ? 256 : 2048; }

struct WorkloadResult {
  double elapsed_ms = 0.0;
  std::uint64_t conflicts = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t commits = 0;
};

WorkloadResult run_sessions(db::Engine& engine, std::size_t sessions) {
  const std::string payload(kPayloadBytes, 'm');
  const std::size_t per_session = total_commits() / sessions;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&engine, &payload, s, per_session] {
      support::Rng rng(0x5eedULL + s);
      for (std::size_t i = 0; i < per_session; ++i) {
        if (rng.uniform() < 0.85) {
          // Plain store into the shared name pool.
          const auto name =
              "entry-" + std::to_string(rng.next_below(kNamePool));
          engine.put(name, "model", payload);
        } else {
          // Optimistic store on the hot name, retried on conflict.
          for (;;) {
            const auto rev = engine.revision_of("hot");
            try {
              engine.put("hot", "model", payload, rev);
              break;
            } catch (const db::ConflictError&) {
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const auto stats = engine.stats();
  result.conflicts = stats.conflicts;
  result.wal_bytes = stats.wal_bytes;
  result.commits = stats.commits;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E11", argc, argv);
  std::cout << "E11: fem2-db commit throughput and recovery time\n"
            << "     " << total_commits() << " committed transactions total, "
            << kPayloadBytes << "-byte payloads, " << kNamePool
            << "-name pool + 1 hot CAS name, fsync on every commit\n\n";

  const auto base =
      std::filesystem::temp_directory_path() / "fem2_bench_database";
  std::filesystem::remove_all(base);

  support::Table table("commit throughput and recovery by session count");
  table.set_header({"sessions", "commits", "conflicts", "elapsed-ms",
                    "commits/s", "wal-KiB", "recovery-ms", "replayed-txns"});

  for (const std::size_t sessions : {1u, 4u, 16u}) {
    const auto dir = base / ("k" + std::to_string(sessions));
    db::EngineOptions options;
    options.directory = dir.string();
    options.compact_after_bytes = 0;  // keep the whole log for recovery

    WorkloadResult workload;
    {
      db::Engine engine(options);
      workload = run_sessions(engine, sessions);
    }

    // Part 2: crash recovery — reopen and replay the full log.
    const auto start = std::chrono::steady_clock::now();
    db::Engine recovered(options);
    const auto stop = std::chrono::steady_clock::now();
    const double recovery_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();

    table.row()
        .cell(static_cast<std::uint64_t>(sessions))
        .cell(workload.commits)
        .cell(workload.conflicts)
        .cell(workload.elapsed_ms, 1)
        .cell(1000.0 * static_cast<double>(workload.commits) /
                  workload.elapsed_ms,
              0)
        .cell(workload.wal_bytes / 1024.0, 1)
        .cell(recovery_ms, 2)
        .cell(recovered.stats().recovered_txns);
    bench::note("commits_per_s_k" + std::to_string(sessions),
                1000.0 * static_cast<double>(workload.commits) /
                    workload.elapsed_ms,
                "commits/s");
    bench::note("recovery_ms_k" + std::to_string(sessions), recovery_ms,
                "ms");
  }
  table.print(std::cout);
  std::filesystem::remove_all(base);

  std::cout
      << "\nReading: one mutex serializes the table and the log tail, so\n"
         "aggregate throughput roughly holds as K grows, minus lock and\n"
         "CAS-retry overhead; conflicts appear only once two sessions race\n"
         "the hot name.  Recovery time scales with log volume, not with\n"
         "the session count that produced it.\n";
  return bench::finish();
}
