// E6 — "storage management: general heap with variable size blocks"
// (System programmer's VM) under "large storage requirements; dynamic
// allocation" (Hardware architecture).
//
// Part 1: synthetic FEM-2-shaped allocation trace (activation records,
// message buffers, window/array blocks with mixed lifetimes) replayed
// against first-fit, best-fit and next-fit placement.
// Part 2: the heap profile of a live mixed workload (distributed solve +
// task-initiation storm) under each policy.
#include "bench_common.hpp"

#include "support/rng.hpp"
#include "support/strings.hpp"
#include "sysvm/heap.hpp"

using namespace fem2;

namespace {

/// FEM-2-shaped trace: three size classes with different lifetimes.
struct TraceResult {
  sysvm::HeapStats stats;
  std::size_t failed;
  std::size_t peak_live;
};

TraceResult replay_trace(sysvm::HeapPolicy policy, std::uint64_t seed,
                         std::size_t operations) {
  sysvm::Heap heap(16u << 20, policy);
  support::Rng rng(seed);
  std::vector<std::size_t> live;
  std::size_t failed = 0;
  std::size_t peak_live = 0;

  for (std::size_t op = 0; op < operations; ++op) {
    const bool allocate = live.empty() || rng.uniform() < 0.55;
    if (allocate) {
      std::size_t bytes;
      const double kind = rng.uniform();
      if (kind < 0.5) {
        bytes = 64 + rng.next_below(448);          // message buffers
      } else if (kind < 0.85) {
        bytes = 256 + rng.next_below(1792);        // activation records
      } else {
        bytes = 8192 + rng.next_below(131072);     // array/window blocks
      }
      const std::size_t address = heap.allocate(bytes);
      if (address == sysvm::Heap::kNullAddress) {
        ++failed;
      } else {
        live.push_back(address);
        peak_live = std::max(peak_live, live.size());
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      heap.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  heap.check_invariants();
  return {heap.stats(), failed, peak_live};
}

void synthetic_trace() {
  support::Table table(
      "Synthetic FEM-2 allocation trace (16 MiB heap, 60k ops, seed 42)");
  table.set_header({"policy", "high water", "fragmentation %",
                    "failed allocs", "search steps / alloc",
                    "free-list peak blocks"});
  for (const auto policy :
       {sysvm::HeapPolicy::FirstFit, sysvm::HeapPolicy::BestFit,
        sysvm::HeapPolicy::NextFit}) {
    const auto result = replay_trace(policy, 42, bench::smoke() ? 10'000
                                                                : 60'000);
    table.row()
        .cell(std::string(sysvm::heap_policy_name(policy)))
        .cell(support::format_bytes(result.stats.high_water))
        .cell(100.0 * result.stats.external_fragmentation, 1)
        .cell(static_cast<std::uint64_t>(result.failed))
        .cell(static_cast<double>(result.stats.search_steps) /
                  static_cast<double>(
                      std::max<std::uint64_t>(result.stats.allocations, 1)),
              1)
        .cell(static_cast<std::uint64_t>(result.peak_live));
    bench::note(std::string("trace_search_steps_") +
                    std::string(sysvm::heap_policy_name(policy)),
                static_cast<double>(result.stats.search_steps), "steps");
  }
  table.print(std::cout);
}

void live_workload_profile() {
  support::Table table(
      "Heap profile of a live mixed workload: distributed solve + 512-task "
      "initiation storm, concurrently");
  table.set_header({"policy", "allocations", "frees", "high water",
                    "search steps / alloc", "cycles"});
  const auto model = bench::cantilever_sheet(24, 8);
  const auto system = fem::assemble(model);
  const auto rhs = system.load_vector(model.load_sets.at("tip-shear"));

  for (const auto policy :
       {sysvm::HeapPolicy::FirstFit, sysvm::HeapPolicy::BestFit,
        sysvm::HeapPolicy::NextFit}) {
    sysvm::OsOptions options;
    options.heap_policy = policy;
    bench::Stack stack(bench::machine_shape(4, 4), options);
    stack.runtime->define_task(
        "leaf", [](navm::TaskContext& ctx) -> navm::Coro {
          ctx.charge(500);
          const auto scratch = ctx.api().heap_allocate(512);
          ctx.api().heap_free(scratch);
          co_return sysvm::Payload{};
        });
    stack.runtime->define_task(
        "storm", [](navm::TaskContext& ctx) -> navm::Coro {
          (void)co_await navm::forall(ctx, "leaf", 512, {});
          co_return sysvm::Payload{};
        });

    navm::CgProblem problem;
    problem.a = system.stiffness;
    problem.b = rhs;
    problem.workers = 8;
    problem.tolerance = 1e-8;
    const auto solve_task = stack.runtime->launch(
        navm::kCgDriverTask, navm::make_cg_problem(std::move(problem)));
    const auto storm_task = stack.runtime->launch("storm");
    stack.runtime->run();
    FEM2_CHECK(stack.os->task_finished(solve_task));
    FEM2_CHECK(stack.os->task_finished(storm_task));

    sysvm::HeapStats combined;
    for (std::size_t c = 0; c < 4; ++c) {
      const auto& stats =
          stack.os->heap(hw::ClusterId{static_cast<std::uint32_t>(c)})
              .stats();
      combined.allocations += stats.allocations;
      combined.frees += stats.frees;
      combined.search_steps += stats.search_steps;
      combined.high_water = std::max(combined.high_water, stats.high_water);
    }
    table.row()
        .cell(std::string(sysvm::heap_policy_name(policy)))
        .cell(combined.allocations)
        .cell(combined.frees)
        .cell(support::format_bytes(combined.high_water))
        .cell(static_cast<double>(combined.search_steps) /
                  static_cast<double>(
                      std::max<std::uint64_t>(combined.allocations, 1)),
              1)
        .cell(static_cast<std::uint64_t>(stack.machine->now()));
    bench::note(std::string("live_cycles_") +
                    std::string(sysvm::heap_policy_name(policy)),
                static_cast<double>(stack.machine->now()), "cycles");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E6", argc, argv);
  bench::print_header("E6 bench_heap",
                      "variable-size-block heap placement policies");
  synthetic_trace();
  std::cout << "\n";
  live_workload_profile();
  std::cout << "\nShape check: under fragmentation pressure, next-fit is "
               "~6x cheaper to search but\nfragments worst and fails the "
               "most allocations; first-fit and best-fit hold\nmore of the "
               "trace, with best-fit paying the full-scan cost.  The live "
               "FEM-2\nworkload's allocations are lifetime-nested, so every "
               "policy serves it equally —\nthe general heap matters for "
               "the irregular, long-lived allocation mixes the\npaper "
               "anticipates.\n";
  return bench::finish();
}
