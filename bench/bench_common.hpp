// Shared scaffolding for the experiment harness.  Every bench prints the
// rows/series its experiment in DESIGN.md calls for, with fixed seeds and a
// deterministic simulator, so EXPERIMENTS.md is reproducible.
#pragma once

#include <iostream>
#include <memory>

#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hw/machine.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "support/table.hpp"
#include "sysvm/os.hpp"

namespace fem2::bench {

/// A fresh machine + OS + runtime, with the parallel ops registered.
struct Stack {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<sysvm::Os> os;
  std::unique_ptr<navm::Runtime> runtime;

  explicit Stack(hw::MachineConfig config = {}, sysvm::OsOptions options = {})
      : machine(std::make_unique<hw::Machine>(config)),
        os(std::make_unique<sysvm::Os>(*machine, options)),
        runtime(std::make_unique<navm::Runtime>(*os)) {
    navm::register_parallel_ops(*runtime);
  }
};

inline hw::MachineConfig machine_shape(std::size_t clusters,
                                       std::size_t pes_per_cluster,
                                       std::size_t memory = 64u << 20) {
  hw::MachineConfig config;
  config.clusters = clusters;
  config.pes_per_cluster = pes_per_cluster;
  config.memory_per_cluster = memory;
  return config;
}

/// Standard experiment workload: plane-stress cantilever sheet.
inline fem::StructureModel cantilever_sheet(std::size_t nx, std::size_t ny,
                                            double load = 1'000.0) {
  fem::PlateMeshOptions mesh;
  mesh.nx = nx;
  mesh.ny = ny;
  mesh.width = static_cast<double>(nx) / 8.0;
  mesh.height = static_cast<double>(ny) / 8.0;
  mesh.material.youngs_modulus = 70e9;
  mesh.material.thickness = 0.005;
  return fem::make_cantilever_plate(mesh, load);
}

/// Run the distributed CG solve on a fresh stack; returns the stack for
/// metric inspection plus the solution stats.
struct ParallelRun {
  Stack stack;
  fem::StaticSolution solution;

  ParallelRun(const fem::StructureModel& model, std::size_t workers,
              hw::MachineConfig config, sysvm::OsOptions options = {})
      : stack(config, options),
        solution(fem::solve_static_parallel(
            model, "tip-shear", *stack.runtime,
            {.workers = static_cast<std::uint32_t>(workers),
             .tolerance = 1e-8})) {}

  hw::Cycles elapsed() const { return stack.machine->now(); }
};

inline void print_header(std::string_view id, std::string_view claim) {
  std::cout << "==================================================="
               "=========================\n"
            << id << " — " << claim << "\n"
            << "==================================================="
               "=========================\n";
}

}  // namespace fem2::bench
