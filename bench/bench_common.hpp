// Shared scaffolding for the experiment harness.  Every bench prints the
// rows/series its experiment in DESIGN.md calls for, with fixed seeds and a
// deterministic simulator, so EXPERIMENTS.md is reproducible.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fem/mesh.hpp"
#include "fem/solver.hpp"
#include "hw/machine.hpp"
#include "navm/parops.hpp"
#include "navm/runtime.hpp"
#include "support/table.hpp"
#include "sysvm/os.hpp"

namespace fem2::bench {

// --- machine-readable reports --------------------------------------------
//
// Every bench calls init("E<n>", argc, argv) first and finish() last, and
// records its headline numbers with note().  finish() writes
// BENCH_E<n>.json ({experiment, rows: [{metric, value, unit}],
// host_wall_ms}) next to the binary (or into $FEM2_BENCH_DIR), which the CI
// bench-smoke job archives and feeds to tools/bench_compare.py.  `--smoke`
// switches the bench to a reduced workload sized for CI; metric names must
// stay stable within a mode so baselines compare run-over-run.

namespace detail {

struct ReportRow {
  std::string metric;
  double value = 0.0;
  std::string unit;
};

struct ReportState {
  std::string experiment;
  bool smoke = false;
  std::vector<ReportRow> rows;
  std::chrono::steady_clock::time_point start;
};

inline ReportState& report_state() {
  static ReportState state;
  return state;
}

inline std::string json_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.0e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace detail

/// Parse bench arguments (`--smoke`) and start the wall clock.
inline void init(std::string_view experiment, int argc, char** argv) {
  auto& state = detail::report_state();
  state.experiment = std::string(experiment);
  state.start = std::chrono::steady_clock::now();
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") state.smoke = true;
  }
}

/// True when running the reduced CI workload.
inline bool smoke() { return detail::report_state().smoke; }

/// Record one headline number for the JSON report.
inline void note(std::string_view metric, double value,
                 std::string_view unit) {
  detail::report_state().rows.push_back(
      {std::string(metric), value, std::string(unit)});
}

/// Write BENCH_<experiment>.json; returns 0 so main can `return finish()`.
inline int finish() {
  auto& state = detail::report_state();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state.start)
          .count();
  std::string dir = ".";
  if (const char* env = std::getenv("FEM2_BENCH_DIR")) dir = env;
  const std::string path = dir + "/BENCH_" + state.experiment + ".json";
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"" << detail::json_escape(state.experiment)
      << "\",\n  \"rows\": [";
  for (std::size_t i = 0; i < state.rows.size(); ++i) {
    const auto& row = state.rows[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"metric\": \""
        << detail::json_escape(row.metric) << "\", \"value\": "
        << detail::json_number(row.value) << ", \"unit\": \""
        << detail::json_escape(row.unit) << "\"}";
  }
  out << "\n  ],\n  \"host_wall_ms\": " << detail::json_number(wall_ms)
      << "\n}\n";
  if (!out) {
    std::cerr << "warning: could not write " << path << "\n";
  } else {
    std::cout << "\n[report] " << path << "\n";
  }
  return 0;
}

/// A fresh machine + OS + runtime, with the parallel ops registered.
struct Stack {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<sysvm::Os> os;
  std::unique_ptr<navm::Runtime> runtime;

  explicit Stack(hw::MachineConfig config = {}, sysvm::OsOptions options = {})
      : machine(std::make_unique<hw::Machine>(config)),
        os(std::make_unique<sysvm::Os>(*machine, options)),
        runtime(std::make_unique<navm::Runtime>(*os)) {
    navm::register_parallel_ops(*runtime);
  }
};

inline hw::MachineConfig machine_shape(std::size_t clusters,
                                       std::size_t pes_per_cluster,
                                       std::size_t memory = 64u << 20) {
  hw::MachineConfig config;
  config.clusters = clusters;
  config.pes_per_cluster = pes_per_cluster;
  config.memory_per_cluster = memory;
  return config;
}

/// Standard experiment workload: plane-stress cantilever sheet.
inline fem::StructureModel cantilever_sheet(std::size_t nx, std::size_t ny,
                                            double load = 1'000.0) {
  fem::PlateMeshOptions mesh;
  mesh.nx = nx;
  mesh.ny = ny;
  mesh.width = static_cast<double>(nx) / 8.0;
  mesh.height = static_cast<double>(ny) / 8.0;
  mesh.material.youngs_modulus = 70e9;
  mesh.material.thickness = 0.005;
  return fem::make_cantilever_plate(mesh, load);
}

/// Run the distributed CG solve on a fresh stack; returns the stack for
/// metric inspection plus the solution stats.
struct ParallelRun {
  Stack stack;
  fem::StaticSolution solution;

  ParallelRun(const fem::StructureModel& model, std::size_t workers,
              hw::MachineConfig config, sysvm::OsOptions options = {})
      : stack(config, options),
        solution(fem::solve_static_parallel(
            model, "tip-shear", *stack.runtime,
            {.workers = static_cast<std::uint32_t>(workers),
             .tolerance = 1e-8})) {}

  hw::Cycles elapsed() const { return stack.machine->now(); }
};

inline void print_header(std::string_view id, std::string_view claim) {
  std::cout << "==================================================="
               "=========================\n"
            << id << " — " << claim << "\n"
            << "==================================================="
               "=========================\n";
}

}  // namespace fem2::bench
