// E5 — "provide reconfigurability to isolate faulty hardware components"
// (Hardware architecture).
//
// FEM-2: the same distributed solve with PEs failed before the run
// (including kernel PEs — the lowest surviving PE is promoted) and with a
// PE killed mid-run (in-flight work is re-executed elsewhere).
// FEM-1 contrast: the static array stalls on any failure and needs a
// costly manual repartition + restart.
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "fem1/fem1.hpp"

using namespace fem2;

namespace {

void fem2_failures() {
  const auto model = bench::cantilever_sheet(24, 8);
  const auto config = bench::machine_shape(4, 4);

  support::Table table(
      "FEM-2: solve with failed PEs (4 clusters x 4 PEs, 8 CG workers)");
  table.set_header({"failed PEs", "where", "completed", "cycles",
                    "slowdown", "steps redone"});

  hw::Cycles baseline = 0;
  struct Case {
    std::size_t count;
    const char* where;
    std::function<void(hw::Machine&)> inject;
  };
  const std::vector<Case> cases = {
      {0, "-", [](hw::Machine&) {}},
      {1, "worker",
       [](hw::Machine& m) { m.fail_pe({hw::ClusterId{1}, 2}); }},
      {2, "kernels (promote)",
       [](hw::Machine& m) {
         m.fail_pe({hw::ClusterId{0}, 0});
         m.fail_pe({hw::ClusterId{2}, 0});
       }},
      {4, "one per cluster",
       [](hw::Machine& m) {
         for (std::uint32_t c = 0; c < 4; ++c)
           m.fail_pe({hw::ClusterId{c}, 3});
       }},
      {8, "half the machine",
       [](hw::Machine& m) {
         for (std::uint32_t c = 0; c < 4; ++c) {
           m.fail_pe({hw::ClusterId{c}, 2});
           m.fail_pe({hw::ClusterId{c}, 3});
         }
       }},
      {2, "mid-run kills",
       [](hw::Machine& m) {
         // Catch PEs in the act: kill one worker per phase of the solve.
         m.engine().schedule(400'000,
                             [&m] { m.fail_pe({hw::ClusterId{1}, 1}); });
         m.engine().schedule(800'000,
                             [&m] { m.fail_pe({hw::ClusterId{2}, 2}); });
       }},
  };

  for (const auto& c : cases) {
    bench::Stack stack(config);
    c.inject(*stack.machine);
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", *stack.runtime, {.workers = 8, .tolerance = 1e-8});
    const auto elapsed = stack.machine->now();
    if (baseline == 0) baseline = elapsed;
    table.row()
        .cell(static_cast<std::uint64_t>(c.count))
        .cell(c.where)
        .cell(solution.stats.converged ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(static_cast<double>(elapsed) / static_cast<double>(baseline), 2)
        .cell(stack.os->metrics().steps_redone);
    bench::note("failed_pes_" + std::to_string(&c - cases.data()) + "_cycles",
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);
}

// Whole-cluster losses: the OS re-initiates lost tasks from saved
// parameters (restarting task trees where necessary) and the solve still
// converges to the bit-identical answer.
void fem2_cluster_loss() {
  const auto model = bench::cantilever_sheet(24, 8);
  const auto config = bench::machine_shape(4, 4);
  sysvm::OsOptions reliable;
  reliable.reliable_transport = true;

  // Fault-free reference: elapsed cycles (for kill scheduling and slowdown)
  // and the displacement vector (for the bit-identical check).
  hw::Cycles baseline = 0;
  std::vector<double> reference;
  {
    bench::Stack stack(config, reliable);
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", *stack.runtime, {.workers = 8, .tolerance = 1e-8});
    baseline = stack.machine->now();
    reference = solution.displacements.values;
  }

  support::Table table(
      "FEM-2: solve with cluster losses (4 clusters x 4 PEs, reliable "
      "transport)");
  table.set_header({"clusters killed", "at", "completed", "bit-identical",
                    "slowdown", "relocated", "trees restarted", "retrans"});

  struct Case {
    const char* label;
    const char* when;
    std::vector<std::pair<double, std::uint32_t>> kills;  ///< (fraction, id)
  };
  const std::vector<Case> cases = {
      {"none", "-", {}},
      {"1 (cluster 3)", "25% of solve", {{0.25, 3}}},
      {"1 (cluster 1)", "50% of solve", {{0.50, 1}}},
      {"2 (clusters 2,3)", "30% / 60%", {{0.30, 2}, {0.60, 3}}},
  };

  for (const auto& c : cases) {
    bench::Stack stack(config, reliable);
    for (const auto& [fraction, id] : c.kills) {
      const auto at = static_cast<hw::Cycles>(fraction *
                                              static_cast<double>(baseline));
      stack.machine->engine().schedule_at(at, [&m = *stack.machine, id] {
        m.fail_cluster(hw::ClusterId{id});
      });
    }
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", *stack.runtime, {.workers = 8, .tolerance = 1e-8});
    const auto elapsed = stack.machine->now();
    const auto& os = stack.os->metrics();
    table.row()
        .cell(c.label)
        .cell(c.when)
        .cell(solution.stats.converged ? "yes" : "NO")
        .cell(solution.displacements.values == reference ? "yes" : "NO")
        .cell(static_cast<double>(elapsed) / static_cast<double>(baseline), 2)
        .cell(os.tasks_relocated)
        .cell(os.trees_restarted)
        .cell(os.retransmissions);
    bench::note("cluster_loss_" + std::to_string(&c - cases.data()) +
                    "_cycles",
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);
}

// Lossy inter-cluster network: the seq/ack/retransmit protocol masks drops;
// the answer never changes, only the cycle count.
void fem2_lossy_network() {
  const auto model = bench::cantilever_sheet(24, 8);
  const auto config = bench::machine_shape(4, 4);
  sysvm::OsOptions reliable;
  reliable.reliable_transport = true;

  support::Table table(
      "FEM-2: solve on a lossy network (4 clusters x 4 PEs, reliable "
      "transport)");
  table.set_header({"drop prob", "completed", "bit-identical", "cycles",
                    "slowdown", "pkts dropped", "retrans", "dups dropped"});

  hw::Cycles baseline = 0;
  std::vector<double> reference;
  for (const double p : {0.0, 0.005, 0.02, 0.10}) {
    bench::Stack stack(config, reliable);
    stack.machine->set_drop_probability(p);
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", *stack.runtime, {.workers = 8, .tolerance = 1e-8});
    const auto elapsed = stack.machine->now();
    if (baseline == 0) {
      baseline = elapsed;
      reference = solution.displacements.values;
    }
    const auto& os = stack.os->metrics();
    table.row()
        .cell(p * 100.0, 1)
        .cell(solution.stats.converged ? "yes" : "NO")
        .cell(solution.displacements.values == reference ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(static_cast<double>(elapsed) / static_cast<double>(baseline), 2)
        .cell(stack.machine->metrics().network.dropped_messages)
        .cell(os.retransmissions)
        .cell(os.duplicates_dropped);
  }
  table.print(std::cout);
}

void fem1_contrast() {
  const auto model = bench::cantilever_sheet(24, 8);

  support::Table table("FEM-1 baseline: static array of 36 processors");
  table.set_header({"failed PEs", "strategy", "status", "cycles"});
  for (const auto& [failed, repartition] :
       {std::tuple<std::size_t, bool>{0, false},
        {1, false},
        {1, true},
        {4, true},
        {8, true}}) {
    fem1::Fem1Config config;
    config.failed_processors = failed;
    config.manual_repartition = repartition;
    const auto result =
        fem1::fem1_solve_model(model, "tip-shear", config,
                               fem1::Fem1Solver::GaussSeidel, 1e-8);
    table.row()
        .cell(static_cast<std::uint64_t>(failed))
        .cell(failed == 0 ? "-" : (repartition ? "manual repartition" : "none"))
        .cell(result.completed
                  ? (result.converged ? "completed" : "no convergence")
                  : "STALLED")
        .cell(static_cast<std::uint64_t>(result.elapsed));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E5", argc, argv);
  bench::print_header("E5 bench_fault_isolation",
                      "reconfigurability isolates faulty components");
  fem2_failures();
  std::cout << "\n";
  fem2_cluster_loss();
  std::cout << "\n";
  fem2_lossy_network();
  std::cout << "\n";
  fem1_contrast();
  std::cout << "\nShape check: FEM-2 completes under every failure pattern "
               "with graceful slowdown\n(kernel failover + step "
               "re-execution + cluster-loss recovery + retransmission),\n"
               "always reaching the bit-identical answer; the FEM-1 static "
               "array stalls until\na costly manual repartition.\n";
  return bench::finish();
}
