// E5 — "provide reconfigurability to isolate faulty hardware components"
// (Hardware architecture).
//
// FEM-2: the same distributed solve with PEs failed before the run
// (including kernel PEs — the lowest surviving PE is promoted) and with a
// PE killed mid-run (in-flight work is re-executed elsewhere).
// FEM-1 contrast: the static array stalls on any failure and needs a
// costly manual repartition + restart.
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "fem1/fem1.hpp"

using namespace fem2;

namespace {

void fem2_failures() {
  const auto model = bench::cantilever_sheet(24, 8);
  const auto config = bench::machine_shape(4, 4);

  support::Table table(
      "FEM-2: solve with failed PEs (4 clusters x 4 PEs, 8 CG workers)");
  table.set_header({"failed PEs", "where", "completed", "cycles",
                    "slowdown", "steps redone"});

  hw::Cycles baseline = 0;
  struct Case {
    std::size_t count;
    const char* where;
    std::function<void(hw::Machine&)> inject;
  };
  const std::vector<Case> cases = {
      {0, "-", [](hw::Machine&) {}},
      {1, "worker",
       [](hw::Machine& m) { m.fail_pe({hw::ClusterId{1}, 2}); }},
      {2, "kernels (promote)",
       [](hw::Machine& m) {
         m.fail_pe({hw::ClusterId{0}, 0});
         m.fail_pe({hw::ClusterId{2}, 0});
       }},
      {4, "one per cluster",
       [](hw::Machine& m) {
         for (std::uint32_t c = 0; c < 4; ++c)
           m.fail_pe({hw::ClusterId{c}, 3});
       }},
      {8, "half the machine",
       [](hw::Machine& m) {
         for (std::uint32_t c = 0; c < 4; ++c) {
           m.fail_pe({hw::ClusterId{c}, 2});
           m.fail_pe({hw::ClusterId{c}, 3});
         }
       }},
      {2, "mid-run kills",
       [](hw::Machine& m) {
         // Catch PEs in the act: kill one worker per phase of the solve.
         m.engine().schedule(400'000,
                             [&m] { m.fail_pe({hw::ClusterId{1}, 1}); });
         m.engine().schedule(800'000,
                             [&m] { m.fail_pe({hw::ClusterId{2}, 2}); });
       }},
  };

  for (const auto& c : cases) {
    bench::Stack stack(config);
    c.inject(*stack.machine);
    const auto solution = fem::solve_static_parallel(
        model, "tip-shear", *stack.runtime, {.workers = 8, .tolerance = 1e-8});
    const auto elapsed = stack.machine->now();
    if (baseline == 0) baseline = elapsed;
    table.row()
        .cell(static_cast<std::uint64_t>(c.count))
        .cell(c.where)
        .cell(solution.stats.converged ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(static_cast<double>(elapsed) / static_cast<double>(baseline), 2)
        .cell(stack.os->metrics().steps_redone);
  }
  table.print(std::cout);
}

void fem1_contrast() {
  const auto model = bench::cantilever_sheet(24, 8);

  support::Table table("FEM-1 baseline: static array of 36 processors");
  table.set_header({"failed PEs", "strategy", "status", "cycles"});
  for (const auto& [failed, repartition] :
       {std::tuple<std::size_t, bool>{0, false},
        {1, false},
        {1, true},
        {4, true},
        {8, true}}) {
    fem1::Fem1Config config;
    config.failed_processors = failed;
    config.manual_repartition = repartition;
    const auto result =
        fem1::fem1_solve_model(model, "tip-shear", config,
                               fem1::Fem1Solver::GaussSeidel, 1e-8);
    table.row()
        .cell(static_cast<std::uint64_t>(failed))
        .cell(failed == 0 ? "-" : (repartition ? "manual repartition" : "none"))
        .cell(result.completed
                  ? (result.converged ? "completed" : "no convergence")
                  : "STALLED")
        .cell(static_cast<std::uint64_t>(result.elapsed));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("E5 bench_fault_isolation",
                      "reconfigurability isolates faulty components");
  fem2_failures();
  std::cout << "\n";
  fem1_contrast();
  std::cout << "\nShape check: FEM-2 completes under every failure pattern "
               "with graceful slowdown\n(kernel failover + step "
               "re-execution); the FEM-1 static array stalls until a\n"
               "costly manual repartition.\n";
  return 0;
}
