// Analysis-pass overhead on the E1 workload (ISSUE: "a new
// bench_analysis.cpp measuring the overhead of conformance checking on the
// E-series workloads").
//
// The analyzer watches the simulation from the host, so the quantity that
// matters is host wall-clock of the instrumented run versus the bare run —
// simulated cycles are identical by construction (observation never
// schedules work).  Acceptance: conformance-mode overhead < 3x on E1.
#include "bench_common.hpp"

#include <chrono>
#include <optional>

#include "analyze/analyzer.hpp"
#include "analyze/model_check.hpp"
#include "analyze/verify.hpp"
#include "support/strings.hpp"

using namespace fem2;

namespace {

struct Mode {
  const char* name;
  std::optional<analyze::AnalyzerOptions> options;  // nullopt = bare run
};

struct Measurement {
  double host_ms = 0.0;
  hw::Cycles simulated = 0;
  std::size_t findings = 0;
  analyze::AnalyzerStats stats;
};

Measurement run_mode(const fem::StructureModel& model, const Mode& mode) {
  bench::Stack stack(bench::machine_shape(4, 4));
  std::optional<analyze::Analyzer> analyzer;
  if (mode.options) analyzer.emplace(*stack.runtime, *mode.options);

  const auto start = std::chrono::steady_clock::now();
  (void)fem::solve_static_parallel(model, "tip-shear", *stack.runtime,
                                   {.workers = 8, .tolerance = 1e-8});
  const auto stop = std::chrono::steady_clock::now();

  Measurement m;
  m.host_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  m.simulated = stack.machine->now();
  if (analyzer) {
    analyzer->check_now();
    m.findings = analyzer->findings().size();
    m.stats = analyzer->stats();
  }
  return m;
}

analyze::AnalyzerOptions make_options(bool conformance, bool race,
                                      bool deadlock, std::size_t stride) {
  analyze::AnalyzerOptions o;
  o.conformance = conformance;
  o.race_detection = race;
  o.deadlock_detection = deadlock;
  o.snapshot_stride = stride;
  o.check_messages = conformance;
  return o;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A2: static verification cost.  The verifier runs offline (no simulation
/// attached), so the quantity is plain wall time — and for the model
/// checker, explored states per second as the state-space bound grows.
void bench_static_verification() {
  support::Table table("A2 static verification");
  table.set_header({"pass", "config", "states", "transitions", "host ms",
                    "kstates/s"});

  {
    analyze::VerifyOptions options;
    options.protocols = false;  // grammar + rule passes only
    const auto start = std::chrono::steady_clock::now();
    const auto report = analyze::verify_specs(options);
    const double ms = elapsed_ms(start);
    table.add_row({"grammar+rules",
                   std::to_string(report.stats.grammars) + " grammars, " +
                       std::to_string(report.stats.rules) + " rules",
                   "-", "-", support::format_double(ms, 1), "-"});
    bench::note("a2_verify_specs_ms", ms, "ms");
    bench::note("a2_verify_findings",
                static_cast<double>(report.findings.size()), "findings");
  }

  struct MsgConfig {
    const char* name;
    analyze::MessagingModelOptions options;
  };
  std::vector<MsgConfig> msg_configs = {
      {"m=2 retx=2 cap=2", {}},
      {"m=3 retx=3 cap=2", {.messages = 3, .max_retransmits = 3}},
  };
  for (const auto& [name, options] : msg_configs) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = analyze::check_messaging(options);
    const double ms = elapsed_ms(start);
    table.add_row({"messaging", name, std::to_string(result.states),
                   std::to_string(result.transitions),
                   support::format_double(ms, 1),
                   support::format_double(result.states / ms, 0)});
  }
  {
    const auto start = std::chrono::steady_clock::now();
    const auto result = analyze::check_messaging(
        {.messages = 3, .max_retransmits = 3});
    const double ms = elapsed_ms(start);
    bench::note("a2_messaging_states", static_cast<double>(result.states),
                "states");
    bench::note("a2_messaging_states_per_sec", result.states / ms * 1e3,
                "states/s");
  }

  struct DbConfig {
    const char* name;
    analyze::HealthModelOptions options;
  };
  std::vector<DbConfig> db_configs = {
      {"commits=3 ckpt=2", {}},
      {"commits=7 ckpt=3", {.commits = 7, .checkpoints = 3}},
  };
  for (const auto& [name, options] : db_configs) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = analyze::check_db_health(options);
    const double ms = elapsed_ms(start);
    table.add_row({"db-health", name, std::to_string(result.states),
                   std::to_string(result.transitions),
                   support::format_double(ms, 1),
                   support::format_double(result.states / ms, 0)});
  }
  {
    const auto start = std::chrono::steady_clock::now();
    const auto result =
        analyze::check_db_health({.commits = 7, .checkpoints = 3});
    const double ms = elapsed_ms(start);
    bench::note("a2_db_health_states", static_cast<double>(result.states),
                "states");
    bench::note("a2_db_health_states_per_sec", result.states / ms * 1e3,
                "states/s");
  }

  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("A1", argc, argv);
  bench::print_header("bench_analysis",
                      "host overhead of the fem2_analyze passes on the E1 "
                      "solve (4 clusters x 4 PEs, 8 CG workers)");

  std::vector<Mode> modes = {
      {"bare (no analyzer)", std::nullopt},
      {"race+deadlock only", make_options(false, true, true, 64)},
      {"conformance s=256", make_options(true, false, false, 256)},
      {"conformance s=64", make_options(true, false, false, 64)},
      {"full s=64", make_options(true, true, true, 64)},
      {"full s=16", make_options(true, true, true, 16)},
  };
  if (bench::smoke())
    modes = {{"bare (no analyzer)", std::nullopt},
             {"full s=64", make_options(true, true, true, 64)}};

  std::vector<std::pair<std::size_t, std::size_t>> grids = {{16, 8}, {32, 8}};
  if (bench::smoke()) grids = {{16, 8}};
  for (const auto& [nx, ny] : grids) {
    const auto model = bench::cantilever_sheet(nx, ny);
    support::Table table("E1 grid " + std::to_string(nx) + "x" +
                         std::to_string(ny));
    table.set_header({"mode", "host ms", "overhead", "findings", "snapshots",
                      "graphs", "messages", "accesses"});

    // Warm-up: first run pays allocator/page-cache noise for the whole
    // binary; measure it but key ratios off the bare run that follows.
    (void)run_mode(model, modes[0]);
    const auto bare = run_mode(model, modes[0]);

    for (const auto& mode : modes) {
      const auto m = run_mode(model, mode);
      const double ratio = m.host_ms / bare.host_ms;
      table.add_row({mode.name, support::format_double(m.host_ms, 1),
                     support::format_double(ratio, 2) + "x",
                     std::to_string(m.findings),
                     std::to_string(m.stats.snapshots),
                     std::to_string(m.stats.graphs_checked),
                     std::to_string(m.stats.messages_checked),
                     std::to_string(m.stats.accesses_tracked)});
    }
    bench::note("simulated_cycles_" + std::to_string(nx) + "x" +
                    std::to_string(ny),
                static_cast<double>(bare.simulated), "cycles");
    table.print(std::cout);
    std::cout << "\n";
  }

  bench_static_verification();

  std::cout << "Simulated cycles are identical across modes: the analyzer\n"
               "only observes; it never schedules or charges work.\n";
  return bench::finish();
}
