// Analysis-pass overhead on the E1 workload (ISSUE: "a new
// bench_analysis.cpp measuring the overhead of conformance checking on the
// E-series workloads").
//
// The analyzer watches the simulation from the host, so the quantity that
// matters is host wall-clock of the instrumented run versus the bare run —
// simulated cycles are identical by construction (observation never
// schedules work).  Acceptance: conformance-mode overhead < 3x on E1.
#include "bench_common.hpp"

#include <chrono>
#include <optional>

#include "analyze/analyzer.hpp"
#include "support/strings.hpp"

using namespace fem2;

namespace {

struct Mode {
  const char* name;
  std::optional<analyze::AnalyzerOptions> options;  // nullopt = bare run
};

struct Measurement {
  double host_ms = 0.0;
  hw::Cycles simulated = 0;
  std::size_t findings = 0;
  analyze::AnalyzerStats stats;
};

Measurement run_mode(const fem::StructureModel& model, const Mode& mode) {
  bench::Stack stack(bench::machine_shape(4, 4));
  std::optional<analyze::Analyzer> analyzer;
  if (mode.options) analyzer.emplace(*stack.runtime, *mode.options);

  const auto start = std::chrono::steady_clock::now();
  (void)fem::solve_static_parallel(model, "tip-shear", *stack.runtime,
                                   {.workers = 8, .tolerance = 1e-8});
  const auto stop = std::chrono::steady_clock::now();

  Measurement m;
  m.host_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  m.simulated = stack.machine->now();
  if (analyzer) {
    analyzer->check_now();
    m.findings = analyzer->findings().size();
    m.stats = analyzer->stats();
  }
  return m;
}

analyze::AnalyzerOptions make_options(bool conformance, bool race,
                                      bool deadlock, std::size_t stride) {
  analyze::AnalyzerOptions o;
  o.conformance = conformance;
  o.race_detection = race;
  o.deadlock_detection = deadlock;
  o.snapshot_stride = stride;
  o.check_messages = conformance;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("A1", argc, argv);
  bench::print_header("bench_analysis",
                      "host overhead of the fem2_analyze passes on the E1 "
                      "solve (4 clusters x 4 PEs, 8 CG workers)");

  std::vector<Mode> modes = {
      {"bare (no analyzer)", std::nullopt},
      {"race+deadlock only", make_options(false, true, true, 64)},
      {"conformance s=256", make_options(true, false, false, 256)},
      {"conformance s=64", make_options(true, false, false, 64)},
      {"full s=64", make_options(true, true, true, 64)},
      {"full s=16", make_options(true, true, true, 16)},
  };
  if (bench::smoke())
    modes = {{"bare (no analyzer)", std::nullopt},
             {"full s=64", make_options(true, true, true, 64)}};

  std::vector<std::pair<std::size_t, std::size_t>> grids = {{16, 8}, {32, 8}};
  if (bench::smoke()) grids = {{16, 8}};
  for (const auto& [nx, ny] : grids) {
    const auto model = bench::cantilever_sheet(nx, ny);
    support::Table table("E1 grid " + std::to_string(nx) + "x" +
                         std::to_string(ny));
    table.set_header({"mode", "host ms", "overhead", "findings", "snapshots",
                      "graphs", "messages", "accesses"});

    // Warm-up: first run pays allocator/page-cache noise for the whole
    // binary; measure it but key ratios off the bare run that follows.
    (void)run_mode(model, modes[0]);
    const auto bare = run_mode(model, modes[0]);

    for (const auto& mode : modes) {
      const auto m = run_mode(model, mode);
      const double ratio = m.host_ms / bare.host_ms;
      table.add_row({mode.name, support::format_double(m.host_ms, 1),
                     support::format_double(ratio, 2) + "x",
                     std::to_string(m.findings),
                     std::to_string(m.stats.snapshots),
                     std::to_string(m.stats.graphs_checked),
                     std::to_string(m.stats.messages_checked),
                     std::to_string(m.stats.accesses_tracked)});
    }
    bench::note("simulated_cycles_" + std::to_string(nx) + "x" +
                    std::to_string(ny),
                static_cast<double>(bare.simulated), "cycles");
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Simulated cycles are identical across modes: the analyzer\n"
               "only observes; it never schedules or charges work.\n";
  return bench::finish();
}
