// E8 — "fast linear algebra operations (to extract the low-level
// parallelism available in these operations)" (Hardware architecture);
// NAVM operations "inner product, vector operations, etc."
//
// Distributed inner product, axpy and matvec over windows, swept over
// worker counts, plus a reduction ablation: join-based (terminate-notify
// carries the partial) vs collector-based (remote-call deposits).
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "support/strings.hpp"

using namespace fem2;

namespace {

constexpr std::size_t kN = 16'384;

struct DotDriverParams {
  std::uint32_t workers = 4;
  bool use_collector = false;
};

struct DepositDotArgs {
  navm::Window a, b;
  hw::ClusterId home;
  std::uint64_t collector = 0;
};

void register_drivers(navm::Runtime& runtime) {
  // Inner product of two task-owned vectors, split into K window pairs.
  runtime.define_task(
      "bench.dot.driver", [](navm::TaskContext& ctx) -> navm::Coro {
        const auto& p = ctx.params().as<DotDriverParams>();
        std::vector<double> a(kN), b(kN);
        for (std::size_t i = 0; i < kN; ++i) {
          a[i] = static_cast<double>(i % 97) / 97.0;
          b[i] = static_cast<double>(i % 89) / 89.0;
        }
        const auto wa = ctx.create_vector(std::move(a));
        const auto wb = ctx.create_vector(std::move(b));
        const auto a_parts = wa.split_rows(p.workers);
        const auto b_parts = wb.split_rows(p.workers);

        double total = 0.0;
        if (!p.use_collector) {
          const auto results = co_await navm::forall(
              ctx, navm::kDotTask, p.workers, [&](std::uint32_t i) {
                return navm::make_dot_params({a_parts[i], b_parts[i]});
              });
          for (const auto& r : results) total += navm::as_real(r);
        } else {
          const auto collector = ctx.make_collector(p.workers);
          ctx.initiate("bench.dot.deposit", p.workers, [&](std::uint32_t i) {
            return sysvm::Payload::of(
                DepositDotArgs{a_parts[i], b_parts[i], ctx.cluster(),
                               collector},
                2 * navm::Window::kDescriptorBytes + 16);
          });
          const auto deposits = co_await ctx.collect(collector);
          for (const auto& d : deposits) total += navm::as_real(d);
          (void)co_await ctx.join(p.workers);
        }
        co_return navm::payload_real(total);
      });

  runtime.define_task(
      "bench.dot.deposit", [](navm::TaskContext& ctx) -> navm::Coro {
        const auto& args = ctx.params().as<DepositDotArgs>();
        const auto a = co_await ctx.read(args.a);
        const auto b = co_await ctx.read(args.b);
        ctx.charge_flops(2 * a.size());
        co_await ctx.deposit(args.home, args.collector,
                             navm::payload_real(la::dot(a, b)));
        co_return sysvm::Payload{};
      });

  // axpy over K window pairs.
  runtime.define_task(
      "bench.axpy.driver", [](navm::TaskContext& ctx) -> navm::Coro {
        const auto workers =
            static_cast<std::uint32_t>(navm::as_int(ctx.params()));
        std::vector<double> x(kN, 1.5), y(kN, 0.25);
        const auto wx = ctx.create_vector(std::move(x));
        const auto wy = ctx.create_vector(std::move(y));
        const auto xs = wx.split_rows(workers);
        const auto ys = wy.split_rows(workers);
        (void)co_await navm::forall(
            ctx, navm::kAxpyTask, workers, [&](std::uint32_t i) {
              return navm::make_axpy_params({2.0, xs[i], ys[i]});
            });
        const auto y_after = co_await ctx.read(wy);
        co_return navm::payload_real(y_after.front());
      });
}

double flops_per_kcycle(std::uint64_t flops, hw::Cycles cycles) {
  return static_cast<double>(flops) / (static_cast<double>(cycles) / 1e3);
}

void dot_sweep() {
  support::Table table(
      "Distributed inner product, n = 16384, 4 clusters x 8 PEs");
  table.set_header({"workers", "reduction", "cycles", "flop / kcycle",
                    "messages"});
  std::vector<std::uint32_t> workers = {1, 2, 4, 8, 16};
  if (bench::smoke()) workers = {1, 4};
  for (const bool use_collector : {false, true}) {
    for (const std::uint32_t k : workers) {
      bench::Stack stack(bench::machine_shape(4, 8));
      register_drivers(*stack.runtime);
      const auto task = stack.runtime->launch(
          "bench.dot.driver",
          sysvm::Payload::of(DotDriverParams{k, use_collector}, 8));
      stack.runtime->run();
      FEM2_CHECK(stack.os->task_finished(task));
      table.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(use_collector ? "collector deposits" : "join (terminate)")
          .cell(static_cast<std::uint64_t>(stack.machine->now()))
          .cell(flops_per_kcycle(2 * kN, stack.machine->now()), 1)
          .cell(stack.os->metrics().total_messages());
      bench::note("dot_cycles_" +
                      std::string(use_collector ? "collector" : "join") +
                      "_k" + std::to_string(k),
                  static_cast<double>(stack.machine->now()), "cycles");
    }
  }
  table.print(std::cout);
}

void axpy_sweep() {
  support::Table table("Distributed axpy, n = 16384");
  table.set_header({"workers", "cycles", "flop / kcycle"});
  std::vector<std::uint32_t> workers = {1, 2, 4, 8, 16};
  if (bench::smoke()) workers = {1, 4};
  for (const std::uint32_t k : workers) {
    bench::Stack stack(bench::machine_shape(4, 8));
    register_drivers(*stack.runtime);
    const auto task = stack.runtime->launch("bench.axpy.driver",
                                            navm::payload_int(k));
    stack.runtime->run();
    FEM2_CHECK(stack.os->task_finished(task));
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(stack.machine->now()))
        .cell(flops_per_kcycle(2 * kN, stack.machine->now()), 1);
    bench::note("axpy_cycles_k" + std::to_string(k),
                static_cast<double>(stack.machine->now()), "cycles");
  }
  table.print(std::cout);
}

void matvec_sweep() {
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 24u : 48u, 12);
  const auto system = fem::assemble(model);
  const auto& a = system.stiffness;
  const std::size_t n = a.rows();

  support::Table table("Distributed sparse matvec (stiffness sheet)");
  table.set_header({"workers", "cycles", "flop / kcycle", "traffic"});
  std::vector<std::uint32_t> workers = {1, 2, 4, 8, 16};
  if (bench::smoke()) workers = {1, 4};
  for (const std::uint32_t k : workers) {
    bench::Stack stack(bench::machine_shape(4, 8));
    auto& runtime = *stack.runtime;
    runtime.define_task(
        "bench.matvec.driver", [&](navm::TaskContext& ctx) -> navm::Coro {
          std::vector<double> x(n, 1.0);
          const auto wx = ctx.create_vector(std::move(x));
          const auto wy = ctx.create_vector(std::vector<double>(n, 0.0));
          const auto y_parts = wy.split_rows(k);
          (void)co_await navm::forall(
              ctx, navm::kMatvecTask, k, [&](std::uint32_t i) {
                const std::size_t r0 = navm::block_begin(n, k, i);
                const std::size_t r1 = navm::block_begin(n, k, i + 1);
                la::TripletBuilder builder(r1 - r0, n);
                for (std::size_t r = r0; r < r1; ++r) {
                  std::span<const std::size_t> cols;
                  std::span<const double> vals;
                  a.row(r, cols, vals);
                  for (std::size_t idx = 0; idx < cols.size(); ++idx)
                    builder.add(r - r0, cols[idx], vals[idx]);
                }
                return navm::make_matvec_params(
                    {builder.build(), r0, wx, y_parts[i]});
              });
          co_return sysvm::Payload{};
        });
    const auto task = runtime.launch("bench.matvec.driver");
    runtime.run();
    FEM2_CHECK(stack.os->task_finished(task));
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(stack.machine->now()))
        .cell(flops_per_kcycle(2 * a.nonzeros(), stack.machine->now()), 1)
        .cell(support::format_bytes(
            stack.machine->metrics().total_bytes()));
    bench::note("matvec_cycles_k" + std::to_string(k),
                static_cast<double>(stack.machine->now()), "cycles");
  }
  table.print(std::cout);
}

void csr_kernel_sweep() {
  // Host-side CSR kernels behind the fast solve path (E15): spmv_rows over
  // row partitions must be bitwise identical to the whole-matrix product at
  // every lane count, because the host backend calls it per lane without
  // locking.  Reported metrics are structural (nnz-derived), so they are
  // deterministic and gated by the baseline.
  const auto model = bench::cantilever_sheet(bench::smoke() ? 24u : 48u, 12);
  const auto system = fem::assemble(model);
  const auto& a = system.stiffness;
  const std::size_t n = a.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<double>(i % 101) / 101.0 - 0.5;
  const la::Vector reference = a.multiply(x);

  support::Table table("Host CSR spmv_rows partition (stiffness sheet)");
  table.set_header({"lanes", "rows / lane", "flop / row", "bitwise"});
  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    la::Vector y(n, 0.0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t r0 = navm::block_begin(n, lanes, lane);
      const std::size_t r1 = navm::block_begin(n, lanes, lane + 1);
      la::spmv_rows(a.row_ptr(), a.col_idx(), a.values(), x, r0, r1,
                    std::span<double>(y).subspan(r0, r1 - r0));
    }
    bool bitwise = true;
    for (std::size_t i = 0; i < n; ++i)
      bitwise = bitwise && y[i] == reference[i];
    FEM2_CHECK_MSG(bitwise, "spmv_rows partition diverged from multiply()");
    table.row()
        .cell(static_cast<std::uint64_t>(lanes))
        .cell(static_cast<std::uint64_t>((n + lanes - 1) / lanes))
        .cell(2.0 * static_cast<double>(a.nonzeros()) /
                  static_cast<double>(n),
              1)
        .cell("yes");
  }
  table.print(std::cout);
  bench::note("csr_spmv_nnz", static_cast<double>(a.nonzeros()), "nnz");
  bench::note("csr_storage_bytes", static_cast<double>(a.storage_bytes()),
              "bytes");
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E8", argc, argv);
  bench::print_header("E8 bench_linear_algebra",
                      "distributed inner product / axpy / matvec through "
                      "windows");
  dot_sweep();
  std::cout << "\n";
  axpy_sweep();
  std::cout << "\n";
  matvec_sweep();
  std::cout << "\n";
  csr_kernel_sweep();
  std::cout << "\nShape check: throughput rises with workers until window "
               "traffic dominates;\ncollector reduction trades "
               "terminate-notify messages for remote-call\ndeposits with "
               "similar totals at small K.\n";
  return bench::finish();
}
