// E15 — fast solve path: CSR assembly + preconditioned CG against the
// direct solvers on the E1 cantilever sheet.
//
// All four host solve paths (dense Cholesky, skyline Cholesky, CG+Jacobi,
// CG+two-level) run on the same assembled system; processing cost is a
// deterministic flop model (1 flop = 1 cycle), so the reported
// solve_cycles are exactly reproducible run-over-run:
//   dense:    n³/3 + 2n²               (factor + two triangular solves)
//   skyline:  Σ h_r² + 2 Σ h_r        (envelope heights from the pattern)
//   cg:       iters × per-iteration flops (SpMV + vector ops + M⁻¹ apply)
// Iteration counts come from the actual solves, so a preconditioner
// regression shifts the model immediately.
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "support/strings.hpp"

using namespace fem2;

namespace {

struct FlopModel {
  double n = 0;
  double nnz = 0;
  double envelope = 0;   ///< Σ h_r, skyline column heights
  double envelope2 = 0;  ///< Σ h_r²
  double coarse = 0;     ///< two-level coarse dofs

  double dense() const { return n * n * n / 3.0 + 2.0 * n * n; }
  double skyline() const { return envelope2 + 2.0 * envelope; }
  /// Per iteration: SpMV (2nnz), two dots + three axpy-likes (10n),
  /// Jacobi apply (n).
  double cg_jacobi(double iters) const {
    return iters * (2.0 * nnz + 11.0 * n);
  }
  /// Two-level V-cycle apply adds two more SpMVs (4nnz), two smoother
  /// sweeps (6n), restrict/prolong (2n) and the dense coarse
  /// back-substitution (2nc²); setup factorizes A_c once (nc³/3).
  double cg_two_level(double iters) const {
    return iters * (6.0 * nnz + 19.0 * n + 2.0 * coarse * coarse) +
           coarse * coarse * coarse / 3.0;
  }
};

FlopModel model_for(const fem::AssembledSystem& system) {
  FlopModel m;
  const auto& a = system.stiffness;
  m.n = static_cast<double>(a.rows());
  m.nnz = static_cast<double>(a.nonzeros());
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (row_ptr[r] == row_ptr[r + 1]) continue;
    const double h = static_cast<double>(r - col_idx[row_ptr[r]] + 1);
    m.envelope += h;
    m.envelope2 += h * h;
  }
  m.coarse = 32;  // TwoLevelOptions default, aggregates stay dof-count ≥ nc
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E15", argc, argv);
  bench::print_header(
      "E15 bench_sparse_solve",
      "CSR + preconditioned CG vs the direct solvers (flop-model cycles)");

  std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {8, 4}, {16, 8}, {32, 8}, {48, 12}};
  if (bench::smoke()) grids = {{8, 4}, {16, 8}};

  support::Table table(
      "Host solve paths on the cantilever sheet (solve_cycles = flop model)");
  table.set_header({"grid", "dofs", "nnz", "dense Mcyc", "skyline Mcyc",
                    "pcg-jacobi Mcyc", "(iters)", "pcg-two-level Mcyc",
                    "(iters)", "csr bytes"});

  for (const auto& [nx, ny] : grids) {
    const std::string grid = std::to_string(nx) + "x" + std::to_string(ny);
    const auto model = bench::cantilever_sheet(nx, ny);
    const auto system = fem::assemble(model);
    const auto flops = model_for(system);

    const auto dense = fem::solve_static(
        model, "tip-shear", {.kind = fem::SolverKind::DenseCholesky});
    const auto jacobi = fem::solve_static(
        model, "tip-shear",
        {.kind = fem::SolverKind::PreconditionedCg, .tolerance = 1e-10});
    const auto two_level = fem::solve_static(
        model, "tip-shear",
        {.kind = fem::SolverKind::TwoLevelCg, .tolerance = 1e-10});
    FEM2_CHECK(jacobi.stats.converged && two_level.stats.converged);
    const double scale =
        std::max(1.0, la::norm_inf(dense.displacements.values));
    FEM2_CHECK_MSG(max_abs_diff(jacobi.displacements.values,
                                dense.displacements.values) < 1e-6 * scale,
                   "CG+Jacobi disagrees with the dense reference");
    FEM2_CHECK_MSG(max_abs_diff(two_level.displacements.values,
                                dense.displacements.values) < 1e-6 * scale,
                   "CG+two-level disagrees with the dense reference");

    const double dense_cycles = flops.dense();
    const double skyline_cycles = flops.skyline();
    const double jacobi_cycles =
        flops.cg_jacobi(static_cast<double>(jacobi.stats.iterations));
    const double two_level_cycles =
        flops.cg_two_level(static_cast<double>(two_level.stats.iterations));

    // Acceptance bar: from the E1 16x8 mesh (n = 288) up, the iterative
    // path must halve the dense processing cost (it is ~8× better there
    // and the gap widens with the grid).  The 8x4 grid sits below the
    // sparse/dense crossover (n = 80, dense ≈ CG) and is reported as the
    // crossover datapoint, not gated.
    if (system.dofs.free_dofs >= 256) {
      FEM2_CHECK_MSG(jacobi_cycles * 2.0 <= dense_cycles,
                     "CG+Jacobi no longer halves the dense solve cost");
      FEM2_CHECK_MSG(two_level_cycles * 2.0 <= dense_cycles,
                     "CG+two-level no longer halves the dense solve cost");
    }

    table.row()
        .cell(grid)
        .cell(static_cast<std::uint64_t>(system.dofs.free_dofs))
        .cell(static_cast<std::uint64_t>(system.stiffness.nonzeros()))
        .cell(dense_cycles / 1e6, 3)
        .cell(skyline_cycles / 1e6, 3)
        .cell(jacobi_cycles / 1e6, 3)
        .cell(static_cast<std::uint64_t>(jacobi.stats.iterations))
        .cell(two_level_cycles / 1e6, 3)
        .cell(static_cast<std::uint64_t>(two_level.stats.iterations))
        .cell(support::format_bytes(system.stiffness.storage_bytes()));

    bench::note("dense_cycles_" + grid, dense_cycles, "cycles");
    bench::note("skyline_cycles_" + grid, skyline_cycles, "cycles");
    bench::note("pcg_jacobi_cycles_" + grid, jacobi_cycles, "cycles");
    bench::note("pcg_two_level_cycles_" + grid, two_level_cycles, "cycles");
    bench::note("pcg_jacobi_iters_" + grid,
                static_cast<double>(jacobi.stats.iterations), "iters");
    bench::note("pcg_two_level_iters_" + grid,
                static_cast<double>(two_level.stats.iterations), "iters");
    bench::note("csr_storage_bytes_" + grid,
                static_cast<double>(system.stiffness.storage_bytes()),
                "bytes");
  }
  table.print(std::cout);

  std::cout << "\nShape check: the sparse iterative paths beat dense "
               "Cholesky by a growing\nmargin from 16x8 up (the acceptance "
               "bar is ≤50% there); 8x4 marks the\nsparse/dense crossover. "
               "Two-level needs fewer iterations than Jacobi but\npays ~3× "
               "per application, so on raw flops Jacobi wins at these "
               "grids —\nthe iteration cut is what matters where each "
               "iteration is a message round\n(see E3/E7).\n";
  return bench::finish();
}
