// E1 — "quantitative estimates of processing requirements, storage
// requirements, and communication requirements for a typical large-scale
// application" (FEM-2 paper, Current Status; the Adams–Voigt analysis).
//
// Sweeps a plane-stress cantilever sheet through growing grids and runs the
// full pipeline on the simulated FEM-2 machine: parallel assembly, the
// distributed solve, and (host-modeled) stress recovery; reports per-phase
// processing, storage and communication.
#include "bench_common.hpp"

#include "fem/assembly.hpp"
#include "fem/passembly.hpp"
#include "fem/stress.hpp"
#include "support/strings.hpp"

using namespace fem2;

int main(int argc, char** argv) {
  bench::init("E1", argc, argv);
  bench::print_header(
      "E1 bench_requirements",
      "processing / storage / communication of a typical large application");

  const auto config = bench::machine_shape(4, 4);

  std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {8, 4}, {16, 8}, {32, 8}, {48, 12}, {64, 16}, {96, 24}};
  if (bench::smoke()) grids = {{8, 4}, {16, 8}};

  support::Table table(
      "Cantilever sheet pipeline on 4 clusters x 4 PEs "
      "(assembly: 8 tasks; solve: 8 CG workers; stress: 8 tasks — all "
      "simulated)");
  table.set_header({"grid", "dofs", "nnz", "assemble Mcyc", "solve Mcyc",
                    "stress Mcyc", "iters", "msgs", "traffic",
                    "model bytes", "matrix bytes", "mem high water"});

  for (const auto& [nx, ny] : grids) {
    const auto model = bench::cantilever_sheet(nx, ny);

    // Phase 1: parallel assembly on its own machine instance.
    bench::Stack assembly_stack(config);
    fem::register_assembly_tasks(*assembly_stack.runtime);
    fem::ParallelAssemblyStats assembly_stats;
    const auto system = fem::assemble_parallel(model, *assembly_stack.runtime,
                                               8, &assembly_stats);

    // Phase 2: distributed solve on a fresh machine.
    bench::ParallelRun run(model, 8, config);
    const auto& machine_metrics = run.stack.machine->metrics();
    const auto& os_metrics = run.stack.os->metrics();

    // Phase 3: stress recovery, also fanned out on a fresh machine.
    bench::Stack stress_stack(config);
    fem::register_stress_tasks(*stress_stack.runtime);
    fem::ParallelStressStats stress_stats;
    (void)fem::compute_stresses_parallel(model, run.solution.displacements,
                                         *stress_stack.runtime, 8,
                                         &stress_stats);
    const double stress_mcyc =
        static_cast<double>(stress_stats.elapsed) / 1e6;

    const auto total_messages =
        os_metrics.total_messages() +
        assembly_stack.os->metrics().total_messages() +
        stress_stack.os->metrics().total_messages();
    const auto total_bytes =
        machine_metrics.total_bytes() +
        assembly_stack.machine->metrics().total_bytes() +
        stress_stack.machine->metrics().total_bytes();

    table.row()
        .cell(std::to_string(nx) + "x" + std::to_string(ny))
        .cell(static_cast<std::uint64_t>(system.dofs.free_dofs))
        .cell(static_cast<std::uint64_t>(system.stiffness.nonzeros()))
        .cell(static_cast<double>(assembly_stats.elapsed) / 1e6, 2)
        .cell(static_cast<double>(run.elapsed()) / 1e6, 2)
        .cell(stress_mcyc, 3)
        .cell(static_cast<std::uint64_t>(run.solution.stats.iterations))
        .cell(total_messages)
        .cell(support::format_bytes(total_bytes))
        .cell(support::format_bytes(model.storage_bytes()))
        .cell(support::format_bytes(system.stiffness.storage_bytes()))
        .cell(support::format_bytes(machine_metrics.memory_high_water()));

    const std::string grid =
        std::to_string(nx) + "x" + std::to_string(ny);
    bench::note("assemble_cycles_" + grid,
                static_cast<double>(assembly_stats.elapsed), "cycles");
    bench::note("solve_cycles_" + grid, static_cast<double>(run.elapsed()),
                "cycles");
    bench::note("solve_iterations_" + grid,
                static_cast<double>(run.solution.stats.iterations), "iters");
    bench::note("total_messages_" + grid,
                static_cast<double>(total_messages), "msgs");
    bench::note("total_bytes_" + grid, static_cast<double>(total_bytes),
                "bytes");
  }
  table.print(std::cout);

  std::cout << "\nShape check (paper: solve dominates; storage and traffic "
               "grow with the grid;\ncommunication is a significant, "
               "measurable fraction of the solve).\n";
  return bench::finish();
}
