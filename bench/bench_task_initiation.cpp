// E4 — "large scale dynamic task initiation"; the kernel PE "fields
// incoming messages and assigns available PE's to process them"; "messages
// arriving in the input queue of any cluster can be processed by any
// available PE" (Hardware architecture).
//
// Part 1: initiation storms — K replications of a short task, flat fan-out.
// Part 2: tree fan-out vs flat fan-out (distributing the initiation load
//         over many parents).
// Part 3: any-PE pickup — the same storm on machines with the same total
//         PE count but different kernel-to-worker ratios.
#include "bench_common.hpp"

#include <cmath>

#include "support/strings.hpp"

using namespace fem2;

namespace {

constexpr hw::Cycles kGrainCycles = 2'000;  // work per leaf task

void register_storm_tasks(navm::Runtime& runtime) {
  runtime.define_task("storm.leaf", [](navm::TaskContext& ctx) -> navm::Coro {
    ctx.charge(kGrainCycles);
    co_return navm::payload_int(1);
  });
  runtime.define_task("storm.branch",
                      [](navm::TaskContext& ctx) -> navm::Coro {
                        const auto fan = static_cast<std::uint32_t>(
                            navm::as_int(ctx.params()));
                        const auto results = co_await navm::forall(
                            ctx, "storm.leaf", fan,
                            [](std::uint32_t) { return sysvm::Payload{}; });
                        co_return navm::payload_int(
                            static_cast<std::int64_t>(results.size()));
                      });
  runtime.define_task("storm.flat", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto k =
        static_cast<std::uint32_t>(navm::as_int(ctx.params()));
    const auto results = co_await navm::forall(
        ctx, "storm.leaf", k, [](std::uint32_t) { return sysvm::Payload{}; });
    co_return navm::payload_int(static_cast<std::int64_t>(results.size()));
  });
  runtime.define_task("storm.tree", [](navm::TaskContext& ctx) -> navm::Coro {
    const auto k = static_cast<std::uint32_t>(navm::as_int(ctx.params()));
    const auto branch = static_cast<std::uint32_t>(
        std::lround(std::sqrt(static_cast<double>(k))));
    const auto fan = (k + branch - 1) / branch;
    const auto results =
        co_await navm::forall(ctx, "storm.branch", branch,
                              [&](std::uint32_t) {
                                return navm::payload_int(fan);
                              });
    std::int64_t total = 0;
    for (const auto& r : results) total += navm::as_int(r);
    co_return navm::payload_int(total);
  });
}

void initiation_storm() {
  support::Table table(
      "Flat initiation storms on 4 clusters x 8 PEs (leaf grain 2k cycles)");
  table.set_header({"K tasks", "cycles", "initiations / Mcycle",
                    "ready-queue peak", "PE utilization %"});
  std::vector<std::uint32_t> storms = {8, 32, 128, 512};
  if (bench::smoke()) storms = {8, 32};
  for (const std::uint32_t k : storms) {
    bench::Stack stack(bench::machine_shape(4, 8));
    register_storm_tasks(*stack.runtime);
    const auto task = stack.runtime->launch("storm.flat",
                                            navm::payload_int(k));
    stack.runtime->run();
    FEM2_CHECK(stack.os->task_finished(task));
    const auto elapsed = stack.machine->now();
    const auto& metrics = stack.os->metrics();
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(static_cast<double>(metrics.tasks_initiated) /
                  (static_cast<double>(elapsed) / 1e6),
              1)
        .cell(metrics.ready_queue_peak)
        .cell(100.0 * stack.machine->metrics().pe_utilization(elapsed), 1);
    bench::note("storm_cycles_k" + std::to_string(k),
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);
}

void tree_vs_flat() {
  const std::int64_t leaves = bench::smoke() ? 128 : 512;
  support::Table table("Fan-out shape, K = " + std::to_string(leaves) +
                       " leaves");
  table.set_header({"shape", "cycles", "kernel dispatches",
                    "ready-queue peak"});
  for (const char* shape : {"storm.flat", "storm.tree"}) {
    bench::Stack stack(bench::machine_shape(4, 8));
    register_storm_tasks(*stack.runtime);
    const auto task = stack.runtime->launch(shape, navm::payload_int(leaves));
    stack.runtime->run();
    FEM2_CHECK(stack.os->task_finished(task));
    table.row()
        .cell(shape)
        .cell(static_cast<std::uint64_t>(stack.machine->now()))
        .cell(stack.os->metrics().kernel_dispatches)
        .cell(stack.os->metrics().ready_queue_peak);
    bench::note(std::string(shape) + "_cycles",
                static_cast<double>(stack.machine->now()), "cycles");
  }
  table.print(std::cout);
}

void any_pe_pickup() {
  support::Table table(
      "Same 32 PEs, different cluster shapes: kernel fielding vs worker "
      "pool (K = 256)");
  table.set_header({"shape", "kernels", "workers/cluster", "cycles",
                    "PE utilization %"});
  const std::int64_t pickup_k = bench::smoke() ? 64 : 256;
  std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {32, 1}, {16, 2}, {8, 4}, {4, 8}, {2, 16}, {1, 32}};
  if (bench::smoke()) shapes = {{8, 4}, {4, 8}};
  for (const auto& [clusters, ppc] : shapes) {
    bench::Stack stack(bench::machine_shape(clusters, ppc));
    register_storm_tasks(*stack.runtime);
    const auto task = stack.runtime->launch("storm.flat",
                                            navm::payload_int(pickup_k));
    stack.runtime->run();
    FEM2_CHECK(stack.os->task_finished(task));
    const auto elapsed = stack.machine->now();
    table.row()
        .cell(std::to_string(clusters) + "x" + std::to_string(ppc))
        .cell(static_cast<std::uint64_t>(clusters))
        .cell(static_cast<std::uint64_t>(ppc > 1 ? ppc - 1 : 1))
        .cell(static_cast<std::uint64_t>(elapsed))
        .cell(100.0 * stack.machine->metrics().pe_utilization(elapsed), 1);
    bench::note("pickup_cycles_" + std::to_string(clusters) + "x" +
                    std::to_string(ppc),
                static_cast<double>(elapsed), "cycles");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E4", argc, argv);
  bench::print_header("E4 bench_task_initiation",
                      "large-scale dynamic task initiation & kernel "
                      "message fielding");
  initiation_storm();
  std::cout << "\n";
  tree_vs_flat();
  std::cout << "\n";
  any_pe_pickup();
  std::cout << "\nShape check: initiation throughput grows with K until the "
               "kernel PEs saturate;\ntree fan-out relieves the single "
               "parent; a pool of workers per kernel beats\none-PE clusters "
               "(any available PE processes the queue).\n";
  return bench::finish();
}
