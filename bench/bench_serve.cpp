// E14 — fem2-serve: group commit vs one-fsync-per-commit, and the
// snapshot query path.
//
// Part 1, the WAL discipline itself: 64 committing sessions (threads)
// hammer one persistent engine E11-style.  Classic mode pays one fsync
// per commit, serialized on the WAL tail; a batch window lets one
// leader fsync for everyone who arrived in time.  The headline metric —
// the speedup group commit buys at 64 sessions — is measured here, at
// the engine, where the fsync discipline is the only variable.
//
// Part 2, end to end: the same contrast through the full server stack
// (admission, per-session FIFOs, worker pool, appvm command
// interpreter).  Pipelined clients issue `store` commands; on a small
// host the interpreter's CPU cost caps the end-to-end ratio well below
// the WAL-level one, and the gap between the two tables is exactly that
// per-command overhead.
//
// Part 3, the read side: Server::query serves kind-index and full-scan
// filters on the caller's thread, never touching the queue or the WAL;
// we report per-query latency over the store the workload just built.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "db/engine.hpp"
#include "serve/server.hpp"

using namespace fem2;

namespace {

constexpr std::size_t kSessions = 64;
constexpr std::size_t kPayloadBytes = 256;
constexpr auto kWindow = std::chrono::microseconds(500);

std::size_t wal_ops_per_session() { return bench::smoke() ? 4 : 64; }
std::size_t wal_repeats() { return bench::smoke() ? 1 : 3; }
std::size_t serve_ops_per_session() { return bench::smoke() ? 8 : 64; }
std::size_t query_rounds() { return bench::smoke() ? 200 : 2000; }

struct RunResult {
  double elapsed_ms = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  double commits_per_s = 0.0;
  double query_us_kind = 0.0;
  double query_us_scan = 0.0;
};

db::EngineOptions engine_options(const std::filesystem::path& dir,
                                 std::chrono::microseconds window) {
  std::filesystem::remove_all(dir);
  db::EngineOptions options;
  options.directory = dir.string();
  options.compact_after_bytes = 0;
  options.group_commit_window = window;
  return options;
}

/// Part 1: `sessions` threads commit straight against the engine, each
/// an unconditional 256-byte store over a private name pool; window == 0 is
/// the classic one-fsync-per-commit discipline.
RunResult run_wal(const std::filesystem::path& dir, std::size_t sessions,
                  std::chrono::microseconds window) {
  db::Engine engine(engine_options(dir, window));
  const std::string payload(kPayloadBytes, 'g');
  const std::size_t per_session = wal_ops_per_session();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&engine, &payload, s, per_session] {
      for (std::size_t i = 0; i < per_session; ++i) {
        engine.put("wal-" + std::to_string(s) + "-" + std::to_string(i % 4),
                   "model", payload);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();

  RunResult result;
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.commits = sessions * per_session;
  const auto stats = engine.stats();
  result.batches = stats.group_batches;
  result.max_batch = stats.group_max_batch;
  result.commits_per_s =
      1000.0 * static_cast<double>(result.commits) / result.elapsed_ms;
  return result;
}

/// Part 2: the same contrast end to end — pipelined clients issue
/// `store` commands through admission, the FIFOs and the worker pool.
RunResult run_serve(const std::filesystem::path& dir, std::size_t sessions,
                    std::chrono::microseconds window) {
  auto engine = std::make_shared<db::Engine>(engine_options(dir, window));

  serve::ServerOptions sopts;
  // Commit batching needs committers in flight together, so the pool is
  // as wide as the session count (workers blocked in a batch fsync or on
  // the window's cv cost no CPU) ...
  sopts.workers = static_cast<unsigned>(std::min<std::size_t>(sessions, 64));
  // ... and spinning that wide would starve a small host.
  sopts.spin_iterations = 0;
  sopts.queue_capacity = 8192;
  // The bench tenant legitimately keeps sessions * pipeline requests in
  // flight; quota rejections are a different experiment (the chaos one).
  sopts.default_quota.max_sessions = 128;
  sopts.default_quota.max_inflight = 8192;
  serve::Server server(engine, sopts);

  // Setup (untimed): one session per client, each with a small meshed
  // model so `store` has something to serialize.
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    auto opened = server.open_session("bench", "user-" + std::to_string(s));
    if (opened.session == 0) throw std::runtime_error(opened.response.text);
    ids.push_back(opened.session);
    const auto meshed = server.call(opened.session, "mesh beam segments=1");
    if (!meshed.ok) throw std::runtime_error(meshed.text);
  }

  const std::size_t per_session = serve_ops_per_session();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    clients.emplace_back([&server, &ids, s, per_session] {
      // Pipelined client: keep a window of async submissions in flight
      // (the session FIFO preserves their order) instead of paying a
      // full round-trip per command.
      constexpr std::size_t kPipeline = 16;
      std::vector<std::future<appvm::Response>> inflight;
      inflight.reserve(kPipeline);
      auto drain = [&inflight] {
        for (auto& f : inflight) {
          const auto response = f.get();
          if (!response.ok) throw std::runtime_error(response.text);
        }
        inflight.clear();
      };
      for (std::size_t i = 0; i < per_session; ++i) {
        // Distinct per-session names: throughput, not CAS contention.
        const auto name = "e14-" + std::to_string(s) + "-" +
                          std::to_string(i % 4);
        inflight.push_back(server.submit(ids[s], "store " + name));
        if (inflight.size() == kPipeline) drain();
      }
      drain();
    });
  }
  for (auto& t : clients) t.join();
  const auto stop = std::chrono::steady_clock::now();

  RunResult result;
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.commits = sessions * per_session;
  const auto stats = engine->stats();
  result.batches = stats.group_batches;
  result.max_batch = stats.group_max_batch;
  result.commits_per_s =
      1000.0 * static_cast<double>(result.commits) / result.elapsed_ms;

  // Part 3: snapshot reads on the populated store (caller's thread).
  db::QueryFilter by_kind;
  by_kind.kind = "model";
  const auto q0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < query_rounds(); ++i) {
    (void)server.query(by_kind);
  }
  const auto q1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < query_rounds(); ++i) {
    (void)server.query({});
  }
  const auto q2 = std::chrono::steady_clock::now();
  result.query_us_kind =
      std::chrono::duration<double, std::micro>(q1 - q0).count() /
      static_cast<double>(query_rounds());
  result.query_us_scan =
      std::chrono::duration<double, std::micro>(q2 - q1).count() /
      static_cast<double>(query_rounds());

  for (const auto id : ids) server.close_session(id);
  return result;
}

void table_row(support::Table& table, std::size_t sessions,
               const std::string& mode, const RunResult& result) {
  table.row()
      .cell(static_cast<std::uint64_t>(sessions))
      .cell(mode)
      .cell(result.commits)
      .cell(result.elapsed_ms, 1)
      .cell(result.commits_per_s, 0)
      .cell(result.batches)
      .cell(result.max_batch);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E14", argc, argv);
  std::cout << "E14: fem2-serve group commit vs per-commit fsync\n"
            << "     " << kSessions << " sessions, "
            << kWindow.count() << " us batch window vs fsync on every "
            << "commit;\n     WAL discipline at the engine, then end to "
            << "end through the server\n\n";

  const auto base = std::filesystem::temp_directory_path() / "fem2_bench_serve";
  std::filesystem::remove_all(base);

  // --- Part 1: the WAL discipline at the engine -------------------------
  support::Table wal_table("engine commit throughput, 64 committing sessions");
  wal_table.set_header({"sessions", "mode", "commits", "elapsed-ms",
                        "commits/s", "batches", "max-batch"});
  // Best of N repeats: on a small shared host a single short run is at
  // the mercy of scheduler and device noise.
  auto best_wal = [&base](const std::string& tag,
                          std::chrono::microseconds window) {
    RunResult best;
    for (std::size_t r = 0; r < wal_repeats(); ++r) {
      const auto result =
          run_wal(base / (tag + std::to_string(r)), kSessions, window);
      if (result.commits_per_s > best.commits_per_s) best = result;
    }
    return best;
  };
  const auto wal_classic =
      best_wal("wal_classic", std::chrono::microseconds(0));
  const auto wal_grouped = best_wal("wal_grouped", kWindow);
  table_row(wal_table, kSessions, "classic", wal_classic);
  table_row(wal_table, kSessions, "grouped", wal_grouped);
  wal_table.print(std::cout);
  const double wal_speedup =
      wal_grouped.commits_per_s / wal_classic.commits_per_s;
  bench::note("wal_commits_per_s_s64_classic", wal_classic.commits_per_s,
              "commits/s");
  bench::note("wal_commits_per_s_s64_grouped", wal_grouped.commits_per_s,
              "commits/s");
  bench::note("group_speedup_s64", wal_speedup, "x");
  std::cout << "\n";

  // --- Part 2: end to end through the server ----------------------------
  support::Table serve_table("server commit throughput, pipelined clients");
  serve_table.set_header({"sessions", "mode", "commits", "elapsed-ms",
                          "commits/s", "batches", "max-batch"});
  const auto serve_16 = run_serve(base / "serve_s16_grouped", 16, kWindow);
  const auto serve_grouped = run_serve(base / "serve_s64_grouped", kSessions,
                                       kWindow);
  const auto serve_classic = run_serve(base / "serve_s64_classic", kSessions,
                                       std::chrono::microseconds(0));
  table_row(serve_table, 16, "grouped", serve_16);
  table_row(serve_table, kSessions, "grouped", serve_grouped);
  table_row(serve_table, kSessions, "classic", serve_classic);
  serve_table.print(std::cout);
  const double serve_speedup =
      serve_grouped.commits_per_s / serve_classic.commits_per_s;
  bench::note("serve_commits_per_s_s16_grouped", serve_16.commits_per_s,
              "commits/s");
  bench::note("serve_commits_per_s_s64_grouped", serve_grouped.commits_per_s,
              "commits/s");
  bench::note("serve_commits_per_s_s64_classic", serve_classic.commits_per_s,
              "commits/s");
  bench::note("serve_group_speedup_s64", serve_speedup, "x");
  bench::note("query_us_kind_index", serve_grouped.query_us_kind, "us");
  bench::note("query_us_scan", serve_grouped.query_us_scan, "us");

  std::filesystem::remove_all(base);

  std::cout << "\nReading: classic mode serializes one fsync per commit on\n"
               "the WAL tail, so 64 sessions queue behind the device, while\n"
               "the window lets one leader fsync for the whole cohort: "
            << wal_speedup << "x at the engine.\nEnd to end the interpreter's "
               "per-command CPU narrows that to " << serve_speedup
            << "x\non this host; the queries ride the snapshot path and "
               "never block.\n";
  if (!bench::smoke() && wal_speedup < 5.0) {
    std::cout << "FAIL: expected >= 5x group-commit speedup at 64 sessions\n";
    bench::finish();
    return 1;
  }
  return bench::finish();
}
