// E3 — "remote access to local data (through windows)", "large messages",
// "irregular communication patterns" (Hardware architecture requirements).
//
// Part 1: message-type histogram and locality of a full distributed solve.
// Part 2: window access patterns — row, column, block and strided window
// reads against a remote 2-D array, showing how access shape changes the
// message/byte profile.
#include "bench_common.hpp"

#include "support/strings.hpp"

using namespace fem2;

namespace {

void solve_traffic() {
  const auto model =
      bench::cantilever_sheet(bench::smoke() ? 16u : 32u, 8);
  bench::ParallelRun run(model, 8, bench::machine_shape(4, 4));
  const auto& os_metrics = run.stack.os->metrics();
  const auto& net = run.stack.machine->metrics().network;

  support::Table table(
      "Message mix of one distributed solve (32x8 sheet, 8 workers)");
  table.set_header({"message type", "count", "bytes", "avg bytes"});
  for (std::size_t t = 0; t < sysvm::kMessageTypeCount; ++t) {
    const auto count = os_metrics.messages_sent[t];
    if (count == 0) continue;
    const auto bytes = os_metrics.message_bytes_sent[t];
    table.row()
        .cell(std::string(
            sysvm::message_type_name(static_cast<sysvm::MessageType>(t))))
        .cell(count)
        .cell(support::format_bytes(bytes))
        .cell(static_cast<double>(bytes) / static_cast<double>(count), 1);
  }
  table.print(std::cout);

  std::cout << "cluster-to-cluster message matrix (driver on the "
               "least-loaded cluster,\nworkers spread; diagonal = "
               "shared-memory traffic):\n"
            << net.render_traffic_matrix();

  const auto total = net.messages + net.local_messages;
  std::cout << "locality: " << net.local_messages << " intra-cluster / "
            << net.messages << " network messages ("
            << support::format_double(
                   100.0 * static_cast<double>(net.messages) /
                       static_cast<double>(total),
                   1)
            << "% cross the network); channel serialization "
            << support::format_count(net.channel_busy_cycles) << " cycles\n";

  bench::note("solve_cycles", static_cast<double>(run.elapsed()), "cycles");
  bench::note("network_messages", static_cast<double>(net.messages), "msgs");
  bench::note("local_messages", static_cast<double>(net.local_messages),
              "msgs");
  bench::note("network_bytes", static_cast<double>(net.bytes), "bytes");
}

/// Reader task: performs `count` reads of the window passed in params.
struct WindowProbeParams {
  navm::Window window;
  std::size_t repeats = 1;
};

void window_patterns() {
  struct PatternCase {
    const char* name;
    std::function<std::vector<navm::Window>(const navm::Window&)> make;
  };
  const std::size_t rows = bench::smoke() ? 16 : 64;
  const std::size_t cols = rows;
  const std::vector<PatternCase> cases = {
      {"whole array (1 x 4096 elems)", [](const navm::Window& a) {
         return std::vector<navm::Window>{a};
       }},
      {"16x16 blocks (16 x 256 elems)",
       [&](const navm::Window& a) {
         std::vector<navm::Window> out;
         for (const auto& band : a.split_rows(4))
           for (const auto& block : band.split_cols(4)) out.push_back(block);
         return out;
       }},
      {"row windows (64 x 64 elems)",
       [&](const navm::Window& a) {
         std::vector<navm::Window> out;
         for (std::size_t i = 0; i < rows; ++i) out.push_back(a.row(i));
         return out;
       }},
      {"element windows (256 x 1 elem)",
       [&](const navm::Window& a) {
         std::vector<navm::Window> out;
         for (std::size_t i = 0; i < 4; ++i)
           for (std::size_t j = 0; j < cols; ++j)
             out.push_back(a.block(i, j, 1, 1));
         return out;
       }},
  };

  support::Table table(
      "Window access patterns: remote reads of a 64x64 array "
      "(owner on cluster 0, readers elsewhere)");
  table.set_header({"pattern", "reads", "remote calls", "bytes moved",
                    "cycles"});

  for (const auto& pattern : cases) {
    bench::Stack fresh(bench::machine_shape(4, 4),
                       {.placement = sysvm::Placement::RoundRobin});
    auto& rt = *fresh.runtime;
    rt.define_task("probe.owner", [&](navm::TaskContext& ctx) -> navm::Coro {
      std::vector<double> init(rows * cols);
      for (std::size_t i = 0; i < init.size(); ++i)
        init[i] = static_cast<double>(i);
      const auto array = ctx.create_array(rows, cols, std::move(init));
      const auto windows = pattern.make(array);
      // One reader per window, scattered across clusters.
      const auto results = co_await navm::forall(
          ctx, "probe.reader", static_cast<std::uint32_t>(windows.size()),
          [&](std::uint32_t i) {
            return sysvm::Payload::of(WindowProbeParams{windows[i], 1},
                                      navm::Window::kDescriptorBytes + 8);
          });
      (void)results;
      co_return sysvm::Payload{};
    });
    rt.define_task("probe.reader",
                   [](navm::TaskContext& ctx) -> navm::Coro {
                     const auto& p = ctx.params().as<WindowProbeParams>();
                     const auto data = co_await ctx.read(p.window);
                     co_return navm::payload_real(
                         data.empty() ? 0.0 : data.front());
                   });
    const auto task = rt.launch("probe.owner");
    rt.run();
    FEM2_CHECK(fresh.os->task_finished(task));

    const auto& metrics = fresh.os->metrics();
    const auto calls = metrics.messages_sent[static_cast<std::size_t>(
        sysvm::MessageType::RemoteCall)];
    const auto returns_bytes = metrics.message_bytes_sent[
        static_cast<std::size_t>(sysvm::MessageType::RemoteReturn)];
    table.row()
        .cell(pattern.name)
        .cell(static_cast<std::uint64_t>(pattern.make(navm::Window{
                                                          1, 0, 0, rows, cols})
                                             .size()))
        .cell(calls)
        .cell(support::format_bytes(returns_bytes))
        .cell(static_cast<std::uint64_t>(fresh.machine->now()));
    bench::note("pattern_" + std::to_string(&pattern - cases.data()) +
                    "_cycles",
                static_cast<double>(fresh.machine->now()), "cycles");
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E3", argc, argv);
  bench::print_header("E3 bench_communication_patterns",
                      "windows, large messages, irregular communication");
  solve_traffic();
  std::cout << "\n";
  window_patterns();
  std::cout << "\nShape check: remote-call/remote-return dominate counts "
               "(window traffic);\nfiner windows trade larger transfers for "
               "many more messages.\n";
  return bench::finish();
}
