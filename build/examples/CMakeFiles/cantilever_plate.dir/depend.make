# Empty dependencies file for cantilever_plate.
# This may be replaced when dependencies are built.
