file(REMOVE_RECURSE
  "CMakeFiles/cantilever_plate.dir/cantilever_plate.cpp.o"
  "CMakeFiles/cantilever_plate.dir/cantilever_plate.cpp.o.d"
  "cantilever_plate"
  "cantilever_plate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cantilever_plate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
