# Empty dependencies file for substructure_analysis.
# This may be replaced when dependencies are built.
