file(REMOVE_RECURSE
  "CMakeFiles/substructure_analysis.dir/substructure_analysis.cpp.o"
  "CMakeFiles/substructure_analysis.dir/substructure_analysis.cpp.o.d"
  "substructure_analysis"
  "substructure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substructure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
