file(REMOVE_RECURSE
  "CMakeFiles/hgraph_spec_demo.dir/hgraph_spec_demo.cpp.o"
  "CMakeFiles/hgraph_spec_demo.dir/hgraph_spec_demo.cpp.o.d"
  "hgraph_spec_demo"
  "hgraph_spec_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgraph_spec_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
