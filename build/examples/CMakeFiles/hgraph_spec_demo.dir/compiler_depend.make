# Empty compiler generated dependencies file for hgraph_spec_demo.
# This may be replaced when dependencies are built.
