# Empty dependencies file for multiuser_workstation.
# This may be replaced when dependencies are built.
