# Empty dependencies file for modal_analysis.
# This may be replaced when dependencies are built.
