file(REMOVE_RECURSE
  "CMakeFiles/modal_analysis.dir/modal_analysis.cpp.o"
  "CMakeFiles/modal_analysis.dir/modal_analysis.cpp.o.d"
  "modal_analysis"
  "modal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
