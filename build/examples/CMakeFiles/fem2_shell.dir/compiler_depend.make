# Empty compiler generated dependencies file for fem2_shell.
# This may be replaced when dependencies are built.
