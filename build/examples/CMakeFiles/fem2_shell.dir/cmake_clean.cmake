file(REMOVE_RECURSE
  "CMakeFiles/fem2_shell.dir/fem2_shell.cpp.o"
  "CMakeFiles/fem2_shell.dir/fem2_shell.cpp.o.d"
  "fem2_shell"
  "fem2_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
