# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("la")
subdirs("hgraph")
subdirs("hw")
subdirs("sysvm")
subdirs("navm")
subdirs("fem")
subdirs("fem1")
subdirs("appvm")
subdirs("spec")
