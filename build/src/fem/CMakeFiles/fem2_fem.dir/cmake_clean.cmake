file(REMOVE_RECURSE
  "CMakeFiles/fem2_fem.dir/analysis.cpp.o"
  "CMakeFiles/fem2_fem.dir/analysis.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/assembly.cpp.o"
  "CMakeFiles/fem2_fem.dir/assembly.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/dynamics.cpp.o"
  "CMakeFiles/fem2_fem.dir/dynamics.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/element.cpp.o"
  "CMakeFiles/fem2_fem.dir/element.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/mesh.cpp.o"
  "CMakeFiles/fem2_fem.dir/mesh.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/model.cpp.o"
  "CMakeFiles/fem2_fem.dir/model.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/passembly.cpp.o"
  "CMakeFiles/fem2_fem.dir/passembly.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/solver.cpp.o"
  "CMakeFiles/fem2_fem.dir/solver.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/stress.cpp.o"
  "CMakeFiles/fem2_fem.dir/stress.cpp.o.d"
  "CMakeFiles/fem2_fem.dir/substructure.cpp.o"
  "CMakeFiles/fem2_fem.dir/substructure.cpp.o.d"
  "libfem2_fem.a"
  "libfem2_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
