file(REMOVE_RECURSE
  "libfem2_fem.a"
)
