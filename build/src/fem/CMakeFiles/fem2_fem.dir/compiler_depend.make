# Empty compiler generated dependencies file for fem2_fem.
# This may be replaced when dependencies are built.
