
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/analysis.cpp" "src/fem/CMakeFiles/fem2_fem.dir/analysis.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/analysis.cpp.o.d"
  "/root/repo/src/fem/assembly.cpp" "src/fem/CMakeFiles/fem2_fem.dir/assembly.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/assembly.cpp.o.d"
  "/root/repo/src/fem/dynamics.cpp" "src/fem/CMakeFiles/fem2_fem.dir/dynamics.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/dynamics.cpp.o.d"
  "/root/repo/src/fem/element.cpp" "src/fem/CMakeFiles/fem2_fem.dir/element.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/element.cpp.o.d"
  "/root/repo/src/fem/mesh.cpp" "src/fem/CMakeFiles/fem2_fem.dir/mesh.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/mesh.cpp.o.d"
  "/root/repo/src/fem/model.cpp" "src/fem/CMakeFiles/fem2_fem.dir/model.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/model.cpp.o.d"
  "/root/repo/src/fem/passembly.cpp" "src/fem/CMakeFiles/fem2_fem.dir/passembly.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/passembly.cpp.o.d"
  "/root/repo/src/fem/solver.cpp" "src/fem/CMakeFiles/fem2_fem.dir/solver.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/solver.cpp.o.d"
  "/root/repo/src/fem/stress.cpp" "src/fem/CMakeFiles/fem2_fem.dir/stress.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/stress.cpp.o.d"
  "/root/repo/src/fem/substructure.cpp" "src/fem/CMakeFiles/fem2_fem.dir/substructure.cpp.o" "gcc" "src/fem/CMakeFiles/fem2_fem.dir/substructure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/fem2_la.dir/DependInfo.cmake"
  "/root/repo/build/src/navm/CMakeFiles/fem2_navm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fem2_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sysvm/CMakeFiles/fem2_sysvm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fem2_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
