file(REMOVE_RECURSE
  "libfem2_spec.a"
)
