# Empty compiler generated dependencies file for fem2_spec.
# This may be replaced when dependencies are built.
