file(REMOVE_RECURSE
  "CMakeFiles/fem2_spec.dir/layers.cpp.o"
  "CMakeFiles/fem2_spec.dir/layers.cpp.o.d"
  "CMakeFiles/fem2_spec.dir/reflect.cpp.o"
  "CMakeFiles/fem2_spec.dir/reflect.cpp.o.d"
  "CMakeFiles/fem2_spec.dir/transforms.cpp.o"
  "CMakeFiles/fem2_spec.dir/transforms.cpp.o.d"
  "libfem2_spec.a"
  "libfem2_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
