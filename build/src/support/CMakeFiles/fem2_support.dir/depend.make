# Empty dependencies file for fem2_support.
# This may be replaced when dependencies are built.
