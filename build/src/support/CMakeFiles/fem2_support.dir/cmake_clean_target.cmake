file(REMOVE_RECURSE
  "libfem2_support.a"
)
