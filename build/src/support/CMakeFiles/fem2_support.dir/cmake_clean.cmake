file(REMOVE_RECURSE
  "CMakeFiles/fem2_support.dir/check.cpp.o"
  "CMakeFiles/fem2_support.dir/check.cpp.o.d"
  "CMakeFiles/fem2_support.dir/rng.cpp.o"
  "CMakeFiles/fem2_support.dir/rng.cpp.o.d"
  "CMakeFiles/fem2_support.dir/stats.cpp.o"
  "CMakeFiles/fem2_support.dir/stats.cpp.o.d"
  "CMakeFiles/fem2_support.dir/strings.cpp.o"
  "CMakeFiles/fem2_support.dir/strings.cpp.o.d"
  "CMakeFiles/fem2_support.dir/table.cpp.o"
  "CMakeFiles/fem2_support.dir/table.cpp.o.d"
  "libfem2_support.a"
  "libfem2_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
