# Empty compiler generated dependencies file for fem2_sysvm.
# This may be replaced when dependencies are built.
