file(REMOVE_RECURSE
  "CMakeFiles/fem2_sysvm.dir/heap.cpp.o"
  "CMakeFiles/fem2_sysvm.dir/heap.cpp.o.d"
  "CMakeFiles/fem2_sysvm.dir/message.cpp.o"
  "CMakeFiles/fem2_sysvm.dir/message.cpp.o.d"
  "CMakeFiles/fem2_sysvm.dir/os.cpp.o"
  "CMakeFiles/fem2_sysvm.dir/os.cpp.o.d"
  "libfem2_sysvm.a"
  "libfem2_sysvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_sysvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
