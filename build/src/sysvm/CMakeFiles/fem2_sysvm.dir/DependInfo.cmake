
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysvm/heap.cpp" "src/sysvm/CMakeFiles/fem2_sysvm.dir/heap.cpp.o" "gcc" "src/sysvm/CMakeFiles/fem2_sysvm.dir/heap.cpp.o.d"
  "/root/repo/src/sysvm/message.cpp" "src/sysvm/CMakeFiles/fem2_sysvm.dir/message.cpp.o" "gcc" "src/sysvm/CMakeFiles/fem2_sysvm.dir/message.cpp.o.d"
  "/root/repo/src/sysvm/os.cpp" "src/sysvm/CMakeFiles/fem2_sysvm.dir/os.cpp.o" "gcc" "src/sysvm/CMakeFiles/fem2_sysvm.dir/os.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/fem2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fem2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
