file(REMOVE_RECURSE
  "libfem2_sysvm.a"
)
