file(REMOVE_RECURSE
  "CMakeFiles/fem2_navm.dir/parops.cpp.o"
  "CMakeFiles/fem2_navm.dir/parops.cpp.o.d"
  "CMakeFiles/fem2_navm.dir/runtime.cpp.o"
  "CMakeFiles/fem2_navm.dir/runtime.cpp.o.d"
  "CMakeFiles/fem2_navm.dir/task.cpp.o"
  "CMakeFiles/fem2_navm.dir/task.cpp.o.d"
  "CMakeFiles/fem2_navm.dir/window.cpp.o"
  "CMakeFiles/fem2_navm.dir/window.cpp.o.d"
  "libfem2_navm.a"
  "libfem2_navm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_navm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
