# Empty dependencies file for fem2_navm.
# This may be replaced when dependencies are built.
