file(REMOVE_RECURSE
  "libfem2_navm.a"
)
