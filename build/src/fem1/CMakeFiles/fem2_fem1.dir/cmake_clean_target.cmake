file(REMOVE_RECURSE
  "libfem2_fem1.a"
)
