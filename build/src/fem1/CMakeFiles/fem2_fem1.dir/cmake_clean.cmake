file(REMOVE_RECURSE
  "CMakeFiles/fem2_fem1.dir/fem1.cpp.o"
  "CMakeFiles/fem2_fem1.dir/fem1.cpp.o.d"
  "libfem2_fem1.a"
  "libfem2_fem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_fem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
