# Empty dependencies file for fem2_fem1.
# This may be replaced when dependencies are built.
