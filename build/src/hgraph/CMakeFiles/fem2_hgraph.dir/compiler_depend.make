# Empty compiler generated dependencies file for fem2_hgraph.
# This may be replaced when dependencies are built.
