file(REMOVE_RECURSE
  "libfem2_hgraph.a"
)
