file(REMOVE_RECURSE
  "CMakeFiles/fem2_hgraph.dir/grammar.cpp.o"
  "CMakeFiles/fem2_hgraph.dir/grammar.cpp.o.d"
  "CMakeFiles/fem2_hgraph.dir/grammar_parser.cpp.o"
  "CMakeFiles/fem2_hgraph.dir/grammar_parser.cpp.o.d"
  "CMakeFiles/fem2_hgraph.dir/hgraph.cpp.o"
  "CMakeFiles/fem2_hgraph.dir/hgraph.cpp.o.d"
  "CMakeFiles/fem2_hgraph.dir/transform.cpp.o"
  "CMakeFiles/fem2_hgraph.dir/transform.cpp.o.d"
  "libfem2_hgraph.a"
  "libfem2_hgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_hgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
