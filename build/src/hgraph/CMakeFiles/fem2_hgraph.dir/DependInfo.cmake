
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hgraph/grammar.cpp" "src/hgraph/CMakeFiles/fem2_hgraph.dir/grammar.cpp.o" "gcc" "src/hgraph/CMakeFiles/fem2_hgraph.dir/grammar.cpp.o.d"
  "/root/repo/src/hgraph/grammar_parser.cpp" "src/hgraph/CMakeFiles/fem2_hgraph.dir/grammar_parser.cpp.o" "gcc" "src/hgraph/CMakeFiles/fem2_hgraph.dir/grammar_parser.cpp.o.d"
  "/root/repo/src/hgraph/hgraph.cpp" "src/hgraph/CMakeFiles/fem2_hgraph.dir/hgraph.cpp.o" "gcc" "src/hgraph/CMakeFiles/fem2_hgraph.dir/hgraph.cpp.o.d"
  "/root/repo/src/hgraph/transform.cpp" "src/hgraph/CMakeFiles/fem2_hgraph.dir/transform.cpp.o" "gcc" "src/hgraph/CMakeFiles/fem2_hgraph.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fem2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
