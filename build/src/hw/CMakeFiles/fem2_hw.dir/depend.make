# Empty dependencies file for fem2_hw.
# This may be replaced when dependencies are built.
