file(REMOVE_RECURSE
  "CMakeFiles/fem2_hw.dir/event.cpp.o"
  "CMakeFiles/fem2_hw.dir/event.cpp.o.d"
  "CMakeFiles/fem2_hw.dir/machine.cpp.o"
  "CMakeFiles/fem2_hw.dir/machine.cpp.o.d"
  "CMakeFiles/fem2_hw.dir/metrics.cpp.o"
  "CMakeFiles/fem2_hw.dir/metrics.cpp.o.d"
  "CMakeFiles/fem2_hw.dir/trace.cpp.o"
  "CMakeFiles/fem2_hw.dir/trace.cpp.o.d"
  "libfem2_hw.a"
  "libfem2_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
