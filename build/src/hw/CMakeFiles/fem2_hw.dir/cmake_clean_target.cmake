file(REMOVE_RECURSE
  "libfem2_hw.a"
)
