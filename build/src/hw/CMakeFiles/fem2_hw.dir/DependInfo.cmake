
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/event.cpp" "src/hw/CMakeFiles/fem2_hw.dir/event.cpp.o" "gcc" "src/hw/CMakeFiles/fem2_hw.dir/event.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/hw/CMakeFiles/fem2_hw.dir/machine.cpp.o" "gcc" "src/hw/CMakeFiles/fem2_hw.dir/machine.cpp.o.d"
  "/root/repo/src/hw/metrics.cpp" "src/hw/CMakeFiles/fem2_hw.dir/metrics.cpp.o" "gcc" "src/hw/CMakeFiles/fem2_hw.dir/metrics.cpp.o.d"
  "/root/repo/src/hw/trace.cpp" "src/hw/CMakeFiles/fem2_hw.dir/trace.cpp.o" "gcc" "src/hw/CMakeFiles/fem2_hw.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fem2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
