# Empty compiler generated dependencies file for fem2_appvm.
# This may be replaced when dependencies are built.
