file(REMOVE_RECURSE
  "CMakeFiles/fem2_appvm.dir/command.cpp.o"
  "CMakeFiles/fem2_appvm.dir/command.cpp.o.d"
  "CMakeFiles/fem2_appvm.dir/database.cpp.o"
  "CMakeFiles/fem2_appvm.dir/database.cpp.o.d"
  "CMakeFiles/fem2_appvm.dir/serialize.cpp.o"
  "CMakeFiles/fem2_appvm.dir/serialize.cpp.o.d"
  "CMakeFiles/fem2_appvm.dir/workspace.cpp.o"
  "CMakeFiles/fem2_appvm.dir/workspace.cpp.o.d"
  "libfem2_appvm.a"
  "libfem2_appvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_appvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
