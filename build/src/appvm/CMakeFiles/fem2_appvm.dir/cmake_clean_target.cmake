file(REMOVE_RECURSE
  "libfem2_appvm.a"
)
