file(REMOVE_RECURSE
  "libfem2_la.a"
)
