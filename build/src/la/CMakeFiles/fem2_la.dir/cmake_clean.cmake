file(REMOVE_RECURSE
  "CMakeFiles/fem2_la.dir/dense.cpp.o"
  "CMakeFiles/fem2_la.dir/dense.cpp.o.d"
  "CMakeFiles/fem2_la.dir/eigen.cpp.o"
  "CMakeFiles/fem2_la.dir/eigen.cpp.o.d"
  "CMakeFiles/fem2_la.dir/iterative.cpp.o"
  "CMakeFiles/fem2_la.dir/iterative.cpp.o.d"
  "CMakeFiles/fem2_la.dir/skyline.cpp.o"
  "CMakeFiles/fem2_la.dir/skyline.cpp.o.d"
  "CMakeFiles/fem2_la.dir/sparse.cpp.o"
  "CMakeFiles/fem2_la.dir/sparse.cpp.o.d"
  "CMakeFiles/fem2_la.dir/vec_ops.cpp.o"
  "CMakeFiles/fem2_la.dir/vec_ops.cpp.o.d"
  "libfem2_la.a"
  "libfem2_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem2_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
