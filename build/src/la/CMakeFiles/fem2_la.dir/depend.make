# Empty dependencies file for fem2_la.
# This may be replaced when dependencies are built.
