# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/navm_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/fem_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/hgraph_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/sysvm_test[1]_include.cmake")
include("/root/repo/build/tests/navm_test[1]_include.cmake")
include("/root/repo/build/tests/fem1_test[1]_include.cmake")
include("/root/repo/build/tests/appvm_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dynamics_test[1]_include.cmake")
