
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/support_test.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem1/CMakeFiles/fem2_fem1.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/fem2_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/hgraph/CMakeFiles/fem2_hgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/appvm/CMakeFiles/fem2_appvm.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/fem2_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/navm/CMakeFiles/fem2_navm.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/fem2_la.dir/DependInfo.cmake"
  "/root/repo/build/src/sysvm/CMakeFiles/fem2_sysvm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fem2_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fem2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
