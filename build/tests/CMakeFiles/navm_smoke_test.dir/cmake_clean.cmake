file(REMOVE_RECURSE
  "CMakeFiles/navm_smoke_test.dir/navm_smoke_test.cpp.o"
  "CMakeFiles/navm_smoke_test.dir/navm_smoke_test.cpp.o.d"
  "navm_smoke_test"
  "navm_smoke_test.pdb"
  "navm_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navm_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
