# Empty dependencies file for navm_smoke_test.
# This may be replaced when dependencies are built.
