# Empty dependencies file for navm_test.
# This may be replaced when dependencies are built.
