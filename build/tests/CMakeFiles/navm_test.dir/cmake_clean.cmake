file(REMOVE_RECURSE
  "CMakeFiles/navm_test.dir/navm_test.cpp.o"
  "CMakeFiles/navm_test.dir/navm_test.cpp.o.d"
  "navm_test"
  "navm_test.pdb"
  "navm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
