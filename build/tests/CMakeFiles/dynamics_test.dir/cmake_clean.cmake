file(REMOVE_RECURSE
  "CMakeFiles/dynamics_test.dir/dynamics_test.cpp.o"
  "CMakeFiles/dynamics_test.dir/dynamics_test.cpp.o.d"
  "dynamics_test"
  "dynamics_test.pdb"
  "dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
