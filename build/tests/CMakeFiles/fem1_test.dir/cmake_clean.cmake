file(REMOVE_RECURSE
  "CMakeFiles/fem1_test.dir/fem1_test.cpp.o"
  "CMakeFiles/fem1_test.dir/fem1_test.cpp.o.d"
  "fem1_test"
  "fem1_test.pdb"
  "fem1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
