# Empty dependencies file for fem1_test.
# This may be replaced when dependencies are built.
