# Empty dependencies file for appvm_test.
# This may be replaced when dependencies are built.
