file(REMOVE_RECURSE
  "CMakeFiles/appvm_test.dir/appvm_test.cpp.o"
  "CMakeFiles/appvm_test.dir/appvm_test.cpp.o.d"
  "appvm_test"
  "appvm_test.pdb"
  "appvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
