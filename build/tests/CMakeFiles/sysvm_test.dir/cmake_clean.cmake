file(REMOVE_RECURSE
  "CMakeFiles/sysvm_test.dir/sysvm_test.cpp.o"
  "CMakeFiles/sysvm_test.dir/sysvm_test.cpp.o.d"
  "sysvm_test"
  "sysvm_test.pdb"
  "sysvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
