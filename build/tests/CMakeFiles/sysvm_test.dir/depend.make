# Empty dependencies file for sysvm_test.
# This may be replaced when dependencies are built.
