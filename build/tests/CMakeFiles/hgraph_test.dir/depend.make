# Empty dependencies file for hgraph_test.
# This may be replaced when dependencies are built.
