file(REMOVE_RECURSE
  "CMakeFiles/hgraph_test.dir/hgraph_test.cpp.o"
  "CMakeFiles/hgraph_test.dir/hgraph_test.cpp.o.d"
  "hgraph_test"
  "hgraph_test.pdb"
  "hgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
