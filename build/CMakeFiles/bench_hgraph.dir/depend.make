# Empty dependencies file for bench_hgraph.
# This may be replaced when dependencies are built.
