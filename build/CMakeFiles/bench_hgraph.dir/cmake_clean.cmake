file(REMOVE_RECURSE
  "CMakeFiles/bench_hgraph.dir/bench/bench_hgraph.cpp.o"
  "CMakeFiles/bench_hgraph.dir/bench/bench_hgraph.cpp.o.d"
  "bench/bench_hgraph"
  "bench/bench_hgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
