file(REMOVE_RECURSE
  "CMakeFiles/bench_heap.dir/bench/bench_heap.cpp.o"
  "CMakeFiles/bench_heap.dir/bench/bench_heap.cpp.o.d"
  "bench/bench_heap"
  "bench/bench_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
