file(REMOVE_RECURSE
  "CMakeFiles/bench_communication_patterns.dir/bench/bench_communication_patterns.cpp.o"
  "CMakeFiles/bench_communication_patterns.dir/bench/bench_communication_patterns.cpp.o.d"
  "bench/bench_communication_patterns"
  "bench/bench_communication_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_communication_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
