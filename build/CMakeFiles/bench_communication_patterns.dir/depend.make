# Empty dependencies file for bench_communication_patterns.
# This may be replaced when dependencies are built.
