file(REMOVE_RECURSE
  "CMakeFiles/bench_requirements.dir/bench/bench_requirements.cpp.o"
  "CMakeFiles/bench_requirements.dir/bench/bench_requirements.cpp.o.d"
  "bench/bench_requirements"
  "bench/bench_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
