file(REMOVE_RECURSE
  "CMakeFiles/bench_parallelism_levels.dir/bench/bench_parallelism_levels.cpp.o"
  "CMakeFiles/bench_parallelism_levels.dir/bench/bench_parallelism_levels.cpp.o.d"
  "bench/bench_parallelism_levels"
  "bench/bench_parallelism_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallelism_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
