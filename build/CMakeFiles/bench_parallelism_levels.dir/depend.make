# Empty dependencies file for bench_parallelism_levels.
# This may be replaced when dependencies are built.
