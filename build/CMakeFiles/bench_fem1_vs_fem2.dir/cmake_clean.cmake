file(REMOVE_RECURSE
  "CMakeFiles/bench_fem1_vs_fem2.dir/bench/bench_fem1_vs_fem2.cpp.o"
  "CMakeFiles/bench_fem1_vs_fem2.dir/bench/bench_fem1_vs_fem2.cpp.o.d"
  "bench/bench_fem1_vs_fem2"
  "bench/bench_fem1_vs_fem2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fem1_vs_fem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
