# Empty compiler generated dependencies file for bench_fem1_vs_fem2.
# This may be replaced when dependencies are built.
