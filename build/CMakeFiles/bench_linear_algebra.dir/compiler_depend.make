# Empty compiler generated dependencies file for bench_linear_algebra.
# This may be replaced when dependencies are built.
