file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_algebra.dir/bench/bench_linear_algebra.cpp.o"
  "CMakeFiles/bench_linear_algebra.dir/bench/bench_linear_algebra.cpp.o.d"
  "bench/bench_linear_algebra"
  "bench/bench_linear_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
