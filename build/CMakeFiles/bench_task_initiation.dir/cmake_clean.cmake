file(REMOVE_RECURSE
  "CMakeFiles/bench_task_initiation.dir/bench/bench_task_initiation.cpp.o"
  "CMakeFiles/bench_task_initiation.dir/bench/bench_task_initiation.cpp.o.d"
  "bench/bench_task_initiation"
  "bench/bench_task_initiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_initiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
