# Empty dependencies file for bench_task_initiation.
# This may be replaced when dependencies are built.
