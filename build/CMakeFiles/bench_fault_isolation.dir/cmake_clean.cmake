file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_isolation.dir/bench/bench_fault_isolation.cpp.o"
  "CMakeFiles/bench_fault_isolation.dir/bench/bench_fault_isolation.cpp.o.d"
  "bench/bench_fault_isolation"
  "bench/bench_fault_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
