# Empty dependencies file for bench_fault_isolation.
# This may be replaced when dependencies are built.
