#!/usr/bin/env python3
"""Compare BENCH_E*.json reports against a committed baseline.

Usage:
    bench_compare.py --baseline tools/bench_baseline.json [--update]
                     [--only E16[,E2,...]] DIR

DIR holds the BENCH_*.json files emitted by the `--smoke` bench runs
(`ctest -L bench`).  The baseline file maps experiment id -> report with
the same {experiment, rows, host_wall_ms} schema.

Policy, matching the determinism story of the simulator:
  * simulated metrics (unit "cycles", "msgs", "bytes", "iters", "steps",
    "nodes") are deterministic — any regression > --threshold (default
    25%) against the baseline FAILS the run; improvements are reported.
  * host-side metrics ("ms", "commits/s") are hardware-dependent — they
    only WARN, never fail.
  * missing metrics WARN in both directions: a current metric absent
    from the baseline (new bench / new row — run --update to adopt it)
    and a baseline metric absent from the current reports (a bench
    silently stopped emitting it, which is how coverage rots).
  * a malformed report (unparsable JSON, wrong shape) or an empty one
    (no rows) FAILS: a bench that crashed mid-write or emitted nothing
    must not pass the gate by accident.
  * --only restricts the comparison to the named experiments
    (comma-separated, e.g. --only E16), for jobs that run one driver
    rather than the whole harness.

Exit code 0 = ok (possibly with warnings), 1 = at least one failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SIMULATED_UNITS = {"cycles", "msgs", "bytes", "iters", "steps", "nodes"}
HOST_UNITS = {"ms", "commits/s"}


def load_reports(directory: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            print(f"FAIL  {path.name}: unparsable JSON ({err})")
            reports[path.stem] = None
            continue
        if not isinstance(report, dict) or not isinstance(
                report.get("rows"), list):
            print(f"FAIL  {path.name}: not a report object "
                  f"(expected {{experiment, rows, host_wall_ms}})")
            reports[path.stem] = None
            continue
        if not report["rows"]:
            print(f"FAIL  {path.name}: report has no rows "
                  f"(bench emitted nothing)")
            reports[report.get("experiment", path.stem)] = None
            continue
        reports[report.get("experiment", path.stem)] = report
    return reports


def rows_by_metric(report: dict) -> dict[str, dict]:
    return {row["metric"]: row for row in report.get("rows", [])}


def compare(reports: dict[str, dict], baseline: dict[str, dict],
            threshold: float) -> tuple[int, int]:
    failures = warnings = 0
    for experiment, report in sorted(reports.items()):
        if report is None:
            failures += 1
            continue
        base = baseline.get(experiment)
        if base is None:
            print(f"note  {experiment}: no baseline entry (new experiment)")
            continue
        base_rows = rows_by_metric(base)
        current_rows = rows_by_metric(report)
        for metric in sorted(base_rows.keys() - current_rows.keys()):
            print(f"warn  {experiment}/{metric}: in baseline but missing "
                  f"from the current report")
            warnings += 1
        for metric, row in current_rows.items():
            base_row = base_rows.get(metric)
            if base_row is None:
                print(f"warn  {experiment}/{metric}: not in baseline "
                      f"(new metric; adopt with --update)")
                warnings += 1
                continue
            old, new = base_row["value"], row["value"]
            if old == 0:
                continue
            ratio = new / old
            unit = row.get("unit", "")
            simulated = unit in SIMULATED_UNITS
            if ratio > 1.0 + threshold:
                kind = "FAIL " if simulated else "warn "
                print(f"{kind} {experiment}/{metric}: {old:g} -> {new:g} "
                      f"{unit} (+{100 * (ratio - 1):.1f}%)")
                if simulated:
                    failures += 1
                else:
                    warnings += 1
            elif ratio < 1.0 - threshold:
                print(f"note  {experiment}/{metric}: {old:g} -> {new:g} "
                      f"{unit} ({100 * (ratio - 1):.1f}%, improvement)")
    for experiment in sorted(baseline.keys() - reports.keys()):
        print(f"warn  {experiment}: in baseline but no current report")
        warnings += 1
    return failures, warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", type=Path,
                        help="directory holding BENCH_*.json reports")
    parser.add_argument("--baseline", type=Path,
                        default=Path("tools/bench_baseline.json"))
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression tolerance (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the given reports")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids to compare "
                             "(e.g. E16); default: all found")
    args = parser.parse_args()

    reports = load_reports(args.directory)
    if args.only:
        only = {e.strip() for e in args.only.split(",") if e.strip()}
        reports = {k: v for k, v in reports.items() if k in only}
        for experiment in sorted(only - reports.keys()):
            print(f"FAIL  {experiment}: requested via --only but no "
                  f"report found in {args.directory}")
            reports[experiment] = None
    if not reports:
        print(f"FAIL  no BENCH_*.json files found in {args.directory}")
        return 1

    if args.update:
        good = {k: v for k, v in reports.items() if v is not None}
        args.baseline.write_text(json.dumps(good, indent=2) + "\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(good)} experiments)")
        return 0

    if not args.baseline.exists():
        print(f"FAIL  baseline {args.baseline} missing "
              f"(generate with --update)")
        return 1
    baseline = json.loads(args.baseline.read_text())
    if args.only:
        baseline = {k: v for k, v in baseline.items() if k in reports}

    failures, warnings = compare(reports, baseline, args.threshold)
    print(f"\n{len(reports)} reports, {failures} failures, "
          f"{warnings} warnings (threshold {args.threshold:.0%})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
