// E16 — fem2_sweep: the design-space exploration driver the paper's
// simulation program exists for.  Runs the standard workloads (the E1
// solve pipeline, E2-style concurrent user problems, an E5-style lossy
// network with reliable transport) across a topology × cluster-count ×
// traffic grid, and emits:
//   * BENCH_E16.json — one simulated row set per grid cell (elapsed
//     cycles, messages, latency quantiles), gated in CI by
//     tools/bench_compare.py --only E16;
//   * SWEEP_E16_CDF.json — the per-cell delivery-latency CDF extracted
//     from the machine's latency histogram, for plotting.
//
// `--smoke` shrinks the grid to 2 topologies × 2 cluster counts for the
// CI sweep-smoke job; every smoke cell is a strict subset of the full
// grid (same workload sizes), so smoke and full values agree cell for
// cell and one baseline covers both.
#include "bench_common.hpp"

#include <fstream>

#include "fem/assembly.hpp"
#include "hw/topology.hpp"

using namespace fem2;

namespace {

struct Cell {
  std::string topology;
  std::size_t clusters = 0;
  std::string traffic;
  hw::Cycles elapsed = 0;
  std::uint64_t messages = 0;
  hw::Cycles lat_p50 = 0;
  hw::Cycles lat_p99 = 0;
  hw::LatencyHistogram latency;
};

std::string cell_tag(const Cell& cell) {
  return cell.topology + "_c" + std::to_string(cell.clusters) + "_" +
         cell.traffic;
}

hw::MachineConfig cell_config(const std::string& topology,
                              std::size_t clusters) {
  auto config = bench::machine_shape(clusters, 4);
  config.topology = hw::make_topology(topology, config);
  return config;
}

/// E1-style traffic: one distributed CG solve fanned across the machine.
Cell run_solve(const std::string& topology, std::size_t clusters,
               const fem::StructureModel& model) {
  Cell cell;
  cell.topology = topology;
  cell.clusters = clusters;
  cell.traffic = "solve";
  bench::ParallelRun run(model, 2 * clusters, cell_config(topology, clusters));
  const auto& metrics = run.stack.machine->metrics();
  cell.elapsed = run.elapsed();
  cell.messages = metrics.total_messages();
  cell.latency = metrics.network.latency;
  return cell;
}

/// E2-style traffic: two independent user problems solved concurrently.
Cell run_multiuser(const std::string& topology, std::size_t clusters,
                   const fem::StructureModel& model) {
  Cell cell;
  cell.topology = topology;
  cell.clusters = clusters;
  cell.traffic = "multiuser";
  bench::Stack stack(cell_config(topology, clusters));
  const auto system = fem::assemble(model);
  const auto rhs = system.load_vector(model.load_sets.at("tip-shear"));
  std::vector<sysvm::TaskId> tasks;
  for (int i = 0; i < 2; ++i) {
    navm::CgProblem problem;
    problem.a = system.stiffness;
    problem.b = rhs;
    problem.workers = static_cast<std::uint32_t>(clusters);
    problem.tolerance = 1e-8;
    tasks.push_back(stack.runtime->launch(
        navm::kCgDriverTask, navm::make_cg_problem(std::move(problem))));
  }
  stack.runtime->run();
  for (const auto t : tasks) FEM2_CHECK(stack.os->task_finished(t));
  const auto& metrics = stack.machine->metrics();
  cell.elapsed = stack.machine->now();
  cell.messages = metrics.total_messages();
  cell.latency = metrics.network.latency;
  return cell;
}

/// E5-style traffic: the solve on a lossy network, reliable transport on,
/// retransmit timeout auto-derived from the topology (OsOptions 0).
Cell run_lossy(const std::string& topology, std::size_t clusters,
               const fem::StructureModel& model) {
  Cell cell;
  cell.topology = topology;
  cell.clusters = clusters;
  cell.traffic = "lossy";
  auto config = cell_config(topology, clusters);
  config.network_drop_probability = 0.005;
  sysvm::OsOptions options;
  options.reliable_transport = true;
  options.retransmit_timeout = 0;  // derive from topology max latency
  bench::ParallelRun run(model, 2 * clusters, config, options);
  const auto& metrics = run.stack.machine->metrics();
  cell.elapsed = run.elapsed();
  cell.messages = metrics.total_messages();
  cell.latency = metrics.network.latency;
  return cell;
}

void write_cdfs(const std::vector<Cell>& cells) {
  std::string dir = ".";
  if (const char* env = std::getenv("FEM2_BENCH_DIR")) dir = env;
  const std::string path = dir + "/SWEEP_E16_CDF.json";
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E16\",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"topology\": \""
        << cell.topology << "\", \"clusters\": " << cell.clusters
        << ", \"traffic\": \"" << cell.traffic << "\", \"count\": "
        << cell.latency.count << ", \"cdf\": [";
    std::uint64_t seen = 0;
    bool first = true;
    for (std::size_t b = 0; b < cell.latency.buckets.size(); ++b) {
      if (cell.latency.buckets[b] == 0) continue;
      seen += cell.latency.buckets[b];
      out << (first ? "" : ", ") << "["
          << hw::LatencyHistogram::bucket_upper(b) << ", "
          << static_cast<double>(seen) /
                 static_cast<double>(cell.latency.count)
          << "]";
      first = false;
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  if (!out) {
    std::cerr << "warning: could not write " << path << "\n";
  } else {
    std::cout << "[report] " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("E16", argc, argv);
  bench::print_header(
      "E16 fem2_sweep",
      "design-space sweep: topology x cluster count x traffic pattern");

  std::vector<std::string> topologies = hw::topology_kinds();
  std::vector<std::size_t> cluster_counts = {2, 4, 8};
  if (bench::smoke()) {
    topologies = {"flat", "fattree"};
    cluster_counts = {2, 4};
  }

  // One fixed workload size in both modes keeps every smoke cell equal to
  // the corresponding full-grid cell, so one baseline covers both.
  const auto model = bench::cantilever_sheet(16, 8);

  support::Table table("Sweep grid (all quantities simulated)");
  table.set_header({"topology", "clusters", "traffic", "Mcycles", "msgs",
                    "lat p50", "lat p99"});

  std::vector<Cell> cells;
  for (const auto& topology : topologies) {
    for (const std::size_t clusters : cluster_counts) {
      for (const char* traffic : {"solve", "multiuser", "lossy"}) {
        Cell cell;
        if (std::string_view(traffic) == "solve") {
          cell = run_solve(topology, clusters, model);
        } else if (std::string_view(traffic) == "multiuser") {
          cell = run_multiuser(topology, clusters, model);
        } else {
          cell = run_lossy(topology, clusters, model);
        }
        cell.lat_p50 = cell.latency.quantile(0.5);
        cell.lat_p99 = cell.latency.quantile(0.99);
        table.row()
            .cell(cell.topology)
            .cell(static_cast<std::uint64_t>(cell.clusters))
            .cell(cell.traffic)
            .cell(static_cast<double>(cell.elapsed) / 1e6, 2)
            .cell(cell.messages)
            .cell(static_cast<std::uint64_t>(cell.lat_p50))
            .cell(static_cast<std::uint64_t>(cell.lat_p99));
        const std::string tag = cell_tag(cell);
        bench::note("cycles_" + tag, static_cast<double>(cell.elapsed),
                    "cycles");
        bench::note("msgs_" + tag, static_cast<double>(cell.messages),
                    "msgs");
        bench::note("lat_p50_" + tag, static_cast<double>(cell.lat_p50),
                    "cycles");
        bench::note("lat_p99_" + tag, static_cast<double>(cell.lat_p99),
                    "cycles");
        cells.push_back(std::move(cell));
      }
    }
  }
  table.print(std::cout);
  write_cdfs(cells);

  std::cout << "\nShape check: fat-tree beats flat inside a pod and pays on "
               "the spine; rotor trades\nlatency (slot waits) for bandwidth; "
               "degraded links stretch the latency tail without\nchanging "
               "results; every cell is bit-identical at any host thread "
               "count.\n";
  return bench::finish();
}
