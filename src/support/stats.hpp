// Light statistics helpers used by the simulator metrics and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fem2::support {

/// Streaming summary statistics (Welford's algorithm for variance).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t bucket_count(std::size_t i) const;
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile from bucket boundaries, q in [0, 1].
  double quantile(double q) const;

  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample set (copies and sorts; for bench reporting).
double percentile(std::vector<double> samples, double p);

}  // namespace fem2::support
