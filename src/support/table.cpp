#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace fem2::support {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  FEM2_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  FEM2_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::cell(std::string v) {
  cells_.push_back(std::move(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(const char* v) {
  cells_.emplace_back(v);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(format_count(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(v < 0 ? "-" + format_count(static_cast<std::uint64_t>(-v))
                         : format_count(static_cast<std::uint64_t>(v)));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(int v) {
  return cell(static_cast<std::int64_t>(v));
}
Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace fem2::support
