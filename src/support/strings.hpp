// Small string utilities shared by the command language and the benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fem2::support {

/// Split on a delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

/// Human-readable byte count: "1.5 KiB", "3.2 MiB", ...
std::string format_bytes(std::uint64_t bytes);

/// Group digits: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t n);

/// Fixed-precision double without trailing zero noise.
std::string format_double(double x, int precision = 3);

}  // namespace fem2::support
