#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

namespace fem2::support {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << bytes << " B";
  } else {
    os.precision(1);
    os << std::fixed << v << " " << kUnits[unit];
  }
  return os.str();
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_double(double x, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << x;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace fem2::support
