#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace fem2::support {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / nt;
  mean_ = (n1 * mean_ + n2 * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  FEM2_CHECK(hi > lo);
  FEM2_CHECK(buckets > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double f = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(f * static_cast<double>(buckets()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(buckets()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  FEM2_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(buckets());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

double Histogram::quantile(double q) const {
  FEM2_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc > target) return bucket_hi(i);
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double percentile(std::vector<double> samples, double p) {
  FEM2_CHECK(!samples.empty());
  FEM2_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace fem2::support
