#include "support/check.hpp"

#include <sstream>

namespace fem2::support {

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  std::ostringstream os;
  os << "FEM2_CHECK failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  os << " at " << loc.file_name() << ":" << loc.line() << " in "
     << loc.function_name();
  throw CheckError(os.str());
}

}  // namespace fem2::support
