// ASCII table rendering for the benchmark harness: every experiment prints
// the rows/series the paper's simulation program calls for as a monospace
// table with aligned columns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fem2::support {

class Table {
 public:
  explicit Table(std::string title = "");

  /// Column headers; must be set before rows are added.
  void set_header(std::vector<std::string> header);

  /// Append a pre-formatted row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: mixed cell types.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string v);
    RowBuilder& cell(const char* v);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v);
    RowBuilder& cell(double v, int precision = 3);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  std::size_t rows() const { return rows_.size(); }

  std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fem2::support
