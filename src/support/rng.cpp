#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace fem2::support {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FEM2_CHECK_MSG(bound > 0, "next_below requires positive bound");
  // Lemire's nearly-divisionless unbiased reduction.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FEM2_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double mean) {
  FEM2_CHECK(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace fem2::support
