// Error handling for the FEM-2 library.
//
// Two categories, per the C++ Core Guidelines split between programming
// errors and recoverable conditions:
//   * FEM2_CHECK / FEM2_CHECK_MSG — invariants and preconditions.  A failed
//     check throws fem2::support::CheckError; tests assert on these.
//   * fem2::support::Error — recoverable, user-facing failures (bad command
//     syntax, singular matrix, machine misconfiguration).  Subsystems define
//     derived types.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace fem2::support {

/// Base class for all recoverable FEM-2 errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by FEM2_CHECK on violated invariants; indicates a bug, not input.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc);

}  // namespace fem2::support

#define FEM2_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::fem2::support::check_failed(#expr, "",                            \
                                    std::source_location::current());     \
    }                                                                     \
  } while (0)

#define FEM2_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::fem2::support::check_failed(#expr, (msg),                         \
                                    std::source_location::current());     \
    }                                                                     \
  } while (0)

#define FEM2_UNREACHABLE(msg)                                             \
  ::fem2::support::check_failed("unreachable", (msg),                     \
                                std::source_location::current())
