// Deterministic random number generation.
//
// Every stochastic component of the simulator takes an explicit Rng so that
// tests and benchmarks are bit-reproducible across runs and platforms.  The
// generator is xoshiro256** seeded through SplitMix64, per the reference
// implementations of Blackman & Vigna.
#pragma once

#include <cstdint>
#include <vector>

namespace fem2::support {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic given call order).
  double normal();

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Derive an independent child stream (for per-component generators).
  Rng split();

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace fem2::support
