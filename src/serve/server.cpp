#include "serve/server.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace fem2::serve {

unsigned Server::default_pool_width() {
  if (const char* env = std::getenv("FEM2_HOST_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v >= 1 && v <= 256) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 256u);
}

Server::Server(std::shared_ptr<db::Engine> engine, ServerOptions options)
    : engine_(std::move(engine)),
      database_(engine_),
      options_(options),
      admission_(options.default_quota, options.admission_clock),
      pool_width_(options.workers != 0 ? std::clamp(options.workers, 1u, 256u)
                                       : default_pool_width()) {
  FEM2_CHECK_MSG(engine_ != nullptr, "Server needs an engine");
  FEM2_CHECK_MSG(options_.queue_capacity >= 1,
                 "queue_capacity must admit at least one request");
  stats_.workers = pool_width_;
  pool_.reserve(pool_width_);
  for (unsigned i = 0; i < pool_width_; ++i)
    pool_.emplace_back([this] { worker_main(); });
}

Server::~Server() {
  std::unique_lock lock(mutex_);
  accepting_ = false;
  // Every accepted request is answered before the pool stops: queued_
  // only reaches zero once the last worker has delivered its response.
  drain_cv_.wait(lock, [&] { return queued_ == 0; });
  stop_.store(true, std::memory_order_release);
  ready_cv_.notify_all();
  lock.unlock();
  for (auto& worker : pool_) worker.join();
}

// --- session lifecycle -----------------------------------------------------

OpenSession Server::open_session(const std::string& tenant,
                                 const std::string& user) {
  {
    std::lock_guard lock(mutex_);
    if (!accepting_)
      return {0,
              {false, "server is shutting down",
               appvm::Response::FailureKind::Overloaded}};
  }
  const Admit admit = admission_.admit_session(tenant);
  if (admit != Admit::Ok) {
    std::lock_guard lock(mutex_);
    stats_.sessions_rejected += 1;
    return {0,
            {false,
             "tenant '" + tenant + "' over quota: " +
                 std::string(admit_name(admit)),
             appvm::Response::FailureKind::QuotaExceeded}};
  }
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_session_++;
  sessions_.emplace(
      id, std::make_shared<SessionState>(id, tenant, database_, user));
  stats_.sessions_opened += 1;
  return {id,
          {true, "session " + std::to_string(id) + " open for tenant '" +
                     tenant + "'"}};
}

appvm::Response Server::close_session(std::uint64_t session) {
  std::shared_ptr<SessionState> state;
  {
    std::unique_lock lock(mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end())
      return {false, "no such session " + std::to_string(session),
              appvm::Response::FailureKind::Other};
    state = it->second;
    if (state->closing)
      return {false, "session " + std::to_string(session) + " already closing",
              appvm::Response::FailureKind::Other};
    state->closing = true;
    // Everything already in the FIFO still runs; only new submissions are
    // refused.  Wait until a worker has delivered the last response.
    drain_cv_.wait(lock,
                   [&] { return state->fifo.empty() && !state->scheduled; });
    sessions_.erase(session);
  }
  admission_.release_session(state->tenant);
  return {true, "session " + std::to_string(session) + " closed"};
}

// --- command path ----------------------------------------------------------

std::future<appvm::Response> Server::submit(std::uint64_t session,
                                            const std::string& line) {
  const auto reject = [](appvm::Response response) {
    std::promise<appvm::Response> done;
    done.set_value(std::move(response));
    return done.get_future();
  };

  std::lock_guard lock(mutex_);
  if (!accepting_)
    return reject({false, "server is shutting down",
                   appvm::Response::FailureKind::Overloaded});
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second->closing)
    return reject({false, "no such session " + std::to_string(session),
                   appvm::Response::FailureKind::Other});
  const std::shared_ptr<SessionState>& state = it->second;
  if (queued_ >= options_.queue_capacity) {
    stats_.rejected_overload += 1;
    return reject({false,
                   "server queue is full (" + std::to_string(queued_) +
                       " requests pending)",
                   appvm::Response::FailureKind::Overloaded});
  }
  const Admit admit = admission_.admit_request(state->tenant);
  if (admit != Admit::Ok) {
    stats_.rejected_quota += 1;
    return reject({false,
                   "tenant '" + state->tenant + "' over quota: " +
                       std::string(admit_name(admit)),
                   appvm::Response::FailureKind::QuotaExceeded});
  }

  Request request;
  request.line = line;
  auto future = request.done.get_future();
  state->fifo.push_back(std::move(request));
  queued_ += 1;
  stats_.submitted += 1;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queued_);
  enqueue_locked(state);
  return future;
}

appvm::Response Server::call(std::uint64_t session, const std::string& line) {
  return submit(session, line).get();
}

appvm::Response Server::call_with_retry(std::uint64_t session,
                                        const std::string& line) {
  // Retry from the caller's side of the queue: a rejected or conflicted
  // request backs off here and re-enters admission, instead of a worker
  // sleeping through the backoff with a pool slot held.
  db::RetrySchedule schedule(options_.retry_policy);
  for (;;) {
    appvm::Response response = call(session, line);
    if (response.ok || !appvm::Response::retryable(response.kind))
      return response;
    const auto delay = schedule.next_delay();
    if (!delay) return response;
    if (delay->count() > 0) sleeper_(*delay);
  }
}

// --- snapshot read path ----------------------------------------------------

db::QueryResult Server::query(const db::QueryFilter& filter) const {
  return engine_->query(filter);
}

std::vector<appvm::DatabaseVersionInfo> Server::history(
    const std::string& name) const {
  return database_.history(name);
}

// --- admin -----------------------------------------------------------------

void Server::set_quota(const std::string& tenant, TenantQuota quota) {
  admission_.set_quota(tenant, quota);
}

TenantStats Server::tenant_stats(const std::string& tenant) const {
  return admission_.stats_for(tenant);
}

ServerStats Server::stats() const {
  std::lock_guard lock(mutex_);
  ServerStats out = stats_;
  out.open_sessions = sessions_.size();
  out.queue_depth = queued_;
  out.workers = pool_width_;
  return out;
}

// --- worker pool -----------------------------------------------------------

void Server::enqueue_locked(const std::shared_ptr<SessionState>& state) {
  if (state->scheduled) return;  // already queued or owned by a worker
  state->scheduled = true;
  ready_.push_back(state);
  ready_count_.fetch_add(1, std::memory_order_release);
  ready_cv_.notify_one();
}

void Server::worker_main() {
  for (;;) {
    const std::shared_ptr<SessionState> state = next_ready();
    if (!state) return;
    process_one(state);
  }
}

std::shared_ptr<Server::SessionState> Server::next_ready() {
  // The host engine's pool shape: spin with yield for the common case of
  // work arriving within a scheduling quantum, then park on the condition
  // variable so an idle server burns no cycles.
  for (std::size_t spin = 0; spin < options_.spin_iterations; ++spin) {
    if (stop_.load(std::memory_order_acquire)) return nullptr;
    if (ready_count_.load(std::memory_order_acquire) > 0) break;
    std::this_thread::yield();
  }
  std::unique_lock lock(mutex_);
  ready_cv_.wait(lock, [&] {
    return stop_.load(std::memory_order_acquire) || !ready_.empty();
  });
  if (ready_.empty()) return nullptr;  // stopping
  auto state = ready_.front();
  ready_.pop_front();
  ready_count_.fetch_sub(1, std::memory_order_release);
  return state;
}

void Server::process_one(const std::shared_ptr<SessionState>& state) {
  Request request;
  {
    std::lock_guard lock(mutex_);
    if (state->fifo.empty()) {  // stale wakeup; nothing to run
      state->scheduled = false;
      drain_cv_.notify_all();
      return;
    }
    request = std::move(state->fifo.front());
    state->fifo.pop_front();
  }

  // The actor invariant makes this safe without locks: `scheduled` stays
  // true from dequeue to requeue, so no other worker touches this
  // session's interpreter or workspace concurrently.
  appvm::Response response = state->session.execute(request.line);
  request.done.set_value(std::move(response));
  admission_.complete_request(state->tenant);

  std::lock_guard lock(mutex_);
  queued_ -= 1;
  stats_.executed += 1;
  if (!state->fifo.empty()) {
    // More queued work: back of the ready line, still scheduled, so the
    // session's commands stay in submission order.
    ready_.push_back(state);
    ready_count_.fetch_add(1, std::memory_order_release);
    ready_cv_.notify_one();
  } else {
    state->scheduled = false;
  }
  drain_cv_.notify_all();
}

}  // namespace fem2::serve
