#include "serve/admission.hpp"

#include <algorithm>

namespace fem2::serve {

const char* admit_name(Admit admit) {
  switch (admit) {
    case Admit::Ok:
      return "ok";
    case Admit::SessionLimit:
      return "session limit";
    case Admit::InflightLimit:
      return "inflight limit";
    case Admit::RateLimit:
      return "rate limit";
  }
  return "?";
}

AdmissionController::AdmissionController(TenantQuota default_quota,
                                         Clock clock)
    : default_quota_(default_quota),
      clock_(clock ? std::move(clock)
                   : [] { return std::chrono::steady_clock::now(); }) {}

void AdmissionController::set_quota(const std::string& tenant,
                                    TenantQuota quota) {
  std::lock_guard lock(mutex_);
  quotas_[tenant] = quota;
  // A fresh rate limit starts from a fresh bucket.
  auto state = tenants_.find(tenant);
  if (state != tenants_.end()) state->second.bucket_primed = false;
}

TenantQuota AdmissionController::quota_for(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = quotas_.find(tenant);
  return it != quotas_.end() ? it->second : default_quota_;
}

Admit AdmissionController::admit_session(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  const auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it != quotas_.end() ? quota_it->second : default_quota_;
  State& state = tenants_[tenant];
  if (state.sessions >= quota.max_sessions) {
    state.rejected += 1;
    return Admit::SessionLimit;
  }
  state.sessions += 1;
  return Admit::Ok;
}

void AdmissionController::release_session(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  State& state = tenants_[tenant];
  if (state.sessions > 0) state.sessions -= 1;
}

Admit AdmissionController::admit_request(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  const auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it != quotas_.end() ? quota_it->second : default_quota_;
  State& state = tenants_[tenant];
  if (state.inflight >= quota.max_inflight) {
    state.rejected += 1;
    return Admit::InflightLimit;
  }
  if (!take_token_locked(state, quota)) {
    state.rejected += 1;
    return Admit::RateLimit;
  }
  state.inflight += 1;
  state.admitted += 1;
  return Admit::Ok;
}

void AdmissionController::complete_request(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  State& state = tenants_[tenant];
  if (state.inflight > 0) state.inflight -= 1;
}

bool AdmissionController::take_token_locked(State& state,
                                            const TenantQuota& quota) {
  if (quota.ops_per_second <= 0.0) return true;  // unlimited
  const double capacity =
      quota.burst > 0.0 ? quota.burst : quota.ops_per_second;
  const auto now = clock_();
  if (!state.bucket_primed) {
    state.tokens = capacity;
    state.last_refill = now;
    state.bucket_primed = true;
  } else if (now > state.last_refill) {
    const double elapsed =
        std::chrono::duration<double>(now - state.last_refill).count();
    state.tokens =
        std::min(capacity, state.tokens + elapsed * quota.ops_per_second);
    state.last_refill = now;
  }
  if (state.tokens < 1.0) return false;
  state.tokens -= 1.0;
  return true;
}

TenantStats AdmissionController::stats_for(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return TenantStats{it->second.sessions, it->second.inflight,
                     it->second.admitted, it->second.rejected};
}

}  // namespace fem2::serve
