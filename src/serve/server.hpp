// fem2-serve: the multi-tenant server front-end.
//
// A Server multiplexes many concurrent sessions onto a fixed worker pool.
// Each open session owns a private appvm::Session (workspace + command
// interpreter) and a FIFO of submitted command lines; sessions with
// pending work sit in a ready queue that the workers drain.  The
// scheduling invariant is the actor model's: a session is owned by at
// most one worker at a time, so its commands execute in submission order
// with no locking inside the command interpreter.
//
// Workers follow the host engine's pool shape (hw/event.cpp): a bounded
// spin-with-yield on the ready count for latency, then a condition
// variable for the idle tail.  Pool width honors FEM2_HOST_THREADS like
// the simulation pool does.
//
// Admission control runs before anything is queued: per-tenant session,
// inflight and rate quotas (admission.hpp) answer QuotaExceeded, and a
// full global queue answers Overloaded — both retryable kinds, so
// call_with_retry (and a thin client's execute_with_retry) backs off and
// re-submits under the shared db::RetryPolicy.
//
// Reads that touch no workspace — query/retrieve-style lookups — have a
// dedicated snapshot path (Server::query, Server::history) served on the
// caller's thread straight from the engine's indexes: they never enter
// the queue, never touch the WAL, and never wait on a group commit's
// fsync.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "appvm/command.hpp"
#include "appvm/database.hpp"
#include "db/query.hpp"
#include "db/retry.hpp"
#include "serve/admission.hpp"

namespace fem2::serve {

struct ServerOptions {
  /// Worker pool width; 0 = FEM2_HOST_THREADS, else hardware concurrency
  /// (clamped to [1, 256]).
  unsigned workers = 0;
  /// Global bound on queued requests across all sessions; a full queue
  /// answers Overloaded instead of buffering without limit.
  std::size_t queue_capacity = 1024;
  /// Quota for tenants without an explicit override.
  TenantQuota default_quota;
  /// Backoff schedule for call_with_retry.
  db::RetryPolicy retry_policy;
  /// Ready-queue spins (with yield) before a worker parks on the
  /// condition variable; the host engine's latency/burn trade-off.
  std::size_t spin_iterations = 256;
  /// Clock for the admission token buckets; null = steady_clock (tests
  /// inject a fake to drive rate limits deterministically).
  AdmissionController::Clock admission_clock;
};

struct ServerStats {
  std::uint64_t submitted = 0;         ///< requests accepted into a FIFO
  std::uint64_t executed = 0;          ///< requests completed by workers
  std::uint64_t rejected_quota = 0;    ///< admission said no
  std::uint64_t rejected_overload = 0; ///< global queue was full
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_rejected = 0;
  std::size_t open_sessions = 0;
  std::size_t queue_depth = 0;         ///< queued requests right now
  std::size_t peak_queue_depth = 0;
  unsigned workers = 0;
};

/// Result of open_session: a handle (0 when rejected) plus the response
/// carrying the rejection reason and retry classification.
struct OpenSession {
  std::uint64_t session = 0;
  appvm::Response response;
};

class Server {
 public:
  explicit Server(std::shared_ptr<db::Engine> engine,
                  ServerOptions options = {});
  /// Drains queued work, then stops the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- session lifecycle --------------------------------------------------
  OpenSession open_session(const std::string& tenant,
                           const std::string& user);
  /// Waits for the session's queued commands to finish, then closes it.
  appvm::Response close_session(std::uint64_t session);

  // --- command path (through the queue, per-session FIFO order) ----------
  /// Submit one command line; blocks until a worker has executed it.
  appvm::Response call(std::uint64_t session, const std::string& line);
  /// Like call(), but re-submits while the failure is retryable
  /// (conflict, transient I/O, quota, overload) under the retry policy.
  appvm::Response call_with_retry(std::uint64_t session,
                                  const std::string& line);
  /// Async submit; the future resolves when a worker executes the line.
  std::future<appvm::Response> submit(std::uint64_t session,
                                      const std::string& line);

  // --- snapshot read path (caller's thread, no queue, no WAL) ------------
  db::QueryResult query(const db::QueryFilter& filter) const;
  std::vector<appvm::DatabaseVersionInfo> history(
      const std::string& name) const;

  // --- admin --------------------------------------------------------------
  void set_quota(const std::string& tenant, TenantQuota quota);
  TenantStats tenant_stats(const std::string& tenant) const;
  ServerStats stats() const;
  unsigned workers() const { return pool_width_; }
  /// Injectable backoff wait for call_with_retry (tests record instead of
  /// sleeping).
  void set_sleeper(db::Sleeper sleeper) { sleeper_ = std::move(sleeper); }

 private:
  struct Request {
    std::string line;
    bool with_retry = false;
    std::promise<appvm::Response> done;
  };
  struct SessionState {
    std::uint64_t id = 0;
    std::string tenant;
    appvm::Session session;
    std::deque<Request> fifo;
    bool scheduled = false;  ///< in ready_ or owned by a worker
    bool closing = false;

    SessionState(std::uint64_t id, const std::string& tenant,
                 appvm::Database& database, const std::string& user)
        : id(id), tenant(tenant), session(database, user, tenant) {}
  };

  static unsigned default_pool_width();
  void worker_main();
  std::shared_ptr<SessionState> next_ready();
  void process_one(const std::shared_ptr<SessionState>& state);
  void enqueue_locked(const std::shared_ptr<SessionState>& state);

  std::shared_ptr<db::Engine> engine_;
  appvm::Database database_;  ///< shared façade; thread-safe over engine_
  ServerOptions options_;
  AdmissionController admission_;
  unsigned pool_width_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::condition_variable drain_cv_;  ///< close_session / shutdown drains
  std::map<std::uint64_t, std::shared_ptr<SessionState>> sessions_;
  std::deque<std::shared_ptr<SessionState>> ready_;
  std::atomic<std::size_t> ready_count_{0};  ///< workers spin on this
  std::atomic<bool> stop_{false};
  bool accepting_ = true;
  std::uint64_t next_session_ = 1;
  std::size_t queued_ = 0;
  ServerStats stats_;
  db::Sleeper sleeper_ = db::sleep_for;
  std::vector<std::thread> pool_;
};

}  // namespace fem2::serve
