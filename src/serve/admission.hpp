// Per-tenant admission control for the fem2-serve front-end.
//
// A tenant is a billing/isolation boundary: every session carries a
// tenant id, and the controller enforces three independent limits per
// tenant before work reaches the worker pool —
//
//   * max_sessions  : concurrently open sessions,
//   * max_inflight  : requests queued or executing at once,
//   * ops_per_second: a token bucket (capacity `burst`) refilled from an
//     injectable clock, so one chatty tenant cannot starve the pool.
//
// Rejections are cheap and classified (session cap / inflight cap / rate)
// so the server can answer QuotaExceeded with a precise reason and the
// client can back off and retry.  The clock is injectable; tests drive
// the bucket deterministically instead of sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace fem2::serve {

struct TenantQuota {
  std::size_t max_sessions = 64;
  std::size_t max_inflight = 256;
  /// Sustained request rate; 0 = unlimited (rate check skipped).
  double ops_per_second = 0.0;
  /// Token-bucket capacity; 0 = same as ops_per_second (no extra burst).
  double burst = 0.0;
};

enum class Admit : std::uint8_t {
  Ok,
  SessionLimit,   ///< tenant has max_sessions open already
  InflightLimit,  ///< tenant has max_inflight requests outstanding
  RateLimit,      ///< token bucket is empty right now
};

const char* admit_name(Admit admit);

struct TenantStats {
  std::size_t sessions = 0;
  std::size_t inflight = 0;
  std::uint64_t admitted = 0;  ///< requests admitted
  std::uint64_t rejected = 0;  ///< sessions + requests turned away
};

class AdmissionController {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// `clock` = null uses steady_clock::now; tests inject a fake.
  explicit AdmissionController(TenantQuota default_quota = {},
                               Clock clock = nullptr);

  /// Per-tenant override; tenants without one get the default quota.
  void set_quota(const std::string& tenant, TenantQuota quota);
  TenantQuota quota_for(const std::string& tenant) const;

  Admit admit_session(const std::string& tenant);
  void release_session(const std::string& tenant);

  /// Gate one request: inflight cap, then the token bucket.  A request
  /// admitted here MUST be paired with complete_request.
  Admit admit_request(const std::string& tenant);
  void complete_request(const std::string& tenant);

  TenantStats stats_for(const std::string& tenant) const;

 private:
  struct State {
    std::size_t sessions = 0;
    std::size_t inflight = 0;
    double tokens = 0.0;
    bool bucket_primed = false;
    std::chrono::steady_clock::time_point last_refill;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  bool take_token_locked(State& state, const TenantQuota& quota);

  mutable std::mutex mutex_;
  TenantQuota default_quota_;
  Clock clock_;
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, State> tenants_;
};

}  // namespace fem2::serve
