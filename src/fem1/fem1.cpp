#include "fem1/fem1.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "fem/assembly.hpp"
#include "la/iterative.hpp"
#include "la/vec_ops.hpp"
#include "navm/window.hpp"  // block_begin
#include "support/check.hpp"

namespace fem2::fem1 {

std::string Fem1Result::summary() const {
  std::ostringstream os;
  os << (completed ? (converged ? "converged" : "did not converge")
                   : "STALLED (failed processor, static assignment)")
     << ", iterations " << iterations << ", elapsed " << elapsed
     << " cycles, utilization " << pe_utilization;
  return os.str();
}

namespace {

/// Grid coordinates of processor p in a near-square arrangement.
struct GridShape {
  std::size_t cols;
  std::size_t rows;
};

GridShape grid_shape(std::size_t processors) {
  auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(processors))));
  const std::size_t rows = (processors + cols - 1) / cols;
  return {cols, rows};
}

bool are_grid_neighbors(std::size_t p, std::size_t q, GridShape shape) {
  const auto pr = p / shape.cols, pc = p % shape.cols;
  const auto qr = q / shape.cols, qc = q % shape.cols;
  const auto dr = pr > qr ? pr - qr : qr - pr;
  const auto dc = pc > qc ? pc - qc : qc - pc;
  return dr <= 1 && dc <= 1 && !(dr == 0 && dc == 0);
}

}  // namespace

Fem1Result fem1_solve(const la::CsrMatrix& k, std::span<const double> rhs,
                      const Fem1Config& config, Fem1Solver solver,
                      double tolerance, std::size_t max_iterations) {
  FEM2_CHECK(k.rows() == k.cols());
  FEM2_CHECK(rhs.size() == k.rows());
  FEM2_CHECK(config.processors > 0);

  Fem1Result out;

  // Static assignment cannot route around failures.
  if (config.failed_processors > 0 && !config.manual_repartition) {
    out.completed = false;
    return out;
  }
  FEM2_CHECK_MSG(config.failed_processors < config.processors,
                 "no surviving processors");
  const std::size_t p_eff = config.processors - config.failed_processors;

  const std::size_t n = k.rows();
  const GridShape shape = grid_shape(p_eff);

  // Rows (dofs) striped in contiguous blocks across surviving processors.
  const std::size_t p_used = std::min(p_eff, n);
  auto owner = [&](std::size_t row) {
    // Inverse of block_begin partitioning.
    for (std::size_t p = 0; p < p_used; ++p) {
      if (row < navm::block_begin(n, p_used, p + 1)) return p;
    }
    FEM2_UNREACHABLE("row outside partition");
  };
  std::vector<std::size_t> row_owner(n);
  {
    std::size_t p = 0;
    for (std::size_t r = 0; r < n; ++r) {
      while (r >= navm::block_begin(n, p_used, p + 1)) ++p;
      row_owner[r] = p;
    }
  }
  (void)owner;

  // --- per-sweep cost model (identical every sweep) -----------------------
  std::vector<std::uint64_t> flops(p_used, 0);
  std::vector<std::uint64_t> link_words(p_used, 0);
  std::vector<std::uint64_t> link_transfers(p_used, 0);
  std::uint64_t bus_words_per_sweep = 0;
  std::uint64_t bus_messages_per_sweep = 0;

  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t p = row_owner[r];
    std::span<const std::size_t> cols;
    std::span<const double> vals;
    k.row(r, cols, vals);
    flops[p] += 2 * cols.size() + 2;
    for (const std::size_t c : cols) {
      const std::size_t q = row_owner[c];
      if (q == p) continue;
      if (are_grid_neighbors(p, q, shape)) {
        link_words[p] += 1;
        link_transfers[p] += 1;
      } else {
        bus_words_per_sweep += 1;
        bus_messages_per_sweep += 1;
      }
    }
  }

  hw::Cycles slowest = 0;
  std::uint64_t compute_total = 0;
  for (std::size_t p = 0; p < p_used; ++p) {
    const hw::Cycles t =
        flops[p] * config.cycles_per_flop +
        link_transfers[p] * config.link_latency +
        static_cast<hw::Cycles>(static_cast<double>(link_words[p]) *
                                config.link_cycles_per_word);
    slowest = std::max(slowest, t);
    compute_total += flops[p] * config.cycles_per_flop;
  }
  // The bus is time-shared: all bus traffic serializes after local work.
  const hw::Cycles bus_time =
      bus_messages_per_sweep * config.bus_latency / std::max<std::size_t>(p_used, 1) +
      static_cast<hw::Cycles>(static_cast<double>(bus_words_per_sweep) *
                              config.bus_cycles_per_word);
  const hw::Cycles sweep_time =
      slowest + bus_time + config.sweep_sync_overhead;

  // --- run the relaxation numerically to count sweeps -----------------------
  la::SolveOptions iter_options;
  iter_options.tolerance = tolerance;
  iter_options.max_iterations = max_iterations;
  iter_options.sor_omega = 1.0;
  const la::SolveResult numeric =
      solver == Fem1Solver::Jacobi ? la::jacobi(k, rhs, iter_options)
                                   : la::sor(k, rhs, iter_options);

  out.completed = true;
  out.converged = numeric.report.converged;
  out.iterations = numeric.report.iterations;
  out.residual = numeric.report.residual_norm;
  out.elapsed = sweep_time * numeric.report.iterations;
  if (config.manual_repartition && config.failed_processors > 0)
    out.elapsed += config.repartition_cost;
  out.link_messages = 0;
  for (std::size_t p = 0; p < p_used; ++p) {
    out.link_messages += link_transfers[p];
    out.link_words += link_words[p];
  }
  out.link_messages *= out.iterations;
  out.link_words *= out.iterations;
  out.bus_messages = bus_messages_per_sweep * out.iterations;
  out.bus_words = bus_words_per_sweep * out.iterations;
  const double denom = static_cast<double>(out.elapsed) *
                       static_cast<double>(config.processors);
  out.pe_utilization =
      denom > 0.0
          ? static_cast<double>(compute_total * out.iterations) / denom
          : 0.0;
  return out;
}

Fem1Result fem1_solve_model(const fem::StructureModel& model,
                            const std::string& load_set,
                            const Fem1Config& config, Fem1Solver solver,
                            double tolerance, std::size_t max_iterations) {
  const auto it = model.load_sets.find(load_set);
  if (it == model.load_sets.end())
    throw support::Error("unknown load set: " + load_set);
  const fem::AssembledSystem system = fem::assemble(model);
  const auto rhs = system.load_vector(it->second);
  return fem1_solve(system.stiffness, rhs, config, solver, tolerance,
                    max_iterations);
}

}  // namespace fem2::fem1
