// Baseline: the original NASA Finite Element Machine (FEM-1), per Jordan
// (1978) and Storaasli et al. (1982) — the design whose limitations motivate
// the FEM-2 paper.
//
// Architectural model:
//  * a fixed array of microprocessors arranged in a square grid,
//  * static assignment of nodes to processors decided before the run
//    ("basic hardware decisions fixed at an early stage"),
//  * nearest-neighbour links (8-adjacent) plus a single time-shared global
//    bus for everything else — bus traffic serializes,
//  * synchronous relaxation solvers (Jacobi / Gauss-Seidel variants): each
//    sweep computes locally, exchanges boundary values, and synchronizes,
//  * no dynamic task migration: a failed processor stalls the whole array
//    until the problem is manually repartitioned and restarted.
//
// The simulator is synchronous-step (per sweep) rather than event-driven:
// the lockstep architecture makes per-iteration timing separable, and the
// iteration counts come from actually running the relaxation numerically.
#pragma once

#include <cstdint>
#include <string>

#include "fem/model.hpp"
#include "hw/config.hpp"
#include "la/sparse.hpp"

namespace fem2::fem1 {

struct Fem1Config {
  std::size_t processors = 36;  ///< arranged as a near-square grid

  // Timing (same per-flop speed as the FEM-2 PEs for a fair comparison).
  hw::Cycles cycles_per_flop = 4;
  hw::Cycles cycles_per_word = 1;
  hw::Cycles link_latency = 40;          ///< neighbour link, per transfer
  double link_cycles_per_word = 0.25;
  hw::Cycles bus_latency = 120;          ///< global bus arbitration
  double bus_cycles_per_word = 1.0;      ///< serialized across the array
  hw::Cycles sweep_sync_overhead = 200;  ///< barrier at end of each sweep

  std::size_t failed_processors = 0;  ///< static array: any failure stalls

  /// Manual repartition: if true, a failed array is repartitioned onto the
  /// surviving processors at a fixed engineering cost and restarted.
  bool manual_repartition = false;
  hw::Cycles repartition_cost = 50'000'000;
};

struct Fem1Result {
  bool completed = false;    ///< false when failures stall the static array
  bool converged = false;
  std::size_t iterations = 0;
  double residual = 0.0;
  hw::Cycles elapsed = 0;

  std::uint64_t link_messages = 0;
  std::uint64_t link_words = 0;
  std::uint64_t bus_messages = 0;
  std::uint64_t bus_words = 0;
  double pe_utilization = 0.0;  ///< compute cycles / (elapsed × processors)

  std::string summary() const;
};

enum class Fem1Solver { Jacobi, GaussSeidel };

/// Solve the reduced system on the FEM-1 model.
Fem1Result fem1_solve(const la::CsrMatrix& stiffness,
                      std::span<const double> rhs, const Fem1Config& config,
                      Fem1Solver solver = Fem1Solver::Jacobi,
                      double tolerance = 1e-10,
                      std::size_t max_iterations = 200'000);

/// Convenience: assemble `model` under `load_set` and solve on FEM-1.
Fem1Result fem1_solve_model(const fem::StructureModel& model,
                            const std::string& load_set,
                            const Fem1Config& config,
                            Fem1Solver solver = Fem1Solver::Jacobi,
                            double tolerance = 1e-10,
                            std::size_t max_iterations = 200'000);

}  // namespace fem2::fem1
