// Formal H-graph grammars of the four FEM-2 virtual-machine layers.
//
// "Each layer of virtual machine is formally specified during the design
// process, using the methods of H-graph semantics to construct a formal
// model of each layer."  Here the grammars are machine-checkable: the
// reflect_* functions (reflect.hpp) project live implementation state into
// H-graphs, and tests assert that every reachable state is in the language
// of its layer's grammar.
#pragma once

#include <string_view>

#include "hgraph/grammar.hpp"

namespace fem2::spec {

/// Layer 1 — application user's VM: structure models, grids, load sets,
/// displacements, stresses, workspace and database.
std::string_view appvm_grammar_text();
hgraph::Grammar appvm_grammar();

/// Layer 1b — the database engine under the application VM (fem2-db):
/// MVCC version chains, open transactions, the write-ahead log and its
/// commit/conflict accounting.
std::string_view db_grammar_text();
hgraph::Grammar db_grammar();

/// Layer 2 — numerical analyst's VM: tasks, windows on arrays,
/// task-control state.
std::string_view navm_grammar_text();
hgraph::Grammar navm_grammar();

/// Layer 3 — system programmer's VM: the seven message types, activation
/// records, ready queues, heap blocks.
std::string_view sysvm_grammar_text();
hgraph::Grammar sysvm_grammar();

/// Layer 4 — hardware: clusters of PEs around shared memories on a common
/// network.
std::string_view hw_grammar_text();
hgraph::Grammar hw_grammar();

}  // namespace fem2::spec
