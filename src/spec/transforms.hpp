// H-graph transforms modeling application-layer operations — the paper's
// "operations (procedures) on the data objects are modeled as H-graph
// transforms ... [which] may invoke each other in the usual manner of
// subprogram calling hierarchies".
//
// The registry's grammar is the layer-1 grammar extended with argument
// record types; every transform application is pre/post checked against it.
#pragma once

#include "hgraph/transform.hpp"

namespace fem2::spec {

/// Layer-1 grammar plus the transform argument records below.
hgraph::Grammar appvm_transform_grammar();

/// Registry with the application-user operations:
///   define-structure-model : modelname -> structure
///   add-node               : addnode_args -> structure
///   add-load               : addload_args -> structure
///   generate-grid          : grid_args -> structure   (invokes add-node)
///   count-nodes            : structure -> INT
hgraph::TransformRegistry make_appvm_transforms();

}  // namespace fem2::spec
