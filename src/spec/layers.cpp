#include "spec/layers.hpp"

#include "hgraph/grammar_parser.hpp"

namespace fem2::spec {

// ---------------------------------------------------------------------------
// Layer 1: application user's virtual machine

std::string_view appvm_grammar_text() {
  return R"(
# Application user's VM (layer 1).
# Data objects: structure/substructure model, grid description,
# node/element description, load set, displacements, stresses.

structure   ::= { name: STRING, node[*]: point, material[*]: material,
                  element[*]: element, constraint[*]: constraint,
                  loadset[*]: loadset }
point       ::= { x: REAL, y: REAL }
material    ::= { name: STRING, E: REAL, nu: REAL, A: REAL, I: REAL, t: REAL,
                  rho: REAL }
element     ::= { kind: STRING, mat: INT, node[*]: noderef }
noderef     ::= INT
constraint  ::= { node: INT, dof: INT, value: REAL }
loadset     ::= { name: STRING, pointload[*]: pointload }
pointload   ::= { node: INT, dof: INT, value: REAL }

displacements ::= { dofs_per_node: INT, u[*]: REAL }
stress        ::= { element: INT, sxx: REAL, syy: REAL, txy: REAL, vm: REAL }
stresses      ::= { stress[*]: stress }
results       ::= { displacements: displacements, stresses: stresses }

workspace   ::= { user: STRING, tenant?: STRING, model?: structure,
                  results?: results, storage?: storage,
                  query?: queryresult }
dbentry     ::= { name: STRING, kind: STRING, bytes: INT, revision: INT }
database    ::= { entry[*]: dbentry }

# Query layer: a predicate search over stored entries (kind / name prefix
# / revision window) and its result set, as surfaced by the `query`
# command and the serve front-end's snapshot read path.
queryfilter ::= { kind: STRING, prefix: STRING, min_revision: INT,
                  max_revision: INT, limit: INT }
queryrow    ::= { name: STRING, kind: STRING, bytes: INT, revision: INT }
queryresult ::= { filter: queryfilter, row[*]: queryrow, scanned: INT,
                  truncated: INT, plan: STRING }

# Abstract storage fragment: what layer 1 demands of the database engine
# beneath it.  The composites are open (`...`) — any concrete engine state
# may carry extra bookkeeping — so db_grammar's dbengine/chain/version
# provably refine storage/storedobj/storedver (checked by
# fem2_analyze --verify).
storage     ::= { mode: STRING, chain[*]: storedobj, ... }
storedobj   ::= { name: STRING, version[*]: storedver, ... }
storedver   ::= { revision: INT, kind: STRING, bytes: INT, ... }
)";
}

hgraph::Grammar appvm_grammar() {
  return hgraph::parse_grammar(appvm_grammar_text());
}

// ---------------------------------------------------------------------------
// Layer 1b: the database engine (fem2-db) under the application user's VM

std::string_view db_grammar_text() {
  return R"(
# fem2-db: the persistent shared database ("long-term storage; shared
# data") as a formal object.  Objects are MVCC version chains; open
# transactions buffer writes; the write-ahead log and the engine counters
# carry the durability and concurrency state.

version   ::= { revision: INT, kind: STRING, bytes: INT, txn: INT,
                deleted: INT }
chain     ::= { name: STRING, version[*]: version }
txn       ::= { id: INT, writes: INT }
walstate  ::= { records: INT, bytes: INT }
dbstats   ::= { commits: INT, aborts: INT, conflicts: INT,
                checkpoints: INT, recovered: INT }

# Secondary-index summary (kind buckets and revision entries over live
# heads) and the group-commit window state (batched WAL fsync).  Both are
# optional: a classic engine with group commit off reflects neither.
dbindex   ::= { kinds: INT, entries: INT }
gcstate   ::= { window_us: INT, max_batch: INT, batches: INT,
                batched: INT, max_seen: INT, pending: INT }
dbengine  ::= { mode: STRING, wal: walstate, stats: dbstats,
                index?: dbindex, groupcommit?: gcstate,
                chain[*]: chain, txn[*]: txn }
)";
}

hgraph::Grammar db_grammar() {
  return hgraph::parse_grammar(db_grammar_text());
}

// ---------------------------------------------------------------------------
// Layer 2: numerical analyst's virtual machine

std::string_view navm_grammar_text() {
  return R"(
# Numerical analyst's VM (layer 2).
# Data objects: windows on arrays; tasks with control state;
# sequence control: forall / pardo / task control / remote procedure call.

array       ::= { id: INT, owner: INT, cluster: INT, rows: INT, cols: INT }
window      ::= { array: INT, row0: INT, col0: INT, rows: INT, cols: INT }

taskstate   ::= STRING
task        ::= { id: INT, type: STRING, parent: INT, cluster: INT,
                  state: taskstate, replication: INT, of: INT }
tasksystem  ::= { task[*]: task, array[*]: array }
)";
}

hgraph::Grammar navm_grammar() {
  return hgraph::parse_grammar(navm_grammar_text());
}

// ---------------------------------------------------------------------------
// Layer 3: system programmer's virtual machine

std::string_view sysvm_grammar_text() {
  return R"(
# System programmer's VM (layer 3).
# Data objects: code blocks, activation records, window descriptors,
# the seven message types, ready queues, the variable-size-block heap.

codeblock   ::= { name: STRING, code_bytes: INT, ar_bytes: INT }

message     ::= initiate | pause_notify | resume_child | terminate_notify
              | remote_call | remote_return | load_code
initiate    ::= { @STRING, type: STRING, task: INT, parent: INT,
                  index: INT, of: INT, bytes: INT }
pause_notify     ::= { @STRING, child: INT, parent: INT }
resume_child     ::= { @STRING, child: INT, bytes: INT }
terminate_notify ::= { @STRING, child: INT, parent: INT, bytes: INT }
remote_call      ::= { @STRING, procedure: STRING, caller: INT, token: INT,
                       bytes: INT }
remote_return    ::= { @STRING, caller: INT, token: INT, bytes: INT }
load_code        ::= { @STRING, type: STRING, bytes: INT }

activation  ::= { task: INT, address: INT, bytes: INT }
readyqueue  ::= { depth: INT }
heapstate   ::= { capacity: INT, in_use: INT, high_water: INT,
                  live_blocks: INT, free_blocks: INT }
kernel      ::= { cluster: INT, readyqueue: readyqueue, heap: heapstate }
)";
}

hgraph::Grammar sysvm_grammar() {
  return hgraph::parse_grammar(sysvm_grammar_text());
}

// ---------------------------------------------------------------------------
// Layer 4: hardware

std::string_view hw_grammar_text() {
  return R"(
# Hardware layer (layer 4): clusters of processing elements organized
# around a shared memory; clusters communicate through a common network;
# one PE per cluster runs the OS kernel.

pe          ::= { index: INT, state: STRING, busy_cycles: INT }
memory      ::= { capacity: INT, in_use: INT }
cluster     ::= { index: INT, kernel_pe: INT, queue_depth: INT,
                  memory: memory, pe[*]: pe }
network     ::= { messages: INT, bytes: INT, local_messages: INT }
machine     ::= { clusters: INT, pes_per_cluster: INT, now: INT,
                  network: network, cluster[*]: cluster }
)";
}

hgraph::Grammar hw_grammar() {
  return hgraph::parse_grammar(hw_grammar_text());
}

}  // namespace fem2::spec
