// Projection of live implementation state into H-graphs — the bridge that
// makes the formal layer specifications (layers.hpp) checkable against the
// running system.
#pragma once

#include "appvm/command.hpp"
#include "db/engine.hpp"
#include "db/query.hpp"
#include "fem/model.hpp"
#include "hgraph/hgraph.hpp"
#include "hw/machine.hpp"
#include "navm/runtime.hpp"
#include "sysvm/os.hpp"

namespace fem2::spec {

// --- layer 1 ------------------------------------------------------------
hgraph::NodeId reflect_model(hgraph::HGraph& g,
                             const fem::StructureModel& model);
hgraph::NodeId reflect_displacements(hgraph::HGraph& g,
                                     const fem::Displacements& u);
hgraph::NodeId reflect_results(hgraph::HGraph& g,
                               const fem::AnalysisResult& results);
hgraph::NodeId reflect_workspace(hgraph::HGraph& g,
                                 const appvm::Session& session);
hgraph::NodeId reflect_database(hgraph::HGraph& g,
                                const appvm::Database& database);
hgraph::NodeId reflect_query_result(hgraph::HGraph& g,
                                    const db::QueryFilter& filter,
                                    const db::QueryResult& result);

// --- layer 1b: the database engine (fem2-db) -----------------------------
hgraph::NodeId reflect_db_engine(hgraph::HGraph& g, const db::Engine& engine);

// --- layer 2 ------------------------------------------------------------
hgraph::NodeId reflect_window(hgraph::HGraph& g, const navm::Window& window);
hgraph::NodeId reflect_task_system(hgraph::HGraph& g, const sysvm::Os& os,
                                   const navm::Runtime& runtime);

// --- layer 3 -----------------------------------------------------------
hgraph::NodeId reflect_message(hgraph::HGraph& g, const sysvm::Message& m);
hgraph::NodeId reflect_kernel(hgraph::HGraph& g, sysvm::Os& os,
                              hw::ClusterId cluster);

// --- layer 4 ------------------------------------------------------------
hgraph::NodeId reflect_machine(hgraph::HGraph& g, const hw::Machine& machine);

}  // namespace fem2::spec
