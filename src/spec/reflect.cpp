#include "spec/reflect.hpp"

#include "fem/analysis.hpp"

namespace fem2::spec {

namespace {

using hgraph::HGraph;
using hgraph::NodeId;

std::string indexed(std::string_view base, std::size_t i) {
  return std::string(base) + "[" + std::to_string(i) + "]";
}

NodeId int_node(HGraph& g, std::int64_t v) { return g.add_int(v); }
NodeId real_node(HGraph& g, double v) { return g.add_real(v); }
NodeId str_node(HGraph& g, std::string_view v) {
  return g.add_string(std::string(v));
}

}  // namespace

// ---------------------------------------------------------------------------
// Layer 1

hgraph::NodeId reflect_model(HGraph& g, const fem::StructureModel& model) {
  const NodeId root = g.add_node();
  g.add_arc(root, "name", str_node(g, model.name));

  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    const NodeId p = g.add_node();
    g.add_arc(p, "x", real_node(g, model.nodes[i].x));
    g.add_arc(p, "y", real_node(g, model.nodes[i].y));
    g.add_arc(root, indexed("node", i), p);
  }
  for (std::size_t i = 0; i < model.materials.size(); ++i) {
    const auto& m = model.materials[i];
    const NodeId n = g.add_node();
    g.add_arc(n, "name", str_node(g, m.name));
    g.add_arc(n, "E", real_node(g, m.youngs_modulus));
    g.add_arc(n, "nu", real_node(g, m.poisson_ratio));
    g.add_arc(n, "A", real_node(g, m.area));
    g.add_arc(n, "I", real_node(g, m.moment_of_inertia));
    g.add_arc(n, "t", real_node(g, m.thickness));
    g.add_arc(n, "rho", real_node(g, m.density));
    g.add_arc(root, indexed("material", i), n);
  }
  for (std::size_t i = 0; i < model.elements.size(); ++i) {
    const auto& e = model.elements[i];
    const NodeId n = g.add_node();
    g.add_arc(n, "kind", str_node(g, fem::element_type_name(e.type)));
    g.add_arc(n, "mat", int_node(g, static_cast<std::int64_t>(e.material)));
    for (std::size_t k = 0; k < e.node_count(); ++k)
      g.add_arc(n, indexed("node", k),
                int_node(g, static_cast<std::int64_t>(e.nodes[k])));
    g.add_arc(root, indexed("element", i), n);
  }
  for (std::size_t i = 0; i < model.constraints.size(); ++i) {
    const auto& c = model.constraints[i];
    const NodeId n = g.add_node();
    g.add_arc(n, "node", int_node(g, static_cast<std::int64_t>(c.node)));
    g.add_arc(n, "dof", int_node(g, static_cast<std::int64_t>(c.dof)));
    g.add_arc(n, "value", real_node(g, c.value));
    g.add_arc(root, indexed("constraint", i), n);
  }
  std::size_t set_index = 0;
  for (const auto& [set_name, set] : model.load_sets) {
    const NodeId n = g.add_node();
    g.add_arc(n, "name", str_node(g, set_name));
    for (std::size_t k = 0; k < set.loads.size(); ++k) {
      const auto& load = set.loads[k];
      const NodeId ln = g.add_node();
      g.add_arc(ln, "node", int_node(g, static_cast<std::int64_t>(load.node)));
      g.add_arc(ln, "dof", int_node(g, static_cast<std::int64_t>(load.dof)));
      g.add_arc(ln, "value", real_node(g, load.value));
      g.add_arc(n, indexed("pointload", k), ln);
    }
    g.add_arc(root, indexed("loadset", set_index++), n);
  }
  return root;
}

hgraph::NodeId reflect_displacements(HGraph& g, const fem::Displacements& u) {
  const NodeId root = g.add_node();
  g.add_arc(root, "dofs_per_node",
            int_node(g, static_cast<std::int64_t>(u.dofs_per_node)));
  for (std::size_t i = 0; i < u.values.size(); ++i)
    g.add_arc(root, indexed("u", i), real_node(g, u.values[i]));
  return root;
}

hgraph::NodeId reflect_results(HGraph& g, const fem::AnalysisResult& results) {
  const NodeId root = g.add_node();
  g.add_arc(root, "displacements",
            reflect_displacements(g, results.solution.displacements));
  const NodeId stresses = g.add_node();
  for (std::size_t i = 0; i < results.stresses.size(); ++i) {
    const auto& s = results.stresses[i];
    const NodeId n = g.add_node();
    g.add_arc(n, "element", int_node(g, static_cast<std::int64_t>(s.element)));
    g.add_arc(n, "sxx", real_node(g, s.sigma_xx));
    g.add_arc(n, "syy", real_node(g, s.sigma_yy));
    g.add_arc(n, "txy", real_node(g, s.tau_xy));
    g.add_arc(n, "vm", real_node(g, s.von_mises));
    g.add_arc(stresses, indexed("stress", i), n);
  }
  g.add_arc(root, "stresses", stresses);
  return root;
}

hgraph::NodeId reflect_workspace(HGraph& g, const appvm::Session& session) {
  const NodeId root = g.add_node();
  g.add_arc(root, "user", str_node(g, session.user()));
  if (!session.tenant().empty())
    g.add_arc(root, "tenant", str_node(g, session.tenant()));
  if (session.workspace().has_model())
    g.add_arc(root, "model", reflect_model(g, session.workspace().model()));
  if (session.workspace().has_results())
    g.add_arc(root, "results",
              reflect_results(g, session.workspace().results()));
  return root;
}

hgraph::NodeId reflect_database(HGraph& g, const appvm::Database& database) {
  const NodeId root = g.add_node();
  const auto entries = database.list();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const NodeId n = g.add_node();
    g.add_arc(n, "name", str_node(g, entries[i].name));
    g.add_arc(n, "kind", str_node(g, entries[i].kind));
    g.add_arc(n, "bytes",
              int_node(g, static_cast<std::int64_t>(entries[i].bytes)));
    g.add_arc(n, "revision",
              int_node(g, static_cast<std::int64_t>(entries[i].revision)));
    g.add_arc(root, indexed("entry", i), n);
  }
  return root;
}

hgraph::NodeId reflect_query_result(HGraph& g, const db::QueryFilter& filter,
                                    const db::QueryResult& result) {
  const NodeId root = g.add_node();

  const NodeId f = g.add_node();
  g.add_arc(f, "kind", str_node(g, filter.kind));
  g.add_arc(f, "prefix", str_node(g, filter.name_prefix));
  g.add_arc(f, "min_revision",
            int_node(g, static_cast<std::int64_t>(filter.min_revision)));
  g.add_arc(f, "max_revision",
            int_node(g, filter.max_revision == db::kAnyRevision
                            ? -1
                            : static_cast<std::int64_t>(filter.max_revision)));
  g.add_arc(f, "limit", int_node(g, static_cast<std::int64_t>(filter.limit)));
  g.add_arc(root, "filter", f);

  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const auto& row = result.rows[i];
    const NodeId n = g.add_node();
    g.add_arc(n, "name", str_node(g, row.name));
    g.add_arc(n, "kind", str_node(g, row.kind));
    g.add_arc(n, "bytes", int_node(g, static_cast<std::int64_t>(row.bytes)));
    g.add_arc(n, "revision",
              int_node(g, static_cast<std::int64_t>(row.revision)));
    g.add_arc(root, indexed("row", i), n);
  }
  g.add_arc(root, "scanned",
            int_node(g, static_cast<std::int64_t>(result.scanned)));
  g.add_arc(root, "truncated", int_node(g, result.truncated ? 1 : 0));
  g.add_arc(root, "plan", str_node(g, result.plan));
  return root;
}

// ---------------------------------------------------------------------------
// Layer 1b: the database engine (fem2-db)

hgraph::NodeId reflect_db_engine(HGraph& g, const db::Engine& engine) {
  const db::EngineState state = engine.state();
  const NodeId root = g.add_node();
  g.add_arc(root, "mode", str_node(g, state.mode));

  const NodeId wal = g.add_node();
  g.add_arc(wal, "records",
            int_node(g, static_cast<std::int64_t>(state.stats.wal_records)));
  g.add_arc(wal, "bytes",
            int_node(g, static_cast<std::int64_t>(state.stats.wal_bytes)));
  g.add_arc(root, "wal", wal);

  const NodeId stats = g.add_node();
  g.add_arc(stats, "commits",
            int_node(g, static_cast<std::int64_t>(state.stats.commits)));
  g.add_arc(stats, "aborts",
            int_node(g, static_cast<std::int64_t>(state.stats.aborts)));
  g.add_arc(stats, "conflicts",
            int_node(g, static_cast<std::int64_t>(state.stats.conflicts)));
  g.add_arc(stats, "checkpoints",
            int_node(g, static_cast<std::int64_t>(state.stats.checkpoints)));
  g.add_arc(stats, "recovered",
            int_node(g,
                     static_cast<std::int64_t>(state.stats.recovered_txns)));
  g.add_arc(root, "stats", stats);

  if (state.index_kinds > 0 || state.index_entries > 0) {
    const NodeId idx = g.add_node();
    g.add_arc(idx, "kinds",
              int_node(g, static_cast<std::int64_t>(state.index_kinds)));
    g.add_arc(idx, "entries",
              int_node(g, static_cast<std::int64_t>(state.index_entries)));
    g.add_arc(root, "index", idx);
  }

  const auto& options = engine.options();
  if (options.group_commit_window.count() > 0) {
    const NodeId gc = g.add_node();
    g.add_arc(gc, "window_us",
              int_node(g, static_cast<std::int64_t>(
                              options.group_commit_window.count())));
    g.add_arc(gc, "max_batch",
              int_node(g, static_cast<std::int64_t>(
                              options.group_commit_max_batch)));
    g.add_arc(gc, "batches",
              int_node(g,
                       static_cast<std::int64_t>(state.stats.group_batches)));
    g.add_arc(gc, "batched",
              int_node(g, static_cast<std::int64_t>(
                              state.stats.group_batched_txns)));
    g.add_arc(gc, "max_seen",
              int_node(g,
                       static_cast<std::int64_t>(state.stats.group_max_batch)));
    g.add_arc(gc, "pending",
              int_node(g, static_cast<std::int64_t>(state.pending_heads)));
    g.add_arc(root, "groupcommit", gc);
  }

  for (std::size_t i = 0; i < state.chains.size(); ++i) {
    const auto& chain = state.chains[i];
    const NodeId cn = g.add_node();
    g.add_arc(cn, "name", str_node(g, chain.name));
    for (std::size_t k = 0; k < chain.versions.size(); ++k) {
      const auto& v = chain.versions[k];
      const NodeId vn = g.add_node();
      g.add_arc(vn, "revision",
                int_node(g, static_cast<std::int64_t>(v.revision)));
      g.add_arc(vn, "kind", str_node(g, v.kind));
      g.add_arc(vn, "bytes", int_node(g, static_cast<std::int64_t>(v.bytes)));
      g.add_arc(vn, "txn", int_node(g, static_cast<std::int64_t>(v.txn)));
      g.add_arc(vn, "deleted", int_node(g, v.deleted ? 1 : 0));
      g.add_arc(cn, indexed("version", k), vn);
    }
    g.add_arc(root, indexed("chain", i), cn);
  }
  for (std::size_t i = 0; i < state.transactions.size(); ++i) {
    const auto& txn = state.transactions[i];
    const NodeId tn = g.add_node();
    g.add_arc(tn, "id", int_node(g, static_cast<std::int64_t>(txn.id)));
    g.add_arc(tn, "writes",
              int_node(g, static_cast<std::int64_t>(txn.writes)));
    g.add_arc(root, indexed("txn", i), tn);
  }
  return root;
}

// ---------------------------------------------------------------------------
// Layer 2

hgraph::NodeId reflect_window(HGraph& g, const navm::Window& window) {
  const NodeId n = g.add_node();
  g.add_arc(n, "array", int_node(g, static_cast<std::int64_t>(window.array)));
  g.add_arc(n, "row0", int_node(g, static_cast<std::int64_t>(window.row0)));
  g.add_arc(n, "col0", int_node(g, static_cast<std::int64_t>(window.col0)));
  g.add_arc(n, "rows", int_node(g, static_cast<std::int64_t>(window.rows)));
  g.add_arc(n, "cols", int_node(g, static_cast<std::int64_t>(window.cols)));
  return n;
}

hgraph::NodeId reflect_task_system(HGraph& g, const sysvm::Os& os,
                                   const navm::Runtime& runtime) {
  const NodeId root = g.add_node();
  const auto ids = os.task_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = os.task_info(ids[i]);
    const NodeId n = g.add_node();
    g.add_arc(n, "id", int_node(g, static_cast<std::int64_t>(info.id)));
    g.add_arc(n, "type", str_node(g, info.type));
    g.add_arc(n, "parent",
              int_node(g, static_cast<std::int64_t>(info.parent)));
    g.add_arc(n, "cluster",
              int_node(g, static_cast<std::int64_t>(info.cluster.index)));
    g.add_arc(n, "state", str_node(g, sysvm::task_state_name(info.state)));
    g.add_arc(n, "replication",
              int_node(g, static_cast<std::int64_t>(info.replication_index)));
    g.add_arc(n, "of",
              int_node(g, static_cast<std::int64_t>(info.replication_count)));
    g.add_arc(root, indexed("task", i), n);
  }
  const auto arrays = runtime.array_ids();
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const auto& info = runtime.array_info_unchecked(arrays[i]);
    const NodeId n = g.add_node();
    g.add_arc(n, "id", int_node(g, static_cast<std::int64_t>(info.id)));
    g.add_arc(n, "owner", int_node(g, static_cast<std::int64_t>(info.owner)));
    g.add_arc(n, "cluster",
              int_node(g, static_cast<std::int64_t>(info.cluster.index)));
    g.add_arc(n, "rows", int_node(g, static_cast<std::int64_t>(info.rows)));
    g.add_arc(n, "cols", int_node(g, static_cast<std::int64_t>(info.cols)));
    g.add_arc(root, indexed("array", i), n);
  }
  return root;
}

// ---------------------------------------------------------------------------
// Layer 3

hgraph::NodeId reflect_message(HGraph& g, const sysvm::Message& m) {
  const NodeId n = g.add_node(hgraph::Atom{std::string(
      sysvm::message_type_name(sysvm::message_type(m)))});
  const auto bytes = static_cast<std::int64_t>(sysvm::message_bytes(m));

  struct Visitor {
    HGraph& g;
    NodeId n;
    std::int64_t bytes;
    void operator()(const sysvm::MsgInitiate& v) const {
      g.add_arc(n, "type", g.add_string(v.task_type));
      g.add_arc(n, "task", g.add_int(static_cast<std::int64_t>(v.task)));
      g.add_arc(n, "parent", g.add_int(static_cast<std::int64_t>(v.parent)));
      g.add_arc(n, "index",
                g.add_int(static_cast<std::int64_t>(v.replication_index)));
      g.add_arc(n, "of",
                g.add_int(static_cast<std::int64_t>(v.replication_count)));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
    void operator()(const sysvm::MsgPauseNotify& v) const {
      g.add_arc(n, "child", g.add_int(static_cast<std::int64_t>(v.child)));
      g.add_arc(n, "parent", g.add_int(static_cast<std::int64_t>(v.parent)));
    }
    void operator()(const sysvm::MsgResumeChild& v) const {
      g.add_arc(n, "child", g.add_int(static_cast<std::int64_t>(v.child)));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
    void operator()(const sysvm::MsgTerminateNotify& v) const {
      g.add_arc(n, "child", g.add_int(static_cast<std::int64_t>(v.child)));
      g.add_arc(n, "parent", g.add_int(static_cast<std::int64_t>(v.parent)));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
    void operator()(const sysvm::MsgRemoteCall& v) const {
      g.add_arc(n, "procedure", g.add_string(v.procedure));
      g.add_arc(n, "caller", g.add_int(static_cast<std::int64_t>(v.caller)));
      g.add_arc(n, "token", g.add_int(static_cast<std::int64_t>(v.token)));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
    void operator()(const sysvm::MsgRemoteReturn& v) const {
      g.add_arc(n, "caller", g.add_int(static_cast<std::int64_t>(v.caller)));
      g.add_arc(n, "token", g.add_int(static_cast<std::int64_t>(v.token)));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
    void operator()(const sysvm::MsgLoadCode& v) const {
      g.add_arc(n, "type", g.add_string(v.task_type));
      g.add_arc(n, "bytes", g.add_int(bytes));
    }
  };
  std::visit(Visitor{g, n, bytes}, m);
  return n;
}

hgraph::NodeId reflect_kernel(HGraph& g, sysvm::Os& os,
                              hw::ClusterId cluster) {
  const NodeId root = g.add_node();
  g.add_arc(root, "cluster",
            int_node(g, static_cast<std::int64_t>(cluster.index)));

  const NodeId rq = g.add_node();
  g.add_arc(rq, "depth",
            int_node(g, static_cast<std::int64_t>(os.ready_depth(cluster))));
  g.add_arc(root, "readyqueue", rq);

  const auto& heap = os.heap(cluster);
  const auto& stats = heap.stats();
  const NodeId h = g.add_node();
  g.add_arc(h, "capacity",
            int_node(g, static_cast<std::int64_t>(heap.capacity())));
  g.add_arc(h, "in_use", int_node(g, static_cast<std::int64_t>(stats.in_use)));
  g.add_arc(h, "high_water",
            int_node(g, static_cast<std::int64_t>(stats.high_water)));
  g.add_arc(h, "live_blocks",
            int_node(g, static_cast<std::int64_t>(heap.live_blocks())));
  g.add_arc(h, "free_blocks",
            int_node(g, static_cast<std::int64_t>(heap.free_list_length())));
  g.add_arc(root, "heap", h);
  return root;
}

// ---------------------------------------------------------------------------
// Layer 4

hgraph::NodeId reflect_machine(HGraph& g, const hw::Machine& machine) {
  const auto& config = machine.config();
  const NodeId root = g.add_node();
  g.add_arc(root, "clusters",
            int_node(g, static_cast<std::int64_t>(config.clusters)));
  g.add_arc(root, "pes_per_cluster",
            int_node(g, static_cast<std::int64_t>(config.pes_per_cluster)));
  g.add_arc(root, "now",
            int_node(g, static_cast<std::int64_t>(machine.now())));

  const auto& metrics = machine.metrics();
  const NodeId net = g.add_node();
  g.add_arc(net, "messages",
            int_node(g, static_cast<std::int64_t>(metrics.network.messages)));
  g.add_arc(net, "bytes",
            int_node(g, static_cast<std::int64_t>(metrics.network.bytes)));
  g.add_arc(net, "local_messages",
            int_node(g,
                     static_cast<std::int64_t>(metrics.network.local_messages)));
  g.add_arc(root, "network", net);

  for (std::size_t c = 0; c < config.clusters; ++c) {
    const hw::ClusterId cluster{static_cast<std::uint32_t>(c)};
    const NodeId cn = g.add_node();
    g.add_arc(cn, "index", int_node(g, static_cast<std::int64_t>(c)));
    const hw::PeId kernel = machine.kernel_pe(cluster);
    g.add_arc(cn, "kernel_pe",
              int_node(g, kernel.valid()
                              ? static_cast<std::int64_t>(kernel.index)
                              : -1));
    g.add_arc(cn, "queue_depth",
              int_node(g,
                       static_cast<std::int64_t>(machine.queue_depth(cluster))));

    const NodeId mem = g.add_node();
    g.add_arc(mem, "capacity",
              int_node(g,
                       static_cast<std::int64_t>(machine.memory_capacity())));
    g.add_arc(mem, "in_use",
              int_node(g, static_cast<std::int64_t>(
                              machine.memory_in_use(cluster))));
    g.add_arc(cn, "memory", mem);

    for (std::size_t p = 0; p < config.pes_per_cluster; ++p) {
      const hw::PeId pe{cluster, static_cast<std::uint32_t>(p)};
      const NodeId pn = g.add_node();
      g.add_arc(pn, "index", int_node(g, static_cast<std::int64_t>(p)));
      const char* state = !machine.pe_alive(pe)  ? "failed"
                          : machine.pe_busy(pe)  ? "busy"
                                                 : "idle";
      g.add_arc(pn, "state", str_node(g, state));
      const auto flat = c * config.pes_per_cluster + p;
      g.add_arc(pn, "busy_cycles",
                int_node(g, static_cast<std::int64_t>(
                                metrics.pes[flat].busy_cycles)));
      g.add_arc(cn, indexed("pe", p), pn);
    }
    g.add_arc(root, indexed("cluster", c), cn);
  }
  return root;
}

}  // namespace fem2::spec
