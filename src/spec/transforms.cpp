#include "spec/transforms.hpp"

#include <string>

#include "hgraph/grammar_parser.hpp"
#include "spec/layers.hpp"

namespace fem2::spec {

namespace {

using hgraph::HGraph;
using hgraph::Invoker;
using hgraph::NodeId;

std::string transform_grammar_text() {
  return std::string(appvm_grammar_text()) + R"(
# Argument records of the layer-1 transforms.
modelname    ::= { name: STRING }
addnode_args ::= { model: structure, x: REAL, y: REAL }
addload_args ::= { model: structure, set: STRING, node: INT, dof: INT,
                   value: REAL }
grid_args    ::= { model: structure, nx: INT, ny: INT, width: REAL,
                   height: REAL }
)";
}

/// Number of arcs of the indexed family `base[i]` on `node` (the next free
/// index when appending).
std::size_t family_size(const HGraph& g, NodeId node, std::string_view base) {
  std::size_t count = 0;
  for (const auto& arc : g.arcs(node)) {
    if (arc.label.size() > base.size() + 2 && arc.label.starts_with(base) &&
        arc.label[base.size()] == '[')
      ++count;
  }
  return count;
}

std::string indexed(std::string_view base, std::size_t i) {
  return std::string(base) + "[" + std::to_string(i) + "]";
}

NodeId define_structure_model(Invoker&, HGraph& g, NodeId arg) {
  const NodeId name = g.follow(arg, "name");
  const NodeId model = g.add_node();
  g.add_arc(model, "name",
            g.add_string(std::string(*g.string_value(name))));
  return model;
}

NodeId add_node_transform(Invoker&, HGraph& g, NodeId arg) {
  const NodeId model = g.follow(arg, "model");
  const NodeId point = g.add_node();
  g.add_arc(point, "x", g.add_real(*g.real_value(g.follow(arg, "x"))));
  g.add_arc(point, "y", g.add_real(*g.real_value(g.follow(arg, "y"))));
  g.add_arc(model, indexed("node", family_size(g, model, "node")), point);
  return model;
}

NodeId add_load_transform(Invoker&, HGraph& g, NodeId arg) {
  const NodeId model = g.follow(arg, "model");
  const std::string set(*g.string_value(g.follow(arg, "set")));

  // Find or create the load set with this name.
  NodeId set_node{};
  const std::size_t sets = family_size(g, model, "loadset");
  for (std::size_t i = 0; i < sets; ++i) {
    const NodeId candidate = g.follow(model, indexed("loadset", i));
    if (*g.string_value(g.follow(candidate, "name")) == set) {
      set_node = candidate;
      break;
    }
  }
  if (!set_node.valid()) {
    set_node = g.add_node();
    g.add_arc(set_node, "name", g.add_string(set));
    g.add_arc(model, indexed("loadset", sets), set_node);
  }

  const NodeId load = g.add_node();
  g.add_arc(load, "node", g.add_int(*g.int_value(g.follow(arg, "node"))));
  g.add_arc(load, "dof", g.add_int(*g.int_value(g.follow(arg, "dof"))));
  g.add_arc(load, "value", g.add_real(*g.real_value(g.follow(arg, "value"))));
  g.add_arc(set_node, indexed("pointload", family_size(g, set_node, "pointload")),
            load);
  return model;
}

NodeId generate_grid_transform(Invoker& invoker, HGraph& g, NodeId arg) {
  const NodeId model = g.follow(arg, "model");
  const auto nx = static_cast<std::size_t>(*g.int_value(g.follow(arg, "nx")));
  const auto ny = static_cast<std::size_t>(*g.int_value(g.follow(arg, "ny")));
  const double width = *g.real_value(g.follow(arg, "width"));
  const double height = *g.real_value(g.follow(arg, "height"));

  // Invoke add-node for each grid point — the subprogram-call hierarchy.
  for (std::size_t j = 0; j <= ny; ++j) {
    for (std::size_t i = 0; i <= nx; ++i) {
      const NodeId call_arg = g.add_node();
      g.add_arc(call_arg, "model", model);
      g.add_arc(call_arg, "x",
                g.add_real(width * static_cast<double>(i) /
                           static_cast<double>(nx)));
      g.add_arc(call_arg, "y",
                g.add_real(height * static_cast<double>(j) /
                           static_cast<double>(ny)));
      invoker.call("add-node", call_arg);
    }
  }
  return model;
}

NodeId count_nodes_transform(Invoker&, HGraph& g, NodeId model) {
  return g.add_int(static_cast<std::int64_t>(family_size(g, model, "node")));
}

}  // namespace

hgraph::Grammar appvm_transform_grammar() {
  return hgraph::parse_grammar(transform_grammar_text());
}

hgraph::TransformRegistry make_appvm_transforms() {
  using hgraph::AtomKind;
  using hgraph::RuleSpec;
  using hgraph::op_add_arc;
  using hgraph::op_append;
  using hgraph::op_atom;
  using hgraph::op_call;
  using hgraph::op_fresh;
  using hgraph::op_let;
  using hgraph::op_pick;
  using hgraph::op_return;
  const auto here = [](std::size_t line) {
    return hgraph::SourceLoc{line, 1};
  };

  hgraph::TransformRegistry registry(appvm_transform_grammar());

  // Each registration carries the rule's declarative abstract effect (the
  // RuleSpec) so fem2_analyze --verify can prove type preservation without
  // executing the body.  The spec mirrors the C++ above it; the runtime
  // pre/post conformance checks remain the ground truth.
  registry.register_transform(
      "define-structure-model",
      {"modelname", "structure",
       RuleSpec{{{{op_let("n", "arg", "name"), op_fresh("m"),
                   op_add_arc("m", "name", "n"), op_return("m")}}},
                here(__LINE__)}},
      define_structure_model);

  registry.register_transform(
      "add-node",
      {"addnode_args", "structure",
       RuleSpec{{{{op_let("model", "arg", "model"), op_let("x", "arg", "x"),
                   op_let("y", "arg", "y"), op_fresh("p"),
                   op_add_arc("p", "x", "x"), op_add_arc("p", "y", "y"),
                   op_append("model", "node", "p"), op_return("model")}}},
                here(__LINE__)}},
      add_node_transform);

  // add-load has a find-or-create split: path one extends an existing
  // load set, path two creates and links a fresh one.
  registry.register_transform(
      "add-load",
      {"addload_args", "structure",
       RuleSpec{{{{op_let("model", "arg", "model"),
                   op_pick("set", "model", "loadset"),
                   op_let("n", "arg", "node"), op_let("d", "arg", "dof"),
                   op_let("v", "arg", "value"), op_fresh("load"),
                   op_add_arc("load", "node", "n"),
                   op_add_arc("load", "dof", "d"),
                   op_add_arc("load", "value", "v"),
                   op_append("set", "pointload", "load"),
                   op_return("model")}},
                 {{op_let("model", "arg", "model"),
                   op_let("s", "arg", "set"), op_fresh("set"),
                   op_add_arc("set", "name", "s"),
                   op_append("model", "loadset", "set"),
                   op_let("n", "arg", "node"), op_let("d", "arg", "dof"),
                   op_let("v", "arg", "value"), op_fresh("load"),
                   op_add_arc("load", "node", "n"),
                   op_add_arc("load", "dof", "d"),
                   op_add_arc("load", "value", "v"),
                   op_append("set", "pointload", "load"),
                   op_return("model")}}},
                here(__LINE__)}},
      add_load_transform);

  // The grid loop collapses to one iteration abstractly: the body invokes
  // add-node, whose own spec proves each application preserves structure.
  registry.register_transform(
      "generate-grid",
      {"grid_args", "structure",
       RuleSpec{{{{op_let("model", "arg", "model"), op_fresh("call_arg"),
                   op_add_arc("call_arg", "model", "model"),
                   op_atom("cx", AtomKind::Real),
                   op_atom("cy", AtomKind::Real),
                   op_add_arc("call_arg", "x", "cx"),
                   op_add_arc("call_arg", "y", "cy"),
                   op_call("r", "add-node", "call_arg"),
                   op_return("model")}}},
                here(__LINE__)}},
      generate_grid_transform);

  registry.register_transform(
      "count-nodes",
      {"structure", "INT",
       RuleSpec{{{{op_atom("c", AtomKind::Int), op_return("c")}}},
                here(__LINE__)}},
      count_nodes_transform);
  return registry;
}

}  // namespace fem2::spec
