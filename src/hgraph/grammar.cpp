#include "hgraph/grammar.hpp"

#include <optional>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace fem2::hgraph {

std::string_view atom_kind_name(AtomKind k) {
  switch (k) {
    case AtomKind::Nil: return "NIL";
    case AtomKind::Int: return "INT";
    case AtomKind::Real: return "REAL";
    case AtomKind::String: return "STRING";
    case AtomKind::Any: return "ANY";
  }
  FEM2_UNREACHABLE("bad AtomKind");
}

std::string SourceLoc::to_string() const {
  if (!known()) return "<unknown>";
  return "line " + std::to_string(line) + ", col " + std::to_string(column);
}

bool atom_matches(const HGraph& g, NodeId node, AtomKind kind) {
  switch (kind) {
    case AtomKind::Nil: return g.is_empty(node);
    case AtomKind::Int: return g.int_value(node).has_value();
    case AtomKind::Real: return g.real_value(node).has_value();
    case AtomKind::String: return g.string_value(node).has_value();
    case AtomKind::Any: return true;
  }
  FEM2_UNREACHABLE("bad AtomKind");
}

namespace {

/// Builtin nonterminals mapping straight to atom kinds.
std::optional<AtomKind> builtin_kind(std::string_view name) {
  if (name == "NIL") return AtomKind::Nil;
  if (name == "INT") return AtomKind::Int;
  if (name == "REAL") return AtomKind::Real;
  if (name == "STRING") return AtomKind::String;
  if (name == "ANY") return AtomKind::Any;
  return std::nullopt;
}

/// Parse a label of the form `base[index]`; returns index or nullopt.
std::optional<std::size_t> indexed_suffix(std::string_view label,
                                          std::string_view base) {
  if (label.size() < base.size() + 3) return std::nullopt;
  if (!label.starts_with(base)) return std::nullopt;
  if (label[base.size()] != '[' || label.back() != ']') return std::nullopt;
  const std::string_view digits =
      label.substr(base.size() + 1, label.size() - base.size() - 2);
  if (digits.empty()) return std::nullopt;
  std::size_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

}  // namespace

struct Grammar::CheckState {
  // (node, nonterminal) pairs currently being checked (coinduction) or
  // already proven.
  std::set<std::pair<std::uint32_t, std::string>> in_progress;
  std::set<std::pair<std::uint32_t, std::string>> proven;
  std::string error;
  std::string path = "<root>";
};

Grammar::Grammar() = default;

void Grammar::add_alternative(std::string nonterminal, Alternative alt,
                              SourceLoc loc) {
  FEM2_CHECK_MSG(!builtin_kind(nonterminal).has_value(),
                 "cannot redefine builtin nonterminal");
  rules_[std::move(nonterminal)].push_back(Rule{std::move(alt), loc});
}

bool Grammar::is_builtin(std::string_view nonterminal) {
  return builtin_kind(nonterminal).has_value();
}

bool Grammar::has_rule(std::string_view nonterminal) const {
  return builtin_kind(nonterminal).has_value() ||
         rules_.find(nonterminal) != rules_.end();
}

std::vector<std::string> Grammar::nonterminals() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& [name, alts] : rules_) out.push_back(name);
  return out;
}

ConformanceResult Grammar::conforms(const HGraph& g, NodeId node,
                                    std::string_view nonterminal) const {
  CheckState state;
  if (check(g, node, std::string(nonterminal), state)) return {};
  ConformanceResult r;
  r.ok = false;
  r.error = state.error.empty()
                ? "node does not conform to " + std::string(nonterminal)
                : state.error;
  return r;
}

bool Grammar::check(const HGraph& g, NodeId node,
                    const std::string& nonterminal, CheckState& state) const {
  if (const auto kind = builtin_kind(nonterminal)) {
    if (atom_matches(g, node, *kind)) return true;
    state.error = state.path + ": atom " + atom_to_string(g.value(node)) +
                  " does not match " + nonterminal;
    return false;
  }
  const auto it = rules_.find(nonterminal);
  if (it == rules_.end()) {
    state.error = state.path + ": undefined nonterminal " + nonterminal;
    return false;
  }
  const auto key = std::make_pair(node.index, nonterminal);
  if (state.proven.contains(key)) return true;
  if (state.in_progress.contains(key)) return true;  // coinductive assumption
  state.in_progress.insert(key);

  std::string first_error;
  for (const auto& rule : it->second) {
    const std::string saved_error = state.error;
    if (check_alternative(g, node, rule.alternative, state)) {
      state.in_progress.erase(key);
      state.proven.insert(key);
      state.error = saved_error;
      return true;
    }
    if (first_error.empty()) first_error = state.error;
    state.error = saved_error;
  }
  state.in_progress.erase(key);
  state.error = first_error.empty()
                    ? state.path + ": no alternative of " + nonterminal +
                          " matches"
                    : first_error;
  return false;
}

bool Grammar::check_alternative(const HGraph& g, NodeId node,
                                const Alternative& alt,
                                CheckState& state) const {
  if (const auto* kind = std::get_if<AtomKind>(&alt)) {
    if (g.arcs(node).empty() && atom_matches(g, node, *kind)) return true;
    state.error = state.path + ": expected leaf atom " +
                  std::string(atom_kind_name(*kind));
    return false;
  }
  if (const auto* ref = std::get_if<NonterminalRef>(&alt)) {
    return check(g, node, ref->name, state);
  }

  const auto& comp = std::get<Composite>(alt);
  if (!atom_matches(g, node, comp.own_atom)) {
    state.error = state.path + ": node atom " + atom_to_string(g.value(node)) +
                  " violates @" + std::string(atom_kind_name(comp.own_atom));
    return false;
  }

  const auto& arcs = g.arcs(node);
  std::vector<bool> matched(arcs.size(), false);

  for (const auto& pat : comp.arcs) {
    std::vector<std::size_t> hits;
    std::vector<std::size_t> indices;  // for IndexedFamily
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (matched[i]) continue;
      if (pat.multiplicity == Multiplicity::IndexedFamily) {
        if (const auto idx = indexed_suffix(arcs[i].label, pat.label)) {
          hits.push_back(i);
          indices.push_back(*idx);
        }
      } else if (arcs[i].label == pat.label) {
        hits.push_back(i);
      }
    }

    switch (pat.multiplicity) {
      case Multiplicity::One:
        if (hits.size() != 1) {
          state.error = state.path + ": expected exactly one arc '" +
                        pat.label + "', found " + std::to_string(hits.size());
          return false;
        }
        break;
      case Multiplicity::Optional:
        if (hits.size() > 1) {
          state.error = state.path + ": expected at most one arc '" +
                        pat.label + "', found " + std::to_string(hits.size());
          return false;
        }
        break;
      case Multiplicity::Star:
        break;
      case Multiplicity::IndexedFamily: {
        // Indices must be exactly {0, 1, ..., n-1}, each once.
        std::set<std::size_t> unique(indices.begin(), indices.end());
        if (unique.size() != indices.size() ||
            (!indices.empty() && (*unique.begin() != 0 ||
                                  *unique.rbegin() != indices.size() - 1))) {
          state.error = state.path + ": arcs '" + pat.label +
                        "[i]' are not a contiguous 0-based family";
          return false;
        }
        break;
      }
    }

    for (std::size_t i : hits) {
      matched[i] = true;
      const std::string saved_path = state.path;
      state.path += "." + arcs[i].label;
      const bool ok = check(g, arcs[i].target, pat.nonterminal, state);
      state.path = saved_path;
      if (!ok) return false;
    }
  }

  if (!comp.open) {
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (!matched[i]) {
        state.error =
            state.path + ": unexpected arc '" + arcs[i].label + "'";
        return false;
      }
    }
  }
  return true;
}

namespace {

ConformanceResult undefined_reference(const std::string& rule_name,
                                      const std::string& target,
                                      const SourceLoc& loc) {
  ConformanceResult r;
  r.ok = false;
  r.error = "rule '" + rule_name + "' (" + loc.to_string() +
            ") references undefined nonterminal '" + target + "'";
  return r;
}

}  // namespace

ConformanceResult Grammar::validate() const {
  for (const auto& [name, alts] : rules_) {
    for (const auto& rule : alts) {
      if (const auto* ref = std::get_if<NonterminalRef>(&rule.alternative)) {
        if (!has_rule(ref->name)) {
          return undefined_reference(name, ref->name, rule.loc);
        }
        continue;
      }
      const auto* comp = std::get_if<Composite>(&rule.alternative);
      if (!comp) continue;
      for (const auto& pat : comp->arcs) {
        if (!has_rule(pat.nonterminal)) {
          const SourceLoc& loc = pat.loc.known() ? pat.loc : rule.loc;
          return undefined_reference(name, pat.nonterminal, loc);
        }
      }
    }
  }
  return {};
}

}  // namespace fem2::hgraph
