#include "hgraph/grammar_algorithms.hpp"

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <vector>

namespace fem2::hgraph {

namespace {

std::optional<AtomKind> builtin_kind(std::string_view name) {
  if (name == "NIL") return AtomKind::Nil;
  if (name == "INT") return AtomKind::Int;
  if (name == "REAL") return AtomKind::Real;
  if (name == "STRING") return AtomKind::String;
  if (name == "ANY") return AtomKind::Any;
  return std::nullopt;
}

/// matches(a) is a subset of matches(b): REAL accepts INT, ANY accepts all.
bool atom_subsumed(AtomKind a, AtomKind b) {
  if (a == b || b == AtomKind::Any) return true;
  return a == AtomKind::Int && b == AtomKind::Real;
}

/// Would a plain arc labeled `label` be claimed by an indexed-family
/// pattern with base `base` (i.e. is it of the form base[digits])?
bool family_claims(std::string_view base, std::string_view label) {
  if (label.size() < base.size() + 3) return false;
  if (!label.starts_with(base)) return false;
  if (label[base.size()] != '[' || label.back() != ']') return false;
  const std::string_view digits =
      label.substr(base.size() + 1, label.size() - base.size() - 2);
  if (digits.empty()) return false;
  for (char c : digits)
    if (c < '0' || c > '9') return false;
  return true;
}

/// An alternative with aliases resolved away: either a leaf atom or a
/// composite (borrowed from the owning grammar).
struct FlatAlt {
  bool is_atom = false;
  AtomKind atom = AtomKind::Nil;
  const Composite* comp = nullptr;
};

/// Transitively resolve `name` to its non-alias alternatives.  An alias
/// cycle or an undefined nonterminal contributes nothing (its language is
/// empty, so "for all alternatives" checks hold vacuously).
void expand(const Grammar& g, const std::string& name,
            std::set<std::string>& visiting, std::vector<FlatAlt>& out) {
  if (const auto kind = builtin_kind(name)) {
    out.push_back(FlatAlt{true, *kind, nullptr});
    return;
  }
  if (!visiting.insert(name).second) return;  // alias cycle
  const auto it = g.rules().find(name);
  if (it == g.rules().end()) {
    visiting.erase(name);
    return;
  }
  for (const auto& rule : it->second) {
    if (const auto* kind = std::get_if<AtomKind>(&rule.alternative)) {
      out.push_back(FlatAlt{true, *kind, nullptr});
    } else if (const auto* comp = std::get_if<Composite>(&rule.alternative)) {
      out.push_back(FlatAlt{false, AtomKind::Nil, comp});
    } else {
      expand(g, std::get<NonterminalRef>(rule.alternative).name, visiting,
             out);
    }
  }
  visiting.erase(name);
}

std::vector<FlatAlt> flat_alternatives(const Grammar& g,
                                       const std::string& name) {
  std::set<std::string> visiting;
  std::vector<FlatAlt> out;
  expand(g, name, visiting, out);
  return out;
}

/// Every graph matched by an impl pattern with multiplicity `a` is also
/// matched when the spec pattern declares multiplicity `b`.  Families
/// claim differently-shaped labels than plain patterns, so they only
/// refine each other.
bool multiplicity_admits(Multiplicity a, Multiplicity b) {
  if (a == Multiplicity::IndexedFamily || b == Multiplicity::IndexedFamily)
    return a == b;
  if (b == Multiplicity::Star) return true;
  if (b == Multiplicity::Optional) return a != Multiplicity::Star;
  return a == Multiplicity::One && b == Multiplicity::One;
}

using PairSet = std::set<std::pair<std::string, std::string>>;

bool pair_holds(const PairSet& holds, const std::string& a,
                const std::string& b) {
  return holds.contains({a, b});
}

/// Is every node matching impl alternative `fa` also matched by spec
/// alternative `fb`, assuming the child pairs in `holds`?
bool alt_covered(const FlatAlt& fa, const FlatAlt& fb, const PairSet& holds,
                 std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr && why->empty()) *why = std::move(reason);
    return false;
  };
  if (fa.is_atom && fb.is_atom) {
    if (atom_subsumed(fa.atom, fb.atom)) return true;
    return fail(std::string("atom ") + std::string(atom_kind_name(fa.atom)) +
                " is not subsumed by " + std::string(atom_kind_name(fb.atom)));
  }
  if (fa.is_atom) {
    // Leaf atom vs composite: the leaf has no arcs, so the composite must
    // accept an arcless node with that atom.
    if (!atom_subsumed(fa.atom, fb.comp->own_atom))
      return fail(std::string("leaf atom ") +
                  std::string(atom_kind_name(fa.atom)) + " violates @" +
                  std::string(atom_kind_name(fb.comp->own_atom)));
    for (const auto& pb : fb.comp->arcs) {
      if (pb.multiplicity == Multiplicity::One)
        return fail("leaf atom cannot supply mandatory arc '" + pb.label +
                    "'");
    }
    return true;
  }
  if (fb.is_atom) {
    // Composite vs leaf atom: only a closed, arcless composite is a leaf.
    if (fa.comp->open || !fa.comp->arcs.empty())
      return fail("composite with arcs cannot refine a leaf atom");
    return atom_subsumed(fa.comp->own_atom, fb.atom)
               ? true
               : fail(std::string("composite atom @") +
                      std::string(atom_kind_name(fa.comp->own_atom)) +
                      " is not subsumed by " +
                      std::string(atom_kind_name(fb.atom)));
  }

  const Composite& ca = *fa.comp;
  const Composite& cb = *fb.comp;
  if (!atom_subsumed(ca.own_atom, cb.own_atom))
    return fail(std::string("node atom @") +
                std::string(atom_kind_name(ca.own_atom)) +
                " is not subsumed by @" +
                std::string(atom_kind_name(cb.own_atom)));

  if (ca.open) {
    // An open impl composite admits arcs with arbitrary labels; those
    // must not be claimable by any spec pattern the impl does not pin.
    if (!cb.open) return fail("open composite cannot refine a closed one");
    for (const auto& pb : cb.arcs) {
      bool pinned = false;
      for (const auto& pa : ca.arcs) pinned = pinned || pa.label == pb.label;
      if (!pinned)
        return fail("open composite leaves spec arc '" + pb.label +
                    "' unconstrained");
    }
  }

  for (const auto& pa : ca.arcs) {
    const ArcPattern* pb = nullptr;
    for (const auto& cand : cb.arcs) {
      if (cand.label == pa.label) {
        pb = &cand;
        break;
      }
    }
    if (pb == nullptr) {
      if (!cb.open)
        return fail("arc '" + pa.label +
                    "' has no counterpart in the closed spec composite");
      // The arc rides the spec's `...`; make sure no spec family pattern
      // would claim its labels instead (and vice versa for families).
      for (const auto& cand : cb.arcs) {
        if (cand.multiplicity == Multiplicity::IndexedFamily &&
            pa.multiplicity != Multiplicity::IndexedFamily &&
            family_claims(cand.label, pa.label))
          return fail("arc '" + pa.label + "' collides with spec family '" +
                      cand.label + "[*]'");
        if (pa.multiplicity == Multiplicity::IndexedFamily &&
            cand.multiplicity != Multiplicity::IndexedFamily &&
            family_claims(pa.label, cand.label))
          return fail("family '" + pa.label + "[*]' collides with spec arc '" +
                      cand.label + "'");
      }
      continue;
    }
    if (!multiplicity_admits(pa.multiplicity, pb->multiplicity))
      return fail("arc '" + pa.label +
                  "' multiplicity is not admitted by the spec pattern");
    if (!pair_holds(holds, pa.nonterminal, pb->nonterminal))
      return fail("arc '" + pa.label + "' target " + pa.nonterminal +
                  " does not refine " + pb->nonterminal);
  }

  // Every mandatory spec arc must be guaranteed by the impl alternative.
  for (const auto& pb : cb.arcs) {
    if (pb.multiplicity != Multiplicity::One) continue;
    bool guaranteed = false;
    for (const auto& pa : ca.arcs)
      guaranteed = guaranteed || (pa.label == pb.label &&
                                  pa.multiplicity == Multiplicity::One);
    if (!guaranteed)
      return fail("mandatory spec arc '" + pb.label +
                  "' is not guaranteed by the impl composite");
  }
  return true;
}

/// One-step covering condition of the simulation: every impl alternative
/// of `a` is covered by some spec alternative of `b`.
bool one_step(const Grammar& impl, const Grammar& spec, const std::string& a,
              const std::string& b, const PairSet& holds, std::string* why) {
  const auto alts_a = flat_alternatives(impl, a);
  const auto alts_b = flat_alternatives(spec, b);
  for (const auto& fa : alts_a) {
    bool covered = false;
    std::string first_reason;
    for (const auto& fb : alts_b) {
      std::string reason;
      if (alt_covered(fa, fb, holds, why != nullptr ? &reason : nullptr)) {
        covered = true;
        break;
      }
      if (first_reason.empty()) first_reason = std::move(reason);
    }
    if (!covered) {
      if (why != nullptr) {
        *why = a + " is not simulated by " + b +
               (first_reason.empty()
                    ? " (no spec alternative applies)"
                    : ": " + first_reason);
      }
      return false;
    }
  }
  return true;
}

std::vector<std::string> side_names(const Grammar& g) {
  std::vector<std::string> names = g.nonterminals();
  for (const char* b : {"NIL", "INT", "REAL", "STRING", "ANY"})
    names.emplace_back(b);
  return names;
}

}  // namespace

// --- productivity ----------------------------------------------------------

std::set<std::string> productive_nonterminals(const Grammar& grammar) {
  std::set<std::string> productive;
  const auto alt_productive = [&](const Alternative& alt) {
    if (std::holds_alternative<AtomKind>(alt)) return true;
    if (const auto* ref = std::get_if<NonterminalRef>(&alt)) {
      return Grammar::is_builtin(ref->name) || productive.contains(ref->name);
    }
    const auto& comp = std::get<Composite>(alt);
    for (const auto& pat : comp.arcs) {
      if (pat.multiplicity != Multiplicity::One) continue;
      if (Grammar::is_builtin(pat.nonterminal)) continue;
      if (!productive.contains(pat.nonterminal)) return false;
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rules] : grammar.rules()) {
      if (productive.contains(name)) continue;
      for (const auto& rule : rules) {
        if (alt_productive(rule.alternative)) {
          productive.insert(name);
          changed = true;
          break;
        }
      }
    }
  }
  return productive;
}

bool empty_language(const Grammar& grammar, std::string_view nonterminal) {
  if (Grammar::is_builtin(nonterminal)) return false;
  return !productive_nonterminals(grammar).contains(std::string(nonterminal));
}

// --- witness generation ----------------------------------------------------

namespace {

constexpr std::size_t kInfiniteCost = std::numeric_limits<std::size_t>::max();

/// Cheapest-derivation node count per nonterminal (infinite = empty
/// language).  Builtins cost 1.
std::map<std::string, std::size_t, std::less<>> derivation_costs(
    const Grammar& g) {
  std::map<std::string, std::size_t, std::less<>> cost;
  for (const auto& [name, rules] : g.rules()) cost[name] = kInfiniteCost;
  const auto cost_of = [&](std::string_view name) -> std::size_t {
    if (Grammar::is_builtin(name)) return 1;
    const auto it = cost.find(name);
    return it == cost.end() ? kInfiniteCost : it->second;
  };
  const auto alt_cost = [&](const Alternative& alt) -> std::size_t {
    if (std::holds_alternative<AtomKind>(alt)) return 1;
    if (const auto* ref = std::get_if<NonterminalRef>(&alt))
      return cost_of(ref->name);
    std::size_t total = 1;
    for (const auto& pat : std::get<Composite>(alt).arcs) {
      if (pat.multiplicity != Multiplicity::One) continue;
      const std::size_t c = cost_of(pat.nonterminal);
      if (c == kInfiniteCost) return kInfiniteCost;
      total += c;
    }
    return total;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rules] : g.rules()) {
      std::size_t best = cost[name];
      for (const auto& rule : rules)
        best = std::min(best, alt_cost(rule.alternative));
      if (best < cost[name]) {
        cost[name] = best;
        changed = true;
      }
    }
  }
  return cost;
}

NodeId build_atom(HGraph& g, AtomKind kind) {
  switch (kind) {
    case AtomKind::Nil:
    case AtomKind::Any: return g.add_node();
    case AtomKind::Int: return g.add_int(0);
    case AtomKind::Real: return g.add_real(0.0);
    case AtomKind::String: return g.add_string("");
  }
  return g.add_node();
}

}  // namespace

WitnessResult witness_graph(const Grammar& grammar,
                            std::string_view nonterminal) {
  WitnessResult result;
  const auto costs = derivation_costs(grammar);
  const auto cost_of = [&](std::string_view name) -> std::size_t {
    if (Grammar::is_builtin(name)) return 1;
    const auto it = costs.find(name);
    return it == costs.end() ? kInfiniteCost : it->second;
  };
  if (cost_of(nonterminal) == kInfiniteCost) {
    result.error = "language of " + std::string(nonterminal) +
                   " is empty (no finite derivation)";
    return result;
  }

  // Recursive cheapest-alternative construction.  Termination: every
  // recursive call targets a nonterminal of strictly smaller cheapest
  // cost (mandatory arcs of the chosen minimal alternative).
  const std::function<NodeId(std::string_view)> build =
      [&](std::string_view name) -> NodeId {
    if (const auto kind = builtin_kind(name))
      return build_atom(result.graph, *kind);
    const auto it = grammar.rules().find(name);
    const std::size_t budget = cost_of(name);
    const Alternative* chosen = nullptr;
    for (const auto& rule : it->second) {
      std::size_t c = kInfiniteCost;
      if (std::holds_alternative<AtomKind>(rule.alternative)) {
        c = 1;
      } else if (const auto* ref =
                     std::get_if<NonterminalRef>(&rule.alternative)) {
        c = cost_of(ref->name);
      } else {
        c = 1;
        for (const auto& pat : std::get<Composite>(rule.alternative).arcs) {
          if (pat.multiplicity != Multiplicity::One) continue;
          const std::size_t pc = cost_of(pat.nonterminal);
          c = pc == kInfiniteCost ? kInfiniteCost
                                  : (c == kInfiniteCost ? c : c + pc);
        }
      }
      if (c <= budget) {
        chosen = &rule.alternative;
        break;
      }
    }
    if (const auto* kind = std::get_if<AtomKind>(chosen))
      return build_atom(result.graph, *kind);
    if (const auto* ref = std::get_if<NonterminalRef>(chosen))
      return build(ref->name);
    const auto& comp = std::get<Composite>(*chosen);
    const NodeId node = build_atom(result.graph, comp.own_atom);
    for (const auto& pat : comp.arcs) {
      if (pat.multiplicity != Multiplicity::One) continue;
      result.graph.add_arc(node, pat.label, build(pat.nonterminal));
    }
    return node;
  };

  result.root = build(nonterminal);
  result.ok = true;
  return result;
}

// --- simulation / refinement -----------------------------------------------

SimulationRelation::SimulationRelation(const Grammar& impl,
                                       const Grammar& spec)
    : impl_(impl), spec_(spec) {
  const auto impl_names = side_names(impl);
  const auto spec_names = side_names(spec);
  for (const auto& a : impl_names)
    for (const auto& b : spec_names) holds_.insert({a, b});

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = holds_.begin(); it != holds_.end();) {
      ++pairs_checked_;
      if (!one_step(impl_, spec_, it->first, it->second, holds_, nullptr)) {
        it = holds_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

bool SimulationRelation::holds(std::string_view impl_nt,
                               std::string_view spec_nt) const {
  return holds_.contains({std::string(impl_nt), std::string(spec_nt)});
}

std::string SimulationRelation::explain(std::string_view impl_nt,
                                        std::string_view spec_nt) const {
  if (holds(impl_nt, spec_nt)) return {};
  std::string why;
  one_step(impl_, spec_, std::string(impl_nt), std::string(spec_nt), holds_,
           &why);
  if (why.empty()) {
    why = std::string(impl_nt) + " is not simulated by " +
          std::string(spec_nt);
  }
  return why;
}

RefinementResult refines(const Grammar& impl, std::string_view impl_root,
                         const Grammar& spec, std::string_view spec_root) {
  SimulationRelation sim(impl, spec);
  RefinementResult result;
  result.pairs_checked = sim.pairs_checked();
  if (!sim.holds(impl_root, spec_root)) {
    result.ok = false;
    result.counterexample = sim.explain(impl_root, spec_root);
  }
  return result;
}

}  // namespace fem2::hgraph
