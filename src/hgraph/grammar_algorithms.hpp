// Language-level algorithms on H-graph grammars (the static half of
// fem2_analyze --verify):
//
//   * productivity / emptiness — which nonterminals derive at least one
//     finite H-graph (least fixpoint over the productions);
//   * witness generation — a minimal finite H-graph in the language of a
//     productive nonterminal, built from the cheapest derivation (the
//     witness is checked back against Grammar::conforms, so generator and
//     recognizer validate each other);
//   * refinement — a conservative, simulation-based sublanguage test
//     refines(G_impl, A, G_spec, B): every H-graph in L_impl(A) is also in
//     L_spec(B).  Sound but incomplete: a "no" may be spurious when the
//     spec only admits the impl shapes via pattern combinations the
//     simulation does not explore; a "yes" is always trustworthy.
#pragma once

#include <set>
#include <string>
#include <string_view>

#include "hgraph/grammar.hpp"

namespace fem2::hgraph {

/// Nonterminals that derive at least one finite H-graph.  Builtin atom
/// nonterminals are always productive and are not listed.
std::set<std::string> productive_nonterminals(const Grammar& grammar);

/// True when the nonterminal derives no finite object (undefined
/// nonterminals count as empty).
bool empty_language(const Grammar& grammar, std::string_view nonterminal);

struct WitnessResult {
  bool ok = false;
  HGraph graph;
  NodeId root;
  std::string error;  ///< why no witness exists (empty language)

  explicit operator bool() const { return ok; }
};

/// A minimal finite H-graph in the language of `nonterminal`, derived by
/// always choosing the cheapest alternative and omitting every optional
/// arc.  Fails iff the language is empty.
WitnessResult witness_graph(const Grammar& grammar,
                            std::string_view nonterminal);

/// The conservative simulation relation between two grammars: holds(a, b)
/// implies L_impl(a) is a subset of L_spec(b).  Builtin atom nonterminals
/// participate on both sides.  Computed once as a greatest fixpoint
/// (start from all pairs, remove pairs that fail the one-step covering
/// condition until stable), then queried in O(log n).
class SimulationRelation {
 public:
  /// Compute the full relation.  `impl` and `spec` may be the same
  /// grammar (the self-relation is what the transform-rule checker uses
  /// to decide nonterminal subtyping).
  SimulationRelation(const Grammar& impl, const Grammar& spec);

  bool holds(std::string_view impl_nt, std::string_view spec_nt) const;

  /// One-sentence reason why holds(a, b) fails; empty when it holds.
  std::string explain(std::string_view impl_nt,
                      std::string_view spec_nt) const;

  /// Pairs examined by the fixpoint (bench / stats).
  std::size_t pairs_checked() const { return pairs_checked_; }

 private:
  const Grammar& impl_;
  const Grammar& spec_;
  std::set<std::pair<std::string, std::string>> holds_;
  std::size_t pairs_checked_ = 0;
};

struct RefinementResult {
  bool ok = true;
  std::string counterexample;  ///< first failing pair, with the reason
  std::size_t pairs_checked = 0;

  explicit operator bool() const { return ok; }
};

/// Does every H-graph derivable from `impl_root` in `impl` conform to
/// `spec_root` in `spec`?  Conservative (see SimulationRelation).
RefinementResult refines(const Grammar& impl, std::string_view impl_root,
                         const Grammar& spec, std::string_view spec_root);

}  // namespace fem2::hgraph
