// H-graph grammars: "a type of BNF grammar in which the 'language' defined
// is a set of H-graphs representing a class of data objects" (Pratt 1983).
//
// A grammar maps nonterminal names to alternatives.  Each alternative is
// either an atom constraint (NIL / INT / REAL / STRING / ANY) or a composite
// pattern constraining the node's outgoing arcs:
//
//   structure ::= { name: STRING, grid: grid, loadset[*]: loadset }
//   list      ::= NIL | { @INT, next?: list }
//
// Arc multiplicities:
//   label:  nt    exactly one arc `label`
//   label?: nt    zero or one arc `label`
//   label*: nt    any number of arcs `label`
//   label[*]: nt  an indexed family label[0], label[1], ..., label[n-1]
// `@KIND` constrains the composite node's own atom (default NIL); `...`
// makes the composite open (extra arcs permitted).
//
// Conformance is coinductive (greatest fixpoint): a node revisited while
// its own check is in progress is assumed to conform, so cyclic data
// objects (rings, doubly linked structures) check correctly.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "hgraph/hgraph.hpp"

namespace fem2::hgraph {

enum class AtomKind { Nil, Int, Real, String, Any };

std::string_view atom_kind_name(AtomKind k);

/// True if the node's atom satisfies the kind (REAL accepts INT).
bool atom_matches(const HGraph& g, NodeId node, AtomKind kind);

/// Position in the grammar source text (1-based; line 0 = unknown, e.g. a
/// grammar assembled programmatically rather than parsed).
struct SourceLoc {
  std::size_t line = 0;
  std::size_t column = 0;

  bool known() const { return line != 0; }
  /// "line 3, col 14", or "<unknown>" for a default-constructed loc.
  std::string to_string() const;
};

enum class Multiplicity { One, Optional, Star, IndexedFamily };

struct ArcPattern {
  std::string label;
  Multiplicity multiplicity = Multiplicity::One;
  std::string nonterminal;
  SourceLoc loc;
};

struct Composite {
  AtomKind own_atom = AtomKind::Nil;  ///< constraint on the node's own value
  std::vector<ArcPattern> arcs;
  bool open = false;  ///< extra arcs allowed
};

/// Alternative that simply defers to another nonterminal (an alias).
struct NonterminalRef {
  std::string name;
};

/// One alternative of a production.
using Alternative = std::variant<AtomKind, Composite, NonterminalRef>;

/// An alternative together with where it was defined in the grammar source.
struct Rule {
  Alternative alternative;
  SourceLoc loc;
};

struct ConformanceResult {
  bool ok = true;
  std::string error;  ///< first failure, with access-path context

  explicit operator bool() const { return ok; }
};

class Grammar {
 public:
  using RuleMap = std::map<std::string, std::vector<Rule>, std::less<>>;

  Grammar();

  /// Add an alternative for `nonterminal` (creating the rule if needed).
  /// `loc` records where the alternative appears in the grammar source.
  void add_alternative(std::string nonterminal, Alternative alt,
                       SourceLoc loc = {});

  bool has_rule(std::string_view nonterminal) const;
  std::vector<std::string> nonterminals() const;

  /// True for the builtin atom nonterminals NIL/INT/REAL/STRING/ANY.
  static bool is_builtin(std::string_view nonterminal);

  /// Full production table, for introspection (linting, tooling).
  const RuleMap& rules() const { return rules_; }

  /// Does the subgraph rooted at `node` belong to the language of
  /// `nonterminal`?  On failure, `error` holds the first mismatch found.
  ConformanceResult conforms(const HGraph& g, NodeId node,
                             std::string_view nonterminal) const;

  /// Validate the grammar itself: every referenced nonterminal must be
  /// defined (builtin atom kinds count as defined).  Diagnostics carry the
  /// source location of the offending alternative or arc pattern.
  ConformanceResult validate() const;

 private:
  struct CheckState;
  bool check(const HGraph& g, NodeId node, const std::string& nonterminal,
             CheckState& state) const;
  bool check_alternative(const HGraph& g, NodeId node, const Alternative& alt,
                         CheckState& state) const;

  RuleMap rules_;
};

}  // namespace fem2::hgraph
