#include "hgraph/hgraph.hpp"

#include <map>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace fem2::hgraph {

NodeId HGraph::add_node() { return add_node(Atom{}); }

NodeId HGraph::add_node(Atom value) {
  FEM2_CHECK_MSG(nodes_.size() < NodeId::kInvalidIndex, "H-graph full");
  nodes_.push_back(Node{std::move(value), {}});
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void HGraph::add_arc(NodeId from, std::string label, NodeId to) {
  FEM2_CHECK(contains(from) && contains(to));
  node(from).arcs.push_back(Arc{std::move(label), to});
}

bool HGraph::remove_arc(NodeId from, std::string_view label) {
  auto& arcs = node(from).arcs;
  for (auto it = arcs.begin(); it != arcs.end(); ++it) {
    if (it->label == label) {
      arcs.erase(it);
      return true;
    }
  }
  return false;
}

void HGraph::set_arc(NodeId from, std::string label, NodeId to) {
  FEM2_CHECK(contains(from) && contains(to));
  for (auto& arc : node(from).arcs) {
    if (arc.label == label) {
      arc.target = to;
      return;
    }
  }
  add_arc(from, std::move(label), to);
}

void HGraph::set_value(NodeId n, Atom value) {
  node(n).value = std::move(value);
}

const Atom& HGraph::value(NodeId n) const { return node(n).value; }

bool HGraph::is_empty(NodeId n) const {
  return std::holds_alternative<std::monostate>(node(n).value);
}

std::optional<std::int64_t> HGraph::int_value(NodeId n) const {
  if (const auto* v = std::get_if<std::int64_t>(&node(n).value)) return *v;
  return std::nullopt;
}

std::optional<double> HGraph::real_value(NodeId n) const {
  if (const auto* v = std::get_if<double>(&node(n).value)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&node(n).value))
    return static_cast<double>(*v);
  return std::nullopt;
}

std::optional<std::string_view> HGraph::string_value(NodeId n) const {
  if (const auto* v = std::get_if<std::string>(&node(n).value))
    return std::string_view(*v);
  return std::nullopt;
}

const std::vector<Arc>& HGraph::arcs(NodeId n) const { return node(n).arcs; }

NodeId HGraph::follow(NodeId from, std::string_view label) const {
  for (const auto& arc : node(from).arcs)
    if (arc.label == label) return arc.target;
  return NodeId{};
}

NodeId HGraph::follow_path(NodeId from,
                           std::initializer_list<std::string_view> path) const {
  NodeId cur = from;
  for (auto label : path) {
    if (!cur.valid()) return NodeId{};
    cur = follow(cur, label);
  }
  return cur;
}

std::vector<NodeId> HGraph::follow_all(NodeId from,
                                       std::string_view label) const {
  std::vector<NodeId> out;
  for (const auto& arc : node(from).arcs)
    if (arc.label == label) out.push_back(arc.target);
  return out;
}

std::size_t HGraph::arc_count(NodeId from, std::string_view label) const {
  std::size_t n = 0;
  for (const auto& arc : node(from).arcs)
    if (arc.label == label) ++n;
  return n;
}

std::vector<NodeId> HGraph::reachable(NodeId root) const {
  FEM2_CHECK(contains(root));
  std::vector<NodeId> order;
  std::set<std::uint32_t> seen;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.index).second) continue;
    order.push_back(cur);
    const auto& as = node(cur).arcs;
    // Push in reverse so traversal visits arcs in insertion order.
    for (auto it = as.rbegin(); it != as.rend(); ++it)
      stack.push_back(it->target);
  }
  return order;
}

bool HGraph::structurally_equal(const HGraph& ga, NodeId a, const HGraph& gb,
                                NodeId b) {
  // Parallel DFS building a bijective correspondence; a mismatch on revisit
  // (different sharing or cycle structure) fails.
  std::map<std::uint32_t, std::uint32_t> forward;
  std::map<std::uint32_t, std::uint32_t> backward;
  std::vector<std::pair<NodeId, NodeId>> stack{{a, b}};
  while (!stack.empty()) {
    auto [na, nb] = stack.back();
    stack.pop_back();
    auto [it, inserted] = forward.emplace(na.index, nb.index);
    if (!inserted) {
      if (it->second != nb.index) return false;
      continue;
    }
    auto [rit, rinserted] = backward.emplace(nb.index, na.index);
    if (!rinserted && rit->second != na.index) return false;
    if (ga.value(na) != gb.value(nb)) return false;
    const auto& arcs_a = ga.arcs(na);
    const auto& arcs_b = gb.arcs(nb);
    if (arcs_a.size() != arcs_b.size()) return false;
    for (std::size_t i = 0; i < arcs_a.size(); ++i) {
      if (arcs_a[i].label != arcs_b[i].label) return false;
      stack.emplace_back(arcs_a[i].target, arcs_b[i].target);
    }
  }
  return true;
}

std::string atom_to_string(const Atom& a) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "nil"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      std::ostringstream os;
      os << v;
      return os.str();
    }
    std::string operator()(const std::string& v) const {
      return "\"" + v + "\"";
    }
  };
  return std::visit(Visitor{}, a);
}

std::string HGraph::to_string(NodeId root) const {
  // Stable node numbering by reachability order.
  const auto order = reachable(root);
  std::map<std::uint32_t, std::size_t> number;
  for (std::size_t i = 0; i < order.size(); ++i)
    number[order[i].index] = i;

  std::ostringstream os;
  for (const NodeId n : order) {
    os << "n" << number[n.index] << " = " << atom_to_string(value(n));
    for (const auto& arc : node(n).arcs)
      os << " ." << arc.label << "->n" << number[arc.target.index];
    os << "\n";
  }
  return os.str();
}

std::string HGraph::to_dot(NodeId root, std::string_view graph_name) const {
  const auto order = reachable(root);
  std::map<std::uint32_t, std::size_t> number;
  for (std::size_t i = 0; i < order.size(); ++i)
    number[order[i].index] = i;

  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  for (const NodeId n : order) {
    os << "  n" << number[n.index] << " [label=\""
       << atom_to_string(value(n)) << "\"];\n";
    for (const auto& arc : node(n).arcs)
      os << "  n" << number[n.index] << " -> n" << number[arc.target.index]
         << " [label=\"" << arc.label << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::size_t HGraph::storage_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const auto& n : nodes_) {
    bytes += n.arcs.capacity() * sizeof(Arc);
    for (const auto& arc : n.arcs) bytes += arc.label.size();
    if (const auto* s = std::get_if<std::string>(&n.value))
      bytes += s->size();
  }
  return bytes;
}

const HGraph::Node& HGraph::node(NodeId id) const {
  FEM2_CHECK_MSG(contains(id), "invalid H-graph node id");
  return nodes_[id.index];
}

HGraph::Node& HGraph::node(NodeId id) {
  FEM2_CHECK_MSG(contains(id), "invalid H-graph node id");
  return nodes_[id.index];
}

}  // namespace fem2::hgraph
