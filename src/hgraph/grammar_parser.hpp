// Parser for the textual H-graph grammar notation (see grammar.hpp):
//
//   # structural model, application user's VM
//   structure ::= { name: STRING, grid: grid, loadset[*]: loadset }
//   grid      ::= { nx: INT, ny: INT, node[*]: gridnode }
//   gridnode  ::= { x: REAL, y: REAL }
//   scalar    ::= INT | REAL
//   list      ::= NIL | { @INT, next?: list }
//
// Rules may span multiple lines; `#` starts a comment to end of line.
#pragma once

#include <string_view>

#include "hgraph/grammar.hpp"
#include "support/check.hpp"

namespace fem2::hgraph {

/// Thrown on malformed grammar text; message includes line and column.
class GrammarParseError : public support::Error {
 public:
  using support::Error::Error;
};

/// Parse a complete grammar.  Also runs Grammar::validate() and throws
/// GrammarParseError if any referenced nonterminal is undefined.
Grammar parse_grammar(std::string_view text);

}  // namespace fem2::hgraph
