#include "hgraph/transform.hpp"

namespace fem2::hgraph {

NodeId Invoker::call(std::string_view transform, NodeId argument) const {
  ++depth_;
  struct DepthGuard {
    std::size_t& d;
    ~DepthGuard() { --d; }
  } guard{depth_};
  auto* self = const_cast<Invoker*>(this);
  return registry_.apply_impl(transform, *self, graph_, argument);
}

TransformRegistry::TransformRegistry(Grammar grammar)
    : grammar_(std::move(grammar)) {}

void TransformRegistry::register_transform(std::string name,
                                           TransformSignature signature,
                                           TransformFn fn) {
  FEM2_CHECK_MSG(fn != nullptr, "null transform function");
  if (!signature.input_nonterminal.empty()) {
    FEM2_CHECK_MSG(grammar_.has_rule(signature.input_nonterminal),
                   "transform input nonterminal not in grammar");
  }
  if (!signature.output_nonterminal.empty()) {
    FEM2_CHECK_MSG(grammar_.has_rule(signature.output_nonterminal),
                   "transform output nonterminal not in grammar");
  }
  const auto [it, inserted] = transforms_.emplace(
      std::move(name), std::make_pair(std::move(signature), std::move(fn)));
  FEM2_CHECK_MSG(inserted, "duplicate transform name");
}

bool TransformRegistry::has_transform(std::string_view name) const {
  return transforms_.find(name) != transforms_.end();
}

const TransformSignature* TransformRegistry::signature(
    std::string_view name) const {
  const auto it = transforms_.find(name);
  return it == transforms_.end() ? nullptr : &it->second.first;
}

std::vector<std::string> TransformRegistry::transform_names() const {
  std::vector<std::string> out;
  out.reserve(transforms_.size());
  for (const auto& [name, t] : transforms_) out.push_back(name);
  return out;
}

NodeId TransformRegistry::apply(std::string_view name, HGraph& graph,
                                NodeId argument) const {
  Invoker invoker(*this, graph);
  return apply_impl(name, invoker, graph, argument);
}

NodeId TransformRegistry::apply_impl(std::string_view name, Invoker& invoker,
                                     HGraph& graph, NodeId argument) const {
  const auto it = transforms_.find(name);
  if (it == transforms_.end()) {
    throw TransformError("unknown H-graph transform: " + std::string(name));
  }
  const auto& [signature, fn] = it->second;

  if (!signature.input_nonterminal.empty()) {
    const auto pre = grammar_.conforms(graph, argument,
                                       signature.input_nonterminal);
    if (!pre) {
      throw TransformError("transform '" + std::string(name) +
                           "' input violates grammar: " + pre.error);
    }
  }

  ++applications_;
  const NodeId result = fn(invoker, graph, argument);

  if (!signature.output_nonterminal.empty()) {
    if (!result.valid()) {
      throw TransformError("transform '" + std::string(name) +
                           "' returned no node but declares output " +
                           signature.output_nonterminal);
    }
    const auto post = grammar_.conforms(graph, result,
                                        signature.output_nonterminal);
    if (!post) {
      throw TransformError("transform '" + std::string(name) +
                           "' output violates grammar: " + post.error);
    }
  }
  return result;
}

}  // namespace fem2::hgraph
