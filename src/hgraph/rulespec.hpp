// Declarative metadata describing what a transform rule does to the
// H-graph, abstractly: which arcs it reads, which nodes it builds, which
// indexed families it extends, which peer transforms it invokes.
//
// A RuleSpec is the machine-checkable contract of a C++ transform body
// (transform.hpp).  The static verifier (analyze/verify.hpp) abstractly
// interprets the spec over grammar nonterminals and proves that the rule,
// applied to any grammar-conforming argument, yields a grammar-conforming
// result — type preservation at lint time, instead of a TransformError in
// production.  The spec is an abstraction the verifier trusts: runtime
// pre/post conformance checks remain in place to catch a body that drifts
// from its declared effect.
#pragma once

#include <string>
#include <vector>

#include "hgraph/grammar.hpp"

namespace fem2::hgraph {

/// One abstract operation.  Variables are rule-local names; `arg` is bound
/// on entry to the transform's input nonterminal.
struct RuleOp {
  enum class Kind {
    Let,           ///< var := follow(src, label) — label must be a
                   ///< mandatory (multiplicity-one) arc of src's type
    PickFamily,    ///< var := an arbitrary member of src's family `label`
    Fresh,         ///< var := new node, no atom, no arcs (under construction)
    FreshAtom,     ///< var := new leaf atom node of kind `atom`
    AddArc,        ///< add arc `label` from dst (under construction) to src
    AppendFamily,  ///< append src as the next member of dst's family `label`
    Call,          ///< var := invoke peer transform `name` with argument src
    Return,        ///< the rule's result is src
  };

  Kind kind = Kind::Fresh;
  std::string var;    ///< variable bound by Let/PickFamily/Fresh/FreshAtom/Call
  std::string src;    ///< source variable
  std::string dst;    ///< node being extended (AddArc/AppendFamily)
  std::string label;  ///< arc label or family base name
  std::string name;   ///< callee transform (Call)
  AtomKind atom = AtomKind::Nil;  ///< FreshAtom kind
};

inline RuleOp op_let(std::string var, std::string src, std::string label) {
  return {RuleOp::Kind::Let, std::move(var), std::move(src), {},
          std::move(label), {}, AtomKind::Nil};
}
inline RuleOp op_pick(std::string var, std::string src, std::string base) {
  return {RuleOp::Kind::PickFamily, std::move(var), std::move(src), {},
          std::move(base), {}, AtomKind::Nil};
}
inline RuleOp op_fresh(std::string var) {
  return {RuleOp::Kind::Fresh, std::move(var), {}, {}, {}, {},
          AtomKind::Nil};
}
inline RuleOp op_atom(std::string var, AtomKind kind) {
  return {RuleOp::Kind::FreshAtom, std::move(var), {}, {}, {}, {}, kind};
}
inline RuleOp op_add_arc(std::string dst, std::string label,
                         std::string src) {
  return {RuleOp::Kind::AddArc, {}, std::move(src), std::move(dst),
          std::move(label), {}, AtomKind::Nil};
}
inline RuleOp op_append(std::string dst, std::string base, std::string src) {
  return {RuleOp::Kind::AppendFamily, {}, std::move(src), std::move(dst),
          std::move(base), {}, AtomKind::Nil};
}
inline RuleOp op_call(std::string var, std::string callee, std::string arg) {
  return {RuleOp::Kind::Call, std::move(var), std::move(arg), {}, {},
          std::move(callee), AtomKind::Nil};
}
inline RuleOp op_return(std::string src) {
  return {RuleOp::Kind::Return, {}, std::move(src), {}, {}, {},
          AtomKind::Nil};
}

/// One abstract execution path (straight-line op sequence ending in
/// Return).  Loops collapse to a single iteration: appending N conforming
/// members to a family preserves conformance iff appending one does.
struct RulePath {
  std::vector<RuleOp> ops;
};

/// The rule's declared abstract effect.  A rule with control-flow splits
/// (e.g. find-or-create) lists one path per branch; every path must
/// preserve the grammar independently.  Empty paths = no static spec
/// (the verifier reports the rule as unchecked).
struct RuleSpec {
  std::vector<RulePath> paths;
  /// Where the rule is defined (file line of the registration site).
  SourceLoc loc;

  bool empty() const { return paths.empty(); }
};

}  // namespace fem2::hgraph
