// H-graph transforms: "functions defining transformations on the H-graph
// models of data objects.  H-graph transforms may invoke each other in the
// usual manner of subprogram calling hierarchies" (Pratt 1983).
//
// A transform is a named function over (HGraph, argument node) returning a
// result node.  Transforms are registered in a TransformRegistry together
// with the grammar nonterminals that its input and output must conform to;
// apply() checks conformance before and after execution, so a registered
// transform is a *checked* formal operation.  Transforms receive an
// Invoker through which they call other registered transforms, giving the
// subprogram-call hierarchy of the paper.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "hgraph/grammar.hpp"
#include "hgraph/hgraph.hpp"
#include "hgraph/rulespec.hpp"
#include "support/check.hpp"

namespace fem2::hgraph {

class TransformRegistry;

/// Thrown when a transform's input or output violates its declared grammar
/// nonterminal, or when an unknown transform is invoked.
class TransformError : public support::Error {
 public:
  using support::Error::Error;
};

/// Handed to a transform body so it can invoke peer transforms (checked).
class Invoker {
 public:
  Invoker(const TransformRegistry& registry, HGraph& graph)
      : registry_(registry), graph_(graph) {}

  NodeId call(std::string_view transform, NodeId argument) const;
  HGraph& graph() const { return graph_; }

  /// Depth of the current transform call stack (for tests/metrics).
  std::size_t call_depth() const { return depth_; }

 private:
  friend class TransformRegistry;
  const TransformRegistry& registry_;
  HGraph& graph_;
  mutable std::size_t depth_ = 0;
};

using TransformFn = std::function<NodeId(Invoker&, HGraph&, NodeId)>;

struct TransformSignature {
  std::string input_nonterminal;   ///< empty = unchecked
  std::string output_nonterminal;  ///< empty = unchecked
  /// Declarative abstract effect, consumed by the static type-preservation
  /// verifier (analyze/verify.hpp).  Empty = statically unchecked (the
  /// runtime pre/post conformance checks still apply).
  RuleSpec spec;
};

class TransformRegistry {
 public:
  explicit TransformRegistry(Grammar grammar);

  void register_transform(std::string name, TransformSignature signature,
                          TransformFn fn);

  bool has_transform(std::string_view name) const;
  std::vector<std::string> transform_names() const;

  /// Declared signature (with rule spec), or nullptr if unregistered.
  const TransformSignature* signature(std::string_view name) const;

  /// Apply a transform with pre/post conformance checking.
  NodeId apply(std::string_view name, HGraph& graph, NodeId argument) const;

  const Grammar& grammar() const { return grammar_; }

  /// Total checked applications since construction (metrics).
  std::uint64_t applications() const { return applications_; }

 private:
  friend class Invoker;
  NodeId apply_impl(std::string_view name, Invoker& invoker, HGraph& graph,
                    NodeId argument) const;

  Grammar grammar_;
  std::map<std::string, std::pair<TransformSignature, TransformFn>,
           std::less<>>
      transforms_;
  mutable std::uint64_t applications_ = 0;
};

}  // namespace fem2::hgraph
