#include "hgraph/grammar_parser.hpp"

#include <cctype>
#include <string>
#include <vector>

namespace fem2::hgraph {

namespace {

enum class TokKind {
  Ident,     // letters, digits, underscore (starting with letter or _)
  Defines,   // ::=
  LBrace,    // {
  RBrace,    // }
  Comma,     // ,
  Colon,     // :
  Pipe,      // |
  Question,  // ?
  Star,      // *
  IndexedStar,  // [*]
  At,        // @
  Ellipsis,  // ...
  End,
};

struct Token {
  TokKind kind;
  std::string text;
  SourceLoc loc;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> lex() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      const SourceLoc loc = here();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_'))
          ++pos_;
        out.push_back({TokKind::Ident,
                       std::string(text_.substr(start, pos_ - start)), loc});
        continue;
      }
      if (text_.substr(pos_).starts_with("::=")) {
        out.push_back({TokKind::Defines, "::=", loc});
        pos_ += 3;
        continue;
      }
      if (text_.substr(pos_).starts_with("[*]")) {
        out.push_back({TokKind::IndexedStar, "[*]", loc});
        pos_ += 3;
        continue;
      }
      if (text_.substr(pos_).starts_with("...")) {
        out.push_back({TokKind::Ellipsis, "...", loc});
        pos_ += 3;
        continue;
      }
      TokKind kind;
      switch (c) {
        case '{': kind = TokKind::LBrace; break;
        case '}': kind = TokKind::RBrace; break;
        case ',': kind = TokKind::Comma; break;
        case ':': kind = TokKind::Colon; break;
        case '|': kind = TokKind::Pipe; break;
        case '?': kind = TokKind::Question; break;
        case '*': kind = TokKind::Star; break;
        case '@': kind = TokKind::At; break;
        default:
          throw GrammarParseError("grammar lex error: unexpected '" +
                                  std::string(1, c) + "' at " +
                                  loc.to_string());
      }
      out.push_back({kind, std::string(1, c), loc});
      ++pos_;
    }
    out.push_back({TokKind::End, "", here()});
    return out;
  }

 private:
  SourceLoc here() const { return {line_, pos_ - line_start_ + 1}; }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

std::optional<AtomKind> atom_kind_from_name(std::string_view name) {
  if (name == "NIL") return AtomKind::Nil;
  if (name == "INT") return AtomKind::Int;
  if (name == "REAL") return AtomKind::Real;
  if (name == "STRING") return AtomKind::String;
  if (name == "ANY") return AtomKind::Any;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Grammar parse() {
    Grammar g;
    while (peek().kind != TokKind::End) {
      const Token name = expect(TokKind::Ident, "rule name");
      expect(TokKind::Defines, "'::='");
      while (true) {
        const SourceLoc alt_loc = peek().loc;
        g.add_alternative(name.text, parse_alternative(), alt_loc);
        if (peek().kind != TokKind::Pipe) break;
        advance();
      }
    }
    if (const auto v = g.validate(); !v) throw GrammarParseError(v.error);
    return g;
  }

 private:
  Alternative parse_alternative() {
    if (peek().kind == TokKind::LBrace) return parse_composite();
    const Token name = expect(TokKind::Ident, "atom kind or nonterminal");
    if (const auto kind = atom_kind_from_name(name.text)) return *kind;
    return NonterminalRef{name.text};
  }

  Composite parse_composite() {
    expect(TokKind::LBrace, "'{'");
    Composite comp;
    bool first = true;
    while (peek().kind != TokKind::RBrace) {
      if (!first) expect(TokKind::Comma, "','");
      first = false;
      if (peek().kind == TokKind::Ellipsis) {
        advance();
        comp.open = true;
        continue;
      }
      if (peek().kind == TokKind::At) {
        advance();
        const Token kind = expect(TokKind::Ident, "atom kind after '@'");
        const auto k = atom_kind_from_name(kind.text);
        if (!k) {
          throw GrammarParseError("grammar parse error: '" + kind.text +
                                  "' is not an atom kind at " +
                                  kind.loc.to_string());
        }
        comp.own_atom = *k;
        continue;
      }
      ArcPattern pat;
      const Token label = expect(TokKind::Ident, "arc label");
      for (const auto& prior : comp.arcs) {
        if (prior.label == label.text) {
          throw GrammarParseError(
              "grammar parse error: duplicate arc label '" + label.text +
              "' in composite at " + label.loc.to_string() +
              " (first declared at " + prior.loc.to_string() + ")");
        }
      }
      pat.label = label.text;
      pat.loc = label.loc;
      switch (peek().kind) {
        case TokKind::Question:
          pat.multiplicity = Multiplicity::Optional;
          advance();
          break;
        case TokKind::Star:
          pat.multiplicity = Multiplicity::Star;
          advance();
          break;
        case TokKind::IndexedStar:
          pat.multiplicity = Multiplicity::IndexedFamily;
          advance();
          break;
        default:
          pat.multiplicity = Multiplicity::One;
      }
      expect(TokKind::Colon, "':'");
      pat.nonterminal = expect(TokKind::Ident, "arc target nonterminal").text;
      comp.arcs.push_back(std::move(pat));
    }
    expect(TokKind::RBrace, "'}'");
    return comp;
  }

  const Token& peek() const { return tokens_[pos_]; }
  void advance() { ++pos_; }

  Token expect(TokKind kind, std::string_view what) {
    if (peek().kind != kind) {
      throw GrammarParseError("grammar parse error: expected " +
                              std::string(what) + ", found '" + peek().text +
                              "' at " + peek().loc.to_string());
    }
    Token t = peek();
    advance();
    return t;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Grammar parse_grammar(std::string_view text) {
  return Parser(Lexer(text).lex()).parse();
}

}  // namespace fem2::hgraph
