// H-graphs, after Pratt's H-graph semantics (the formal-specification
// machinery of the FEM-2 design method).
//
// An H-graph is a hierarchy of directed graphs: nodes represent abstract
// storage locations, arcs represent access paths.  In this rendering a node
// carries an optional atomic value (integer, real, or string) and a set of
// labeled outgoing arcs; the graph "contained in" a node is the subgraph
// reachable from it.  Classes of H-graphs (data types) are defined by
// H-graph grammars (grammar.hpp); operations are H-graph transforms
// (transform.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace fem2::hgraph {

/// Handle to a node (abstract storage location) within one HGraph.
struct NodeId {
  std::uint32_t index = kInvalidIndex;

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  bool valid() const { return index != kInvalidIndex; }
  friend bool operator==(NodeId a, NodeId b) { return a.index == b.index; }
  friend auto operator<=>(NodeId a, NodeId b) { return a.index <=> b.index; }
};

/// Atomic node values.  monostate = an empty location.
using Atom = std::variant<std::monostate, std::int64_t, double, std::string>;

/// One labeled access path.
struct Arc {
  std::string label;
  NodeId target;
};

class HGraph {
 public:
  HGraph() = default;

  // --- construction -------------------------------------------------------
  NodeId add_node();
  NodeId add_node(Atom value);
  NodeId add_int(std::int64_t v) { return add_node(Atom{v}); }
  NodeId add_real(double v) { return add_node(Atom{v}); }
  NodeId add_string(std::string v) { return add_node(Atom{std::move(v)}); }

  /// Add arc `from --label--> to`.  Multiple arcs with the same label from
  /// one node are allowed (the grammar layer constrains multiplicity).
  void add_arc(NodeId from, std::string label, NodeId to);

  /// Remove the first arc with this label (returns false if absent).
  bool remove_arc(NodeId from, std::string_view label);

  /// Replace the target of the (unique) arc with this label, adding the arc
  /// if it does not exist.
  void set_arc(NodeId from, std::string label, NodeId to);

  void set_value(NodeId node, Atom value);

  // --- queries ------------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  bool contains(NodeId id) const { return id.index < nodes_.size(); }

  const Atom& value(NodeId node) const;
  bool is_empty(NodeId node) const;
  std::optional<std::int64_t> int_value(NodeId node) const;
  std::optional<double> real_value(NodeId node) const;   ///< accepts ints too
  std::optional<std::string_view> string_value(NodeId node) const;

  const std::vector<Arc>& arcs(NodeId node) const;

  /// Target of the first arc with this label, or invalid NodeId.
  NodeId follow(NodeId from, std::string_view label) const;

  /// Follow a path of labels, e.g. follow_path(root, {"grid", "nx"}).
  NodeId follow_path(NodeId from, std::initializer_list<std::string_view> path) const;

  /// All targets of arcs with this label, in insertion order.
  std::vector<NodeId> follow_all(NodeId from, std::string_view label) const;

  /// Number of arcs with this label.
  std::size_t arc_count(NodeId from, std::string_view label) const;

  /// Nodes reachable from `root` (including root), in deterministic
  /// depth-first, arc-insertion order.
  std::vector<NodeId> reachable(NodeId root) const;

  // --- comparison / rendering ---------------------------------------------
  /// Structural equality of the subgraphs rooted at a and b: same atoms and
  /// same arc structure under the correspondence induced by a parallel
  /// depth-first walk (arc order significant; cycles handled).
  static bool structurally_equal(const HGraph& ga, NodeId a, const HGraph& gb,
                                 NodeId b);

  /// Deterministic multi-line dump of the subgraph rooted at `root`.
  std::string to_string(NodeId root) const;

  /// Graphviz dot of the subgraph rooted at `root`.
  std::string to_dot(NodeId root, std::string_view graph_name = "hgraph") const;

  /// Approximate storage footprint in bytes (for the metrics benches).
  std::size_t storage_bytes() const;

 private:
  struct Node {
    Atom value;
    std::vector<Arc> arcs;
  };

  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  std::vector<Node> nodes_;
};

/// Render an atom for dumps and error messages.
std::string atom_to_string(const Atom& a);

}  // namespace fem2::hgraph
