// Machine configuration for the FEM-2 hardware simulator.
//
// The architecture follows the paper: "clusters of processing elements
// organized around a shared memory.  Sets of clusters communicate through a
// common communication network.  Within each cluster, one PE runs the
// operating system kernel, which fields incoming messages and assigns
// available PE's to process them."
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace fem2::hw {

class Topology;

/// Virtual time, in processor cycles.
using Cycles = std::uint64_t;

struct ClusterId {
  std::uint32_t index = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  bool valid() const { return index != kInvalid; }
  friend bool operator==(ClusterId a, ClusterId b) = default;
  friend auto operator<=>(ClusterId a, ClusterId b) = default;
};

struct PeId {
  ClusterId cluster;
  std::uint32_t index = 0xffffffffu;

  bool valid() const { return cluster.valid() && index != 0xffffffffu; }
  friend bool operator==(PeId a, PeId b) = default;
  friend auto operator<=>(PeId a, PeId b) = default;
};

struct MachineConfig {
  std::size_t clusters = 4;
  std::size_t pes_per_cluster = 8;

  /// Capacity of each cluster's shared memory.
  std::size_t memory_per_cluster = 4u << 20;

  // --- timing model (all in cycles) ---------------------------------------
  Cycles cycles_per_flop = 4;          ///< one floating-point operation
  Cycles cycles_per_word = 1;          ///< one shared-memory word access
  Cycles message_sw_overhead = 250;    ///< format/send + decode software path
  Cycles kernel_dispatch = 60;         ///< kernel PE fielding one message
  Cycles intra_cluster_latency = 30;   ///< shared-memory handoff in-cluster
  Cycles network_base_latency = 150;   ///< inter-cluster message launch
  double network_cycles_per_byte = 0.5;

  /// Inter-cluster network shape (hw/topology.hpp).  Null selects a
  /// FlatTopology built from the two fields above — the seed cost model.
  /// The engine's PDES window is the topology's minimum launch delay.
  std::shared_ptr<const Topology> topology;

  /// Aggregate network channels: each cluster has one inbound FIFO channel;
  /// packets heading to the same cluster serialize on it.
  bool model_network_contention = true;

  /// Shared-memory port contention: intra-cluster message handoffs
  /// serialize on the cluster's memory port.  This is the physical pressure
  /// that bounds useful cluster size (all PEs arbitrate for one memory).
  bool model_memory_contention = true;
  double memory_cycles_per_byte = 0.25;

  // --- fault model ---------------------------------------------------------
  /// Seed for the network's packet-loss lottery (deterministic; intra-cluster
  /// shared-memory handoffs never drop).
  std::uint64_t network_seed = 0x5eedfa17ULL;

  /// Default drop probability applied to every inter-cluster link.
  /// Per-link overrides and severed links are set on the Machine.
  double network_drop_probability = 0.0;

  std::size_t total_pes() const { return clusters * pes_per_cluster; }
};

}  // namespace fem2::hw
