// The FEM-2 machine model: clusters of processing elements around a shared
// memory, connected by a common inter-cluster network, driven by the
// discrete-event engine.
//
// The hardware layer is mechanism only.  Policy — which PE fields a message,
// how tasks are scheduled — belongs to the system programmer's VM
// (src/sysvm), which installs a ClusterService callback.  Per the paper,
// the kernel role is pinned to one PE per cluster ("within each cluster,
// one PE runs the operating system kernel"); reconfigurability is modeled
// by promoting the lowest-index surviving PE when the kernel PE fails.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "hw/config.hpp"
#include "hw/event.hpp"
#include "hw/metrics.hpp"
#include "hw/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace fem2::hw {

struct Packet {
  ClusterId source;
  ClusterId destination;
  std::size_t bytes = 0;
  std::any payload;
};

/// Thrown when a cluster's shared memory is exhausted.
class OutOfMemory : public support::Error {
 public:
  using support::Error::Error;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  /// The inter-cluster network shape driving latency, bandwidth and
  /// contention (config.topology, or the flat seed model when unset).
  const Topology& topology() const;
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  Cycles now() const { return engine_.now(); }

  std::size_t cluster_count() const { return config_.clusters; }

  // --- packets --------------------------------------------------------
  /// Deliver a packet to `dst`'s input queue after modeled latency
  /// (intra-cluster shared-memory handoff, or network with per-destination
  /// channel serialization).  The cluster service is notified on arrival.
  void send_packet(ClusterId src, ClusterId dst, std::size_t bytes,
                   std::any payload);

  std::optional<Packet> pop_packet(ClusterId cluster);
  std::size_t queue_depth(ClusterId cluster) const;

  /// Installed by the OS layer; invoked when a packet arrives or a PE frees
  /// up in the cluster.  May be invoked spuriously; must be idempotent.
  using ClusterService = std::function<void(ClusterId)>;
  void set_cluster_service(ClusterService service);

  /// Invoked when a PE fails mid-work; receives the cluster whose work was
  /// lost so the OS layer can re-dispatch.
  using WorkLostHandler = std::function<void(ClusterId)>;
  void set_work_lost_handler(WorkLostHandler handler);

  /// Invoked once when a cluster's last alive PE fails (via fail_cluster or
  /// a sequence of fail_pe calls).  The cluster's input queue and shared
  /// memory are already purged when the handler runs; the OS layer uses it
  /// to relocate the tasks that lived there.
  using ClusterLostHandler = std::function<void(ClusterId)>;
  void set_cluster_lost_handler(ClusterLostHandler handler) {
    cluster_lost_ = std::move(handler);
  }

  // --- processing elements ---------------------------------------------
  /// The PE currently running the OS kernel in this cluster: the
  /// lowest-index alive PE.  Invalid id if the whole cluster has failed.
  PeId kernel_pe(ClusterId cluster) const;

  /// Claim an idle, alive, non-kernel PE (any PE may process any message,
  /// per the paper).  With a single-PE cluster the kernel PE doubles as the
  /// worker.  Returns an invalid id when none is available.
  PeId acquire_worker(ClusterId cluster);
  void release_worker(PeId pe);

  /// Claim a specific PE (e.g. the kernel PE for dispatch).  Returns false
  /// if it is busy or failed.
  bool try_acquire_pe(PeId pe);

  /// Charge `duration` busy cycles to `pe`, then run `on_complete`.
  /// If the PE fails before completion the completion is dropped and the
  /// work-lost handler fires instead.  Does not acquire/release the PE.
  void occupy(PeId pe, Cycles duration, std::function<void()> on_complete);

  bool pe_alive(PeId pe) const;
  bool pe_busy(PeId pe) const;
  std::size_t alive_pes(ClusterId cluster) const;
  std::size_t idle_workers(ClusterId cluster) const;

  // --- faults -----------------------------------------------------------
  void fail_pe(PeId pe);
  void restore_pe(PeId pe);
  std::size_t failed_pe_count() const;

  /// Fail every PE of a cluster at once, purge its input queue and shared
  /// memory, and fire the cluster-lost handler.  Idempotent.
  void fail_cluster(ClusterId cluster);
  bool cluster_alive(ClusterId cluster) const;
  std::size_t alive_clusters() const;
  std::size_t failed_cluster_count() const;

  // --- lossy / severable inter-cluster network ---------------------------
  /// Set the drop probability of every inter-cluster link (0 disables).
  void set_drop_probability(double p);
  /// Per-link override (src→dst direction only).
  void set_link_drop_probability(ClusterId src, ClusterId dst, double p);
  /// Sever / repair one directed link.  A severed link drops everything.
  void fail_link(ClusterId src, ClusterId dst);
  void restore_link(ClusterId src, ClusterId dst);
  bool link_severed(ClusterId src, ClusterId dst) const;

  // --- shared memory ------------------------------------------------------
  /// Throws OutOfMemory if the cluster's capacity would be exceeded.
  void allocate(ClusterId cluster, std::size_t bytes);
  void release(ClusterId cluster, std::size_t bytes);
  std::size_t memory_in_use(ClusterId cluster) const;
  std::size_t memory_capacity() const { return config_.memory_per_cluster; }

  // --- metrics -----------------------------------------------------------
  /// Folds per-shard counters accumulated during parallel phases into the
  /// master table (deterministic shard order).  Host/coordinator context
  /// only — never call from inside a parallel phase.
  const MachineMetrics& metrics() const;
  PeMetrics& pe_metrics(PeId pe);

  /// Attach an execution tracer (optional; not owned).  Pass nullptr to
  /// detach.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  enum class PeState { Idle, Busy, Failed };

  struct PeSlot {
    // Atomic because remote shards poll liveness (cluster_alive /
    // alive_pes) while the owning shard flips Idle<->Busy; the Failed
    // transition itself happens only stop-world, so the values observed by
    // liveness checks are deterministic.
    std::atomic<PeState> state{PeState::Idle};
    std::uint32_t generation = 0;  ///< bumped on fail/restore
  };

  struct ClusterSlot {
    std::deque<Packet> queue;
    Cycles memory_port_free_at = 0;  ///< shared-memory port serialization
    std::size_t memory_in_use = 0;
    bool lost = false;  ///< cluster-lost handler already fired
  };

  struct LinkSlot {
    double drop_probability = 0.0;
    bool severed = false;
  };

  /// An inter-cluster send buffered during a parallel phase.  `order` is
  /// the key of the sending event (the exact serial launch order);
  /// `origin` is the delivery event's pre-reserved identity.
  struct PendingSend {
    ClusterId src;
    ClusterId dst;
    std::size_t bytes = 0;
    std::any payload;
    Cycles send_time = 0;
    EventKey order;
    EventOrigin origin;
  };

  struct PendingTrace {
    EventKey key;
    TraceEvent event;
  };

  /// Network scalars that cluster-shard events update; folded into
  /// metrics_.network on read, in shard order.
  struct NetDeltas {
    std::uint64_t local_messages = 0;
    std::uint64_t local_bytes = 0;
    Cycles memory_port_busy_cycles = 0;
    std::uint64_t dropped_messages = 0;
    std::uint64_t dropped_bytes = 0;
  };

  PeSlot& slot(PeId pe);
  const PeSlot& slot(PeId pe) const;
  std::size_t pe_flat_index(PeId pe) const;
  void notify_service(ClusterId cluster);
  void check_cluster(ClusterId cluster) const;
  LinkSlot& link(ClusterId src, ClusterId dst);
  const LinkSlot& link(ClusterId src, ClusterId dst) const;
  /// Fires the cluster-lost handler once alive_pes drops to zero.
  void handle_cluster_death(ClusterId cluster);
  void drop_packet(ClusterId src, ClusterId dst, std::size_t bytes, Cycles at);

  /// Launch one inter-cluster packet (link lottery, channel contention,
  /// delivery scheduling).  Runs at send time in serial contexts and at
  /// the window barrier for sends buffered during a parallel phase — in
  /// both cases in exact serial order with identical RNG draws.
  void launch_packet(PendingSend& ps);
  /// The arrival half of a send: runs on the destination's shard.
  void deliver_packet(ClusterId src, ClusterId dst, std::size_t bytes,
                      Packet packet);
  /// Barrier hook: replays buffered sends and trace records in key order.
  void flush_network();
  void record_trace(const TraceEvent& ev);
  NetDeltas& net_delta() const;
  void fold_metrics() const;

  MachineConfig config_;
  std::shared_ptr<const Topology> topology_;
  Engine engine_;
  std::vector<PeSlot> pes_;
  std::vector<ClusterSlot> clusters_;
  std::vector<LinkSlot> links_;  ///< row-major src×dst, inter-cluster only
  std::vector<Cycles> channel_free_at_;  ///< topology contention channels
  ClusterService service_;
  WorkLostHandler work_lost_;
  ClusterLostHandler cluster_lost_;
  mutable MachineMetrics metrics_;
  mutable std::vector<NetDeltas> net_deltas_;       ///< one per shard
  std::vector<std::vector<PendingSend>> net_buffers_;   ///< one per shard
  std::vector<std::vector<PendingTrace>> trace_buffers_;  ///< one per shard
  std::vector<PendingTrace>* trace_sink_ = nullptr;  ///< set during flush
  EventKey flush_order_key_;
  Tracer* tracer_ = nullptr;
  std::size_t failed_count_ = 0;
  std::size_t failed_clusters_ = 0;
  support::Rng net_rng_;
};

}  // namespace fem2::hw
