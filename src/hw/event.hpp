// Deterministic discrete-event engine driving the machine simulation.
// Events at equal virtual time execute in schedule order (stable sequence
// numbers), so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

class Engine {
 public:
  using Action = std::function<void()>;

  Cycles now() const { return now_; }

  /// Schedule `action` to run `delay` cycles from now.
  void schedule(Cycles delay, Action action);

  /// Schedule at an absolute time >= now().
  void schedule_at(Cycles time, Action action);

  /// Run until the event queue is empty.  Returns events processed.
  std::uint64_t run();

  /// Run until the queue is empty or virtual time would exceed `limit`.
  std::uint64_t run_until(Cycles limit);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    Cycles time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace fem2::hw
