// Deterministic discrete-event engine driving the machine simulation.
// Events at equal virtual time execute in schedule order (stable sequence
// numbers), so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

class Engine {
 public:
  using Action = std::function<void()>;

  Cycles now() const { return now_; }

  /// Schedule `action` to run `delay` cycles from now.
  void schedule(Cycles delay, Action action);

  /// Schedule at an absolute time >= now().
  void schedule_at(Cycles time, Action action);

  /// Run until the event queue is empty.  Returns events processed.
  std::uint64_t run();

  /// Run until the queue is empty or virtual time would exceed `limit`.
  std::uint64_t run_until(Cycles limit);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

  using Hook = std::function<void()>;

  /// Invoked at every quiescent point: after an event ran and no further
  /// event is pending at the same virtual time (so all state transitions of
  /// this instant have settled).  The hook must observe, not mutate, the
  /// simulation — scheduling from inside it is rejected elsewhere by virtue
  /// of analysis passes being read-only, not enforced here.  Pass {} to
  /// detach.
  void set_quiescent_hook(Hook hook) { quiescent_hook_ = std::move(hook); }

  /// Invoked when a run() / run_until() drains the queue completely after
  /// processing at least one event.  Used to detect simulations that went
  /// idle with live tasks remaining (deadlock / starvation).
  void set_idle_hook(Hook hook) { idle_hook_ = std::move(hook); }

 private:
  struct Event {
    Cycles time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Hook quiescent_hook_;
  Hook idle_hook_;
};

}  // namespace fem2::hw
