// Deterministic discrete-event engine driving the machine simulation.
//
// The engine is sharded: every cluster of the simulated machine owns one
// event-queue shard, plus one "global" shard for host-scheduled events
// (fault injections, OS launches, anything scheduled from outside the
// simulation).  Execution proceeds in *phases*: all cluster events inside a
// virtual-time window [B, B+W) run, then a barrier, then the next phase.
// W (the lookahead) equals the inter-cluster network launch latency, so a
// message sent during a phase can only be delivered in a later phase —
// cross-shard deliveries are exchanged exclusively at the barriers.  This
// is a conservative synchronous-window PDES scheme: with more than one
// host thread the shards of a phase execute in parallel, and because every
// event carries a totally-ordered key (time, origin shard, origin
// sequence) that is allocated identically in serial and parallel mode, the
// results are bit-identical to the serial engine for every seed.
//
// Events at equal virtual time execute in key order, so runs are
// bit-reproducible regardless of FEM2_HOST_THREADS.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

/// Total order on events.  `shard` and `seq` identify the scheduling
/// context that created the event (its *origin*), not the queue it sits
/// in; the pair (shard, seq) is globally unique because each shard
/// allocates its own monotonic sequence numbers.
struct EventKey {
  Cycles time = 0;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.time == b.time && a.shard == b.shard && a.seq == b.seq;
  }
  friend bool operator!=(const EventKey& a, const EventKey& b) {
    return !(a == b);
  }
  friend bool operator<=(const EventKey& a, const EventKey& b) {
    return !(b < a);
  }
};

/// A reserved scheduling identity: lets a layer draw the (shard, seq) pair
/// for a future event *now* — while the origin context is executing — and
/// materialize the event later (e.g. at a window barrier).  Reserving at
/// send time keeps sequence-counter advancement identical between the
/// serial and parallel engines.
struct EventOrigin {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
};

class Engine {
 public:
  using Action = std::function<void()>;
  using Hook = std::function<void()>;

  /// Reads FEM2_HOST_THREADS (default 1) for the worker-pool size.
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- topology ---------------------------------------------------------
  /// Split the engine into `clusters` cluster shards plus one global
  /// shard, with window/lookahead `window` cycles.  Called once by the
  /// Machine before any event is scheduled.  A window of 0 disables
  /// parallel phases (every event runs in its own single-instant phase).
  void configure(std::uint32_t clusters, Cycles window);

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// The shard host-context events are scheduled on (always the last).
  std::uint32_t global_shard() const { return shard_count() - 1; }
  Cycles window() const { return window_; }

  // --- host threads -----------------------------------------------------
  unsigned threads() const { return threads_; }
  /// Set the worker-pool size (1 = serial).  Must not be called while
  /// run() is executing.  Results are identical for every value.
  void set_threads(unsigned n);

  // --- scheduling context ----------------------------------------------
  /// Virtual time of the current context: the executing event's time on
  /// its shard, or the time of the last executed event from the host.
  Cycles now() const;
  /// Shard of the current context (the global shard from the host).
  std::uint32_t current_shard() const;
  /// Key of the event currently executing (host context: a synthetic key
  /// at now() on the global shard).  Used to tag deferred work so barriers
  /// can replay it in exact serial order.
  EventKey current_key() const;
  /// True while a parallel phase is executing — layers must buffer
  /// cross-shard work instead of performing it.
  bool in_worker_phase() const { return in_worker_phase_; }

  // --- scheduling -------------------------------------------------------
  /// Schedule `action` on the current context's shard, `delay` cycles
  /// from now().
  void schedule(Cycles delay, Action action);

  /// Schedule on the current context's shard at absolute time >= now().
  void schedule_at(Cycles time, Action action);

  /// Schedule on an explicit shard.  From a parallel phase only the
  /// executing shard itself is a legal target; cross-shard scheduling is
  /// reserved for barrier/host/global contexts.
  void schedule_on(std::uint32_t shard, Cycles time, Action action);

  /// Draw an event identity from the current context's shard.
  EventOrigin reserve_origin();

  /// Materialize an event with a previously reserved identity.
  void schedule_reserved(std::uint32_t shard, Cycles time, EventOrigin origin,
                         Action action);

  // --- execution --------------------------------------------------------
  /// Run until the event queues are empty.  Returns events processed.
  std::uint64_t run();

  /// Run until the queues are empty or virtual time would exceed `limit`.
  std::uint64_t run_until(Cycles limit);

  bool idle() const;
  std::size_t pending() const;
  std::uint64_t processed() const;

  // --- hooks ------------------------------------------------------------
  /// Invoked at every quiescent point: after a phase (or a global event)
  /// ran and no further event is pending at the same virtual time, so all
  /// state transitions of this instant have settled.  The hook must
  /// observe, not mutate, the simulation.  Pass {} to detach.
  void set_quiescent_hook(Hook hook) { quiescent_hook_ = std::move(hook); }

  /// Invoked when a run() / run_until() drains the queues completely after
  /// processing at least one event.  Used to detect simulations that went
  /// idle with live tasks remaining (deadlock / starvation).
  void set_idle_hook(Hook hook) { idle_hook_ = std::move(hook); }

  /// Invoked after every execution phase, on the coordinator thread, with
  /// no event in flight.  Layers use this to flush work buffered during
  /// the phase (deferred network sends, observer callbacks) in
  /// deterministic shard order.  Hooks run in registration order.
  void add_barrier_hook(Hook hook);

  /// Invoked whenever virtual time crosses a window boundary B (before
  /// any event at time >= B executes): every event with time < B has
  /// executed.  With window 0 this fires before every phase.  Used for
  /// periodically refreshed global state (e.g. the OS load board).
  void add_refresh_hook(Hook hook);

 private:
  struct Event {
    EventKey key;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return b.key < a.key;
    }
  };

  struct Shard {
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    EventKey last_key;  ///< key of this shard's last executed event
    std::exception_ptr error;
    EventKey error_key;
  };

  /// Thread-local execution context: set while an event's action runs.
  struct Context {
    const Engine* engine = nullptr;
    std::uint32_t shard = 0;
    EventKey key;
  };
  static thread_local Context* context_;

  bool in_context() const {
    return context_ != nullptr && context_->engine == this;
  }

  /// Pop and execute one event on `shard` with the proper context.
  void execute(std::uint32_t shard);
  /// Drain `shard` of all events with key < stop.  Exceptions are stashed
  /// in the shard (worker mode).
  void drain_shard(std::uint32_t shard, const EventKey& stop);
  /// Worker-pool thread body.
  void worker_main(unsigned slot, std::uint64_t seen);
  void ensure_pool();
  void stop_pool();
  void run_barrier_hooks();
  void fire_refresh_up_to(Cycles next_time);
  void maybe_quiescent(Cycles settled);
  void rethrow_phase_error();

  std::vector<Shard> shards_{1};  ///< unconfigured: one (global) shard
  Cycles window_ = 0;
  Cycles host_now_ = 0;    ///< time of the last executed event
  Cycles next_refresh_ = 0;  ///< next window boundary to announce
  bool running_ = false;
  bool in_worker_phase_ = false;

  Hook quiescent_hook_;
  Hook idle_hook_;
  std::vector<Hook> barrier_hooks_;
  std::vector<Hook> refresh_hooks_;

  // Worker pool.  Workers spin on phase_epoch_; the coordinator publishes
  // phase_stop_ / in_worker_phase_ before bumping the epoch (release), and
  // workers acquire it, so all shard state written between phases is
  // visible to the owning worker and vice versa via phase_pending_.
  unsigned threads_ = 1;
  unsigned pool_stride_ = 0;  ///< participants per phase (incl. coordinator)
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> phase_epoch_{0};
  std::atomic<unsigned> phase_pending_{0};
  std::atomic<bool> pool_stop_{false};
  EventKey phase_stop_;
};

}  // namespace fem2::hw
