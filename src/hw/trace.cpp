#include "hw/trace.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace fem2::hw {

std::string_view trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::MessageSent: return "message-sent";
    case TraceKind::MessageDelivered: return "message-delivered";
    case TraceKind::MessageDropped: return "message-dropped";
    case TraceKind::WorkStarted: return "work-started";
    case TraceKind::WorkFinished: return "work-finished";
    case TraceKind::PeFailed: return "pe-failed";
    case TraceKind::PeRestored: return "pe-restored";
    case TraceKind::ClusterFailed: return "cluster-failed";
    case TraceKind::LinkFailed: return "link-failed";
  }
  FEM2_UNREACHABLE("bad TraceKind");
}

void Tracer::record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    // Drop the oldest half in one amortized move; timelines care about the
    // recent window anyway and totals live in MachineMetrics.
    const std::size_t keep = capacity_ / 2;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(
                                        events_.size() - keep));
    dropped_ += capacity_ - keep;
  }
  events_.push_back(event);
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::render_pe_gantt(const MachineConfig& config, Cycles begin,
                                    Cycles end, std::size_t buckets) const {
  FEM2_CHECK(end > begin && buckets > 0);
  const double span = static_cast<double>(end - begin);
  const std::size_t pes = config.total_pes();

  // Busy cycles per (pe, bucket), reconstructed from start/finish pairs.
  std::vector<std::vector<double>> busy(pes, std::vector<double>(buckets, 0));
  std::vector<Cycles> open(pes, ~Cycles{0});  // start of an open interval

  auto add_interval = [&](std::size_t pe, Cycles from, Cycles to) {
    from = std::max(from, begin);
    to = std::min(to, end);
    if (from >= to) return;
    const double bucket_width = span / static_cast<double>(buckets);
    for (Cycles t = from; t < to;) {
      const auto b = static_cast<std::size_t>(
          static_cast<double>(t - begin) / bucket_width);
      const auto bucket_end =
          begin + static_cast<Cycles>(bucket_width * static_cast<double>(b + 1));
      const Cycles upto = std::min<Cycles>(std::max(bucket_end, t + 1), to);
      busy[pe][std::min(b, buckets - 1)] += static_cast<double>(upto - t);
      t = upto;
    }
  };

  for (const auto& e : events_) {
    if (e.kind != TraceKind::WorkStarted && e.kind != TraceKind::WorkFinished)
      continue;
    const std::size_t flat =
        e.cluster.index * config.pes_per_cluster + e.pe;
    if (flat >= pes) continue;
    if (e.kind == TraceKind::WorkStarted) {
      open[flat] = e.time;
    } else if (open[flat] != ~Cycles{0}) {
      add_interval(flat, open[flat], e.time);
      open[flat] = ~Cycles{0};
    }
  }
  for (std::size_t pe = 0; pe < pes; ++pe)
    if (open[pe] != ~Cycles{0}) add_interval(pe, open[pe], end);

  const double bucket_width = span / static_cast<double>(buckets);
  std::ostringstream os;
  os << "PE activity, " << begin << " .. " << end << " cycles ('#'>=75%, "
        "'+'>=25%, '.'>0)\n";
  for (std::size_t pe = 0; pe < pes; ++pe) {
    const auto cluster = pe / config.pes_per_cluster;
    const auto index = pe % config.pes_per_cluster;
    os << "c" << cluster << "p" << index << (index == 0 ? "*" : " ") << " |";
    for (std::size_t b = 0; b < buckets; ++b) {
      const double f = busy[pe][b] / bucket_width;
      os << (f >= 0.75 ? '#' : f >= 0.25 ? '+' : f > 0.0 ? '.' : ' ');
    }
    os << "|\n";
  }
  os << "(* = default kernel PE)\n";
  return os.str();
}

std::string Tracer::render_message_profile(Cycles begin, Cycles end,
                                           std::size_t buckets) const {
  FEM2_CHECK(end > begin && buckets > 0);
  std::vector<std::uint64_t> counts(buckets, 0);
  const double span = static_cast<double>(end - begin);
  for (const auto& e : events_) {
    if (e.kind != TraceKind::MessageDelivered) continue;
    if (e.time < begin || e.time >= end) continue;
    const auto b = static_cast<std::size_t>(
        static_cast<double>(e.time - begin) / span *
        static_cast<double>(buckets));
    counts[std::min(b, buckets - 1)] += 1;
  }
  std::uint64_t peak = 1;
  for (const auto c : counts) peak = std::max(peak, c);

  std::ostringstream os;
  os << "messages delivered per bucket (peak " << peak << ")\n";
  static constexpr char kLevels[] = " .:-=+*#%@";
  os << "|";
  for (const auto c : counts) {
    const auto level = static_cast<std::size_t>(
        static_cast<double>(c) / static_cast<double>(peak) * 9.0);
    os << kLevels[level];
  }
  os << "|\n";
  return os.str();
}

}  // namespace fem2::hw
