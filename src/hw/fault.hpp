// Deterministic fault injection for the machine simulator.
//
// A FaultPlan is a declarative list of timed fault actions (PE kills,
// cluster kills, link severs/repairs, drop-probability changes).  The
// FaultInjector schedules them on the machine's event engine, so a chaos
// run is exactly as reproducible as a fault-free one: same plan, same
// seed, same event ordering, same result.
//
// Plans are either hand-built (add_* helpers) or derived from a seeded
// ChaosSpec via FaultPlan::randomized, which guarantees at least one
// cluster survives every plan it generates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

class Machine;

struct FaultAction {
  enum class Kind : std::uint8_t {
    FailPe,
    RestorePe,
    FailCluster,
    FailLink,
    RestoreLink,
    SetDropProbability,  ///< all links; `probability` field
  };

  Kind kind = Kind::FailPe;
  Cycles at = 0;          ///< absolute virtual time
  ClusterId cluster;      ///< target cluster (or link source)
  std::uint32_t pe = 0;   ///< PE index (FailPe/RestorePe)
  ClusterId peer;         ///< link destination (FailLink/RestoreLink)
  double probability = 0.0;
};

/// Bounds for FaultPlan::randomized.  Times are drawn uniformly from
/// [window_begin, window_end).
struct ChaosSpec {
  Cycles window_begin = 0;
  Cycles window_end = 1;
  std::size_t pe_kills = 0;
  std::size_t cluster_kills = 0;
  std::size_t link_cuts = 0;
  double drop_probability = 0.0;  ///< applied to all links at window_begin
};

class FaultPlan {
 public:
  FaultPlan& fail_pe(Cycles at, ClusterId cluster, std::uint32_t pe);
  FaultPlan& restore_pe(Cycles at, ClusterId cluster, std::uint32_t pe);
  FaultPlan& fail_cluster(Cycles at, ClusterId cluster);
  FaultPlan& fail_link(Cycles at, ClusterId src, ClusterId dst);
  FaultPlan& restore_link(Cycles at, ClusterId src, ClusterId dst);
  FaultPlan& set_drop_probability(Cycles at, double p);

  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  std::size_t size() const { return actions_.size(); }

  /// One line per action, for logging chaos-test reproductions.
  std::string describe() const;

  /// Derive a plan from `spec` with a deterministic seed.  Cluster kills
  /// always leave at least one cluster standing, and PE kills avoid
  /// clusters already scheduled to die (so the requested counts are
  /// meaningful).  Requires spec.cluster_kills < config.clusters.
  static FaultPlan randomized(const MachineConfig& config,
                              const ChaosSpec& spec, std::uint64_t seed);

 private:
  std::vector<FaultAction> actions_;
};

/// Binds a plan to a machine: arm() schedules every action on the engine.
/// The injector must outlive the run (the scheduled closures reference it).
class FaultInjector {
 public:
  FaultInjector(Machine& machine, FaultPlan plan);

  /// Schedule all actions.  Call once, before (or during) the run.
  void arm();

  std::size_t fired() const { return fired_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void apply(const FaultAction& action);

  Machine& machine_;
  FaultPlan plan_;
  std::size_t fired_ = 0;
  bool armed_ = false;
};

}  // namespace fem2::hw
