// Reliable inter-cluster channel protocol as a pure state machine.
//
// One direction of one (src, dst) cluster pair: the sender stamps each
// payload with a monotone sequence number and keeps it until acknowledged,
// retransmitting with exponential backoff; the receiver acks every frame
// it sees, drops duplicates, holds out-of-order frames, and releases
// consecutive runs in sequence order.
//
// The templates hold protocol state and transitions only — no timers, no
// wires, no I/O.  sysvm::Os instantiates them with the real Message type
// and supplies the event queue and the network; the bounded model checker
// (analyze/model_check.hpp) instantiates them with small integer payloads
// and exhausts every interleaving of delivery, loss, duplication and
// timer firings.  Both sides exercise the *same* transition code, so a
// property proved by the checker is a property of the runtime protocol.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

/// Retransmission timeout for the (attempts+1)-th transmission: the base
/// RTO doubled per failed attempt, capped at 64x.
inline Cycles retransmit_backoff(Cycles base_rto, std::size_t attempts) {
  return base_rto << std::min<std::size_t>(attempts, 6);
}

/// What a firing retransmit timer should do.
enum class RetransmitDecision {
  Resend,        ///< frame still unacknowledged: retransmit, rearm timer
  Exhausted,     ///< retry budget spent: the peer is unreachable
  AlreadyAcked,  ///< frame was acknowledged meanwhile: timer is stale
};

template <typename Payload>
struct ReliableSender {
  struct Unacked {
    Payload message;
    std::size_t attempts = 0;  ///< completed retransmissions (0 = first send)
  };

  std::uint64_t next_seq = 0;
  std::map<std::uint64_t, Unacked> unacked;

  /// Admit a payload to the channel: assigns the next sequence number and
  /// records the frame as unacknowledged.  The caller transmits
  /// `message(seq)` and arms a timer for `retransmit_backoff(rto, 0)`.
  std::uint64_t send(Payload payload) {
    const std::uint64_t seq = next_seq++;
    unacked.emplace(seq, Unacked{std::move(payload), 0});
    return seq;
  }

  /// Ack from the peer: retire the frame.  False if already retired (a
  /// duplicate ack, or an ack for a frame flushed by failure recovery).
  bool acknowledge(std::uint64_t seq) { return unacked.erase(seq) > 0; }

  /// A retransmit timer for `seq` fired.  On Resend the attempt counter
  /// has been bumped: retransmit `message(seq)` and rearm for
  /// `retransmit_backoff(rto, attempts(seq))`.
  RetransmitDecision on_timer(std::uint64_t seq,
                              std::size_t max_retransmits) {
    const auto it = unacked.find(seq);
    if (it == unacked.end()) return RetransmitDecision::AlreadyAcked;
    it->second.attempts += 1;
    if (it->second.attempts > max_retransmits)
      return RetransmitDecision::Exhausted;
    return RetransmitDecision::Resend;
  }

  const Payload* message(std::uint64_t seq) const {
    const auto it = unacked.find(seq);
    return it == unacked.end() ? nullptr : &it->second.message;
  }
  std::size_t attempts(std::uint64_t seq) const {
    const auto it = unacked.find(seq);
    return it == unacked.end() ? 0 : it->second.attempts;
  }
};

template <typename Payload>
struct ReliableReceiver {
  std::uint64_t next_expected = 0;
  std::map<std::uint64_t, Payload> held;  ///< out-of-order hold-back

  /// Duplicate suppression.  Always on in production; the model checker
  /// switches it off to demonstrate that the exactly-once property fails
  /// without it (the seeded-defect experiment).
  bool dedup = true;

  struct Admission {
    bool duplicate = false;       ///< frame dropped as already-seen
    std::vector<Payload> delivered;  ///< in-order releases, oldest first
  };

  /// A data frame arrived.  The caller acks `seq` unconditionally (the
  /// first ack may have been lost) and then delivers `delivered` in order.
  Admission admit(std::uint64_t seq, Payload payload) {
    Admission out;
    if (dedup && (seq < next_expected || held.contains(seq))) {
      out.duplicate = true;
      return out;
    }
    if (seq > next_expected) {
      held.emplace(seq, std::move(payload));
      return out;
    }
    if (seq < next_expected) {
      // Only reachable with dedup disabled: the stale frame is delivered
      // a second time instead of being dropped.
      out.delivered.push_back(std::move(payload));
      return out;
    }
    next_expected += 1;
    out.delivered.push_back(std::move(payload));
    // Release any frames that arrived ahead of order behind this one.
    for (auto it = held.find(next_expected); it != held.end();
         it = held.find(next_expected)) {
      out.delivered.push_back(std::move(it->second));
      held.erase(it);
      next_expected += 1;
    }
    return out;
  }
};

}  // namespace fem2::hw
