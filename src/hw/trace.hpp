// Execution tracing for the machine simulator: records message and PE
// activity events so a run's temporal pattern can be inspected — the
// "storage, processing, and communication patterns" of the paper's
// simulation program, as a timeline rather than totals.
//
// The tracer is optional and attached to a Machine before the run; it
// keeps a bounded event list (oldest dropped beyond the cap) and renders
// text timelines (a per-PE utilization Gantt, a message-rate profile).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

enum class TraceKind : std::uint8_t {
  MessageSent,
  MessageDelivered,
  MessageDropped,  ///< lost to a lossy/severed link or dead cluster
  WorkStarted,   ///< PE begins a busy interval
  WorkFinished,  ///< busy interval ends
  PeFailed,
  PeRestored,
  ClusterFailed,
  LinkFailed,
};

std::string_view trace_kind_name(TraceKind k);

struct TraceEvent {
  Cycles time = 0;
  TraceKind kind = TraceKind::MessageSent;
  ClusterId cluster;            ///< where it happened (destination for sends)
  std::uint32_t pe = 0xffffffffu;  ///< PE index, if applicable
  std::size_t bytes = 0;        ///< message size, if applicable
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 200'000) : capacity_(capacity) {}

  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  /// Per-PE busy fraction within [begin, end), one row per PE, rendered as
  /// a text Gantt with `buckets` columns ('#' ≥75% busy, '+' ≥25%, '.' >0).
  std::string render_pe_gantt(const MachineConfig& config, Cycles begin,
                              Cycles end, std::size_t buckets = 60) const;

  /// Messages delivered per time bucket over [begin, end).
  std::string render_message_profile(Cycles begin, Cycles end,
                                     std::size_t buckets = 60) const;

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace fem2::hw
