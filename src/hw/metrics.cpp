#include "hw/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "support/strings.hpp"

namespace fem2::hw {

std::size_t LatencyHistogram::bucket_index(Cycles v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  // v >= 16: range r holds [16 << r, 32 << r), split into kSub linear
  // sub-buckets of width (1 << r).
  const int width = std::bit_width(v);  // >= 5
  const std::size_t range = static_cast<std::size_t>(width - 5);
  const std::size_t sub =
      static_cast<std::size_t>((v >> range) & (kSub - 1));
  return kSub + range * kSub + sub;
}

Cycles LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < kSub) return static_cast<Cycles>(index);
  const std::size_t range = (index - kSub) / kSub;
  const std::size_t sub = (index - kSub) % kSub;
  return ((static_cast<Cycles>(kSub + sub) + 1) << range) - 1;
}

void LatencyHistogram::record(Cycles v) {
  if (count == 0 || v < min) min = v;
  if (v > max) max = v;
  count += 1;
  sum += v;
  const std::size_t index = bucket_index(v);
  if (index >= buckets.size()) buckets.resize(index + 1, 0);
  buckets[index] += 1;
}

double LatencyHistogram::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

Cycles LatencyHistogram::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target && buckets[i] > 0)
      return std::clamp(bucket_upper(i), min, max);
  }
  return max;
}

std::uint64_t NetworkMetrics::traffic(std::size_t from, std::size_t to) const {
  if (from >= clusters || to >= clusters) return 0;
  return traffic_matrix[from * clusters + to];
}

std::string NetworkMetrics::render_traffic_matrix() const {
  std::ostringstream os;
  os << "src\\dst";
  for (std::size_t c = 0; c < clusters; ++c) os << "\tc" << c;
  os << "\n";
  for (std::size_t r = 0; r < clusters; ++r) {
    os << "c" << r;
    for (std::size_t c = 0; c < clusters; ++c)
      os << "\t" << traffic(r, c);
    os << "\n";
  }
  return os.str();
}

Cycles MachineMetrics::total_busy_cycles() const {
  Cycles total = 0;
  for (const auto& pe : pes) total += pe.busy_cycles;
  return total;
}

double MachineMetrics::pe_utilization(Cycles elapsed) const {
  if (elapsed == 0 || pes.empty()) return 0.0;
  return static_cast<double>(total_busy_cycles()) /
         (static_cast<double>(elapsed) * static_cast<double>(pes.size()));
}

std::uint64_t MachineMetrics::total_messages() const {
  return network.messages + network.local_messages;
}

std::uint64_t MachineMetrics::total_bytes() const {
  return network.bytes + network.local_bytes;
}

std::size_t MachineMetrics::memory_high_water() const {
  std::size_t hw = 0;
  for (const auto& c : clusters) hw = std::max(hw, c.memory_high_water);
  return hw;
}

std::string MachineMetrics::summary(Cycles elapsed) const {
  std::ostringstream os;
  os << "elapsed " << support::format_count(elapsed) << " cycles, "
     << "PE utilization " << support::format_double(
            100.0 * pe_utilization(elapsed), 1)
     << "%, messages " << support::format_count(total_messages())
     << " (" << support::format_count(network.messages) << " network, "
     << support::format_count(network.local_messages) << " local), traffic "
     << support::format_bytes(total_bytes()) << ", memory high water "
     << support::format_bytes(memory_high_water());
  return os.str();
}

std::string MachineMetrics::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < pes.size(); ++i) {
    os << "pe[" << i << "].busy_cycles=" << pes[i].busy_cycles << "\n"
       << "pe[" << i << "].work_items=" << pes[i].work_items << "\n";
  }
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const ClusterMetrics& c = clusters[i];
    os << "cluster[" << i << "].packets_in=" << c.packets_in << "\n"
       << "cluster[" << i << "].packets_out=" << c.packets_out << "\n"
       << "cluster[" << i << "].bytes_in=" << c.bytes_in << "\n"
       << "cluster[" << i << "].bytes_out=" << c.bytes_out << "\n"
       << "cluster[" << i << "].kernel_dispatches=" << c.kernel_dispatches
       << "\n"
       << "cluster[" << i << "].memory_in_use=" << c.memory_in_use << "\n"
       << "cluster[" << i << "].memory_high_water=" << c.memory_high_water
       << "\n"
       << "cluster[" << i << "].queue_peak=" << c.queue_peak << "\n";
  }
  os << "network.messages=" << network.messages << "\n"
     << "network.bytes=" << network.bytes << "\n"
     << "network.channel_busy_cycles=" << network.channel_busy_cycles << "\n"
     << "network.local_messages=" << network.local_messages << "\n"
     << "network.local_bytes=" << network.local_bytes << "\n"
     << "network.memory_port_busy_cycles=" << network.memory_port_busy_cycles
     << "\n"
     << "network.dropped_messages=" << network.dropped_messages << "\n"
     << "network.dropped_bytes=" << network.dropped_bytes << "\n";
  for (std::size_t i = 0; i < network.traffic_matrix.size(); ++i) {
    if (network.traffic_matrix[i] != 0) {
      os << "network.traffic[" << i << "]=" << network.traffic_matrix[i]
         << "\n";
    }
  }
  os << "network.latency.count=" << network.latency.count << "\n"
     << "network.latency.sum=" << network.latency.sum << "\n"
     << "network.latency.min=" << network.latency.min << "\n"
     << "network.latency.max=" << network.latency.max << "\n";
  for (std::size_t i = 0; i < network.latency.buckets.size(); ++i) {
    if (network.latency.buckets[i] != 0) {
      os << "network.latency.bucket[" << i
         << "]=" << network.latency.buckets[i] << "\n";
    }
  }
  return os.str();
}

}  // namespace fem2::hw
