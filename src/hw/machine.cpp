#include "hw/machine.hpp"

#include <algorithm>

#include "hw/topology.hpp"

namespace fem2::hw {

Machine::Machine(const MachineConfig& config)
    : config_(config), net_rng_(config.network_seed) {
  FEM2_CHECK_MSG(config_.clusters > 0, "machine needs at least one cluster");
  FEM2_CHECK_MSG(config_.pes_per_cluster > 0,
                 "machine needs at least one PE per cluster");
  topology_ = config_.topology;
  if (topology_ == nullptr)
    topology_ = std::make_shared<FlatTopology>(config_);
  FEM2_CHECK_MSG(topology_->clusters() == config_.clusters,
                 "topology cluster count does not match the machine");
  // The PDES lookahead is the topology's minimum cross-cluster launch
  // delay: no packet sent inside a window can be delivered inside it.
  const Cycles window = topology_->min_launch_delay();
  FEM2_CHECK_MSG(window > 0, "topology min launch delay must be positive");
  engine_.configure(config_.clusters, window);
  pes_ = std::vector<PeSlot>(config_.total_pes());
  clusters_.resize(config_.clusters);
  links_.resize(config_.clusters * config_.clusters);
  for (auto& l : links_) l.drop_probability = config_.network_drop_probability;
  channel_free_at_.assign(topology_->channel_count(), 0);
  // Statically severed links (degraded topologies) take effect before the
  // first event, exactly like a FaultPlan::fail_link at t=0.
  for (const auto& [src, dst] : topology_->severed_links())
    link(src, dst).severed = true;
  metrics_.pes.resize(config_.total_pes());
  metrics_.clusters.resize(config_.clusters);
  metrics_.network.clusters = config_.clusters;
  metrics_.network.traffic_matrix.assign(config_.clusters * config_.clusters,
                                         0);
  net_deltas_ = std::vector<NetDeltas>(engine_.shard_count());
  net_buffers_.resize(engine_.shard_count());
  trace_buffers_.resize(engine_.shard_count());
  engine_.add_barrier_hook([this] { flush_network(); });
}

void Machine::check_cluster(ClusterId cluster) const {
  FEM2_CHECK_MSG(cluster.valid() && cluster.index < config_.clusters,
                 "invalid cluster id");
}

std::size_t Machine::pe_flat_index(PeId pe) const {
  check_cluster(pe.cluster);
  FEM2_CHECK_MSG(pe.index < config_.pes_per_cluster, "invalid PE index");
  return pe.cluster.index * config_.pes_per_cluster + pe.index;
}

Machine::PeSlot& Machine::slot(PeId pe) { return pes_[pe_flat_index(pe)]; }
const Machine::PeSlot& Machine::slot(PeId pe) const {
  return pes_[pe_flat_index(pe)];
}

PeMetrics& Machine::pe_metrics(PeId pe) {
  return metrics_.pes[pe_flat_index(pe)];
}

Machine::NetDeltas& Machine::net_delta() const {
  return net_deltas_[engine_.current_shard()];
}

const Topology& Machine::topology() const { return *topology_; }

void Machine::record_trace(const TraceEvent& ev) {
  if (tracer_ == nullptr) return;
  if (trace_sink_ != nullptr) {
    trace_sink_->push_back(PendingTrace{flush_order_key_, ev});
    return;
  }
  if (engine_.in_worker_phase()) {
    trace_buffers_[engine_.current_shard()].push_back(
        PendingTrace{engine_.current_key(), ev});
    return;
  }
  tracer_->record(ev);
}

void Machine::send_packet(ClusterId src, ClusterId dst, std::size_t bytes,
                          std::any payload) {
  check_cluster(src);
  check_cluster(dst);

  auto& src_metrics = metrics_.clusters[src.index];
  src_metrics.packets_out += 1;
  src_metrics.bytes_out += bytes;
  metrics_.network
      .traffic_matrix[src.index * config_.clusters + dst.index] += 1;

  if (src == dst) {
    // Intra-cluster handoffs go through shared memory, never drop, and
    // touch only the sender's own shard — executed inline in every mode.
    auto& nd = net_delta();
    nd.local_messages += 1;
    nd.local_bytes += bytes;
    Cycles start = now() + config_.intra_cluster_latency;
    if (config_.model_memory_contention) {
      const auto transfer = static_cast<Cycles>(
          config_.memory_cycles_per_byte * static_cast<double>(bytes));
      auto& port = clusters_[dst.index].memory_port_free_at;
      start = std::max(start, port);
      port = start + transfer;
      nd.memory_port_busy_cycles += transfer;
      start += transfer;
    }
    record_trace({now(), TraceKind::MessageSent, src, 0xffffffffu, bytes});
    Packet packet{src, dst, bytes, std::move(payload)};
    engine_.schedule_at(
        start, [this, src, dst, bytes, packet = std::move(packet)]() mutable {
          deliver_packet(src, dst, bytes, std::move(packet));
        });
    return;
  }

  // Inter-cluster: reserve the delivery's identity now (so sequence
  // counters advance identically in serial and parallel mode), then launch
  // immediately in serial contexts or at the window barrier during a
  // parallel phase.  The lookahead (network launch latency) guarantees the
  // delivery cannot land before the barrier.
  PendingSend ps{src,   dst,
                 bytes, std::move(payload),
                 now(), engine_.current_key(),
                 engine_.reserve_origin()};
  if (engine_.in_worker_phase()) {
    net_buffers_[engine_.current_shard()].push_back(std::move(ps));
  } else {
    launch_packet(ps);
  }
}

void Machine::launch_packet(PendingSend& ps) {
  auto& l = link(ps.src, ps.dst);
  if (l.severed ||
      (l.drop_probability > 0.0 && net_rng_.chance(l.drop_probability))) {
    drop_packet(ps.src, ps.dst, ps.bytes, ps.send_time);
    return;
  }
  metrics_.network.messages += 1;
  metrics_.network.bytes += ps.bytes;
  const Cycles launch = topology_->launch_delay(ps.src, ps.dst, ps.send_time);
  FEM2_CHECK_MSG(launch >= engine_.window(),
                 "topology launch delay below the PDES lookahead");
  const auto transfer = static_cast<Cycles>(
      topology_->cycles_per_byte(ps.src, ps.dst) *
      static_cast<double>(ps.bytes));
  Cycles start = ps.send_time + launch;
  if (config_.model_network_contention) {
    auto& ch = channel_free_at_[topology_->channel(ps.src, ps.dst)];
    start = std::max(start, ch);
    ch = start + transfer;
    metrics_.network.channel_busy_cycles += transfer;
  }
  const Cycles deliver_at = start + transfer;
  // launch_packet always runs in deterministic serial order (inline or at
  // the window barrier), so sampling here is thread-count invariant.
  metrics_.network.latency.record(deliver_at - ps.send_time);
  record_trace(
      {ps.send_time, TraceKind::MessageSent, ps.src, 0xffffffffu, ps.bytes});
  Packet packet{ps.src, ps.dst, ps.bytes, std::move(ps.payload)};
  const ClusterId src = ps.src;
  const ClusterId dst = ps.dst;
  const std::size_t bytes = ps.bytes;
  engine_.schedule_reserved(
      dst.index, deliver_at, ps.origin,
      [this, src, dst, bytes, packet = std::move(packet)]() mutable {
        deliver_packet(src, dst, bytes, std::move(packet));
      });
}

void Machine::deliver_packet(ClusterId src, ClusterId dst, std::size_t bytes,
                             Packet packet) {
  auto& cl = clusters_[dst.index];
  if (cl.lost) {
    // Nobody is home: the packet evaporates at the dead cluster's network
    // interface.
    drop_packet(src, dst, bytes, now());
    return;
  }
  cl.queue.push_back(std::move(packet));
  auto& cm = metrics_.clusters[dst.index];
  cm.packets_in += 1;
  cm.bytes_in += bytes;
  cm.queue_peak = std::max<std::uint64_t>(cm.queue_peak, cl.queue.size());
  record_trace({now(), TraceKind::MessageDelivered, dst, 0xffffffffu, bytes});
  notify_service(dst);
}

void Machine::flush_network() {
  const std::uint32_t nshards = engine_.shard_count();
  bool have_work = false;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    if (!net_buffers_[s].empty() || !trace_buffers_[s].empty()) {
      have_work = true;
      break;
    }
  }
  if (!have_work) return;

  // Merge buffered sends into exact serial order: per-shard buffers are
  // already sorted by sending-event key (a shard executes its events in
  // key order), and keys never collide across shards.
  std::vector<PendingSend> sends;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    auto& buf = net_buffers_[s];
    std::move(buf.begin(), buf.end(), std::back_inserter(sends));
    buf.clear();
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const PendingSend& a, const PendingSend& b) {
                     return a.order < b.order;
                   });

  std::vector<PendingTrace> records;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    auto& buf = trace_buffers_[s];
    std::move(buf.begin(), buf.end(), std::back_inserter(records));
    buf.clear();
  }

  trace_sink_ = &records;
  for (auto& ps : sends) {
    flush_order_key_ = ps.order;
    launch_packet(ps);
  }
  trace_sink_ = nullptr;

  if (tracer_ != nullptr && !records.empty()) {
    std::stable_sort(records.begin(), records.end(),
                     [](const PendingTrace& a, const PendingTrace& b) {
                       return a.key < b.key;
                     });
    for (const auto& r : records) tracer_->record(r.event);
  }
}

std::optional<Packet> Machine::pop_packet(ClusterId cluster) {
  check_cluster(cluster);
  auto& q = clusters_[cluster.index].queue;
  if (q.empty()) return std::nullopt;
  Packet p = std::move(q.front());
  q.pop_front();
  return p;
}

std::size_t Machine::queue_depth(ClusterId cluster) const {
  check_cluster(cluster);
  return clusters_[cluster.index].queue.size();
}

void Machine::set_cluster_service(ClusterService service) {
  service_ = std::move(service);
}

void Machine::set_work_lost_handler(WorkLostHandler handler) {
  work_lost_ = std::move(handler);
}

void Machine::notify_service(ClusterId cluster) {
  if (service_) service_(cluster);
}

PeId Machine::kernel_pe(ClusterId cluster) const {
  check_cluster(cluster);
  for (std::uint32_t i = 0; i < config_.pes_per_cluster; ++i) {
    const PeId pe{cluster, i};
    if (slot(pe).state.load(std::memory_order_relaxed) != PeState::Failed) {
      return pe;
    }
  }
  return PeId{};
}

PeId Machine::acquire_worker(ClusterId cluster) {
  check_cluster(cluster);
  const PeId kernel = kernel_pe(cluster);
  if (!kernel.valid()) return PeId{};  // cluster entirely failed
  for (std::uint32_t i = 0; i < config_.pes_per_cluster; ++i) {
    const PeId pe{cluster, i};
    if (pe == kernel && config_.pes_per_cluster > 1) continue;
    if (slot(pe).state.load(std::memory_order_relaxed) == PeState::Idle) {
      slot(pe).state.store(PeState::Busy, std::memory_order_relaxed);
      return pe;
    }
  }
  return PeId{};
}

bool Machine::try_acquire_pe(PeId pe) {
  auto& s = slot(pe);
  if (s.state.load(std::memory_order_relaxed) != PeState::Idle) return false;
  s.state.store(PeState::Busy, std::memory_order_relaxed);
  return true;
}

void Machine::release_worker(PeId pe) {
  auto& s = slot(pe);
  const PeState st = s.state.load(std::memory_order_relaxed);
  if (st == PeState::Failed) return;  // died while working
  FEM2_CHECK_MSG(st == PeState::Busy, "releasing a PE that is not busy");
  s.state.store(PeState::Idle, std::memory_order_relaxed);
  // A freed PE may unblock queued messages.
  notify_service(pe.cluster);
}

void Machine::occupy(PeId pe, Cycles duration,
                     std::function<void()> on_complete) {
  auto& s = slot(pe);
  FEM2_CHECK_MSG(s.state.load(std::memory_order_relaxed) != PeState::Failed,
                 "occupying a failed PE");
  const std::uint32_t generation = s.generation;
  auto& pm = metrics_.pes[pe_flat_index(pe)];
  pm.busy_cycles += duration;
  pm.work_items += 1;
  record_trace({now(), TraceKind::WorkStarted, pe.cluster, pe.index, 0});
  // Anchor the completion to the PE's own cluster shard so work stays
  // phase-local even when dispatched from a stop-world (global) context.
  engine_.schedule_on(
      pe.cluster.index, now() + duration,
      [this, pe, generation, on_complete = std::move(on_complete)] {
        record_trace(
            {now(), TraceKind::WorkFinished, pe.cluster, pe.index, 0});
        if (slot(pe).generation != generation) {
          // The PE failed (or was power-cycled) while this work was in
          // flight.
          if (work_lost_) work_lost_(pe.cluster);
          return;
        }
        if (on_complete) on_complete();
      });
}

bool Machine::pe_alive(PeId pe) const {
  return slot(pe).state.load(std::memory_order_relaxed) != PeState::Failed;
}

bool Machine::pe_busy(PeId pe) const {
  return slot(pe).state.load(std::memory_order_relaxed) == PeState::Busy;
}

std::size_t Machine::alive_pes(ClusterId cluster) const {
  check_cluster(cluster);
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < config_.pes_per_cluster; ++i)
    if (pe_alive(PeId{cluster, i})) ++n;
  return n;
}

std::size_t Machine::idle_workers(ClusterId cluster) const {
  check_cluster(cluster);
  const PeId kernel = kernel_pe(cluster);
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < config_.pes_per_cluster; ++i) {
    const PeId pe{cluster, i};
    if (pe == kernel && config_.pes_per_cluster > 1) continue;
    if (slot(pe).state.load(std::memory_order_relaxed) == PeState::Idle) ++n;
  }
  return n;
}

void Machine::fail_pe(PeId pe) {
  auto& s = slot(pe);
  const PeState st = s.state.load(std::memory_order_relaxed);
  if (st == PeState::Failed) return;
  const bool was_busy = st == PeState::Busy;
  s.state.store(PeState::Failed, std::memory_order_relaxed);
  s.generation += 1;
  failed_count_ += 1;
  record_trace({now(), TraceKind::PeFailed, pe.cluster, pe.index, 0});
  if (was_busy && work_lost_) work_lost_(pe.cluster);
  if (alive_pes(pe.cluster) == 0) {
    handle_cluster_death(pe.cluster);
    return;
  }
  // Isolating the fault may promote a new kernel PE; wake the service so it
  // can continue fielding messages.
  notify_service(pe.cluster);
}

void Machine::restore_pe(PeId pe) {
  auto& s = slot(pe);
  if (s.state.load(std::memory_order_relaxed) != PeState::Failed) return;
  s.state.store(PeState::Idle, std::memory_order_relaxed);
  s.generation += 1;
  failed_count_ -= 1;
  auto& cl = clusters_[pe.cluster.index];
  if (cl.lost) {
    // The cluster comes back as a blank node: empty queue, empty memory.
    cl.lost = false;
    failed_clusters_ -= 1;
  }
  notify_service(pe.cluster);
}

std::size_t Machine::failed_pe_count() const { return failed_count_; }

void Machine::fail_cluster(ClusterId cluster) {
  check_cluster(cluster);
  if (clusters_[cluster.index].lost) return;
  for (std::uint32_t i = 0; i < config_.pes_per_cluster; ++i) {
    const PeId pe{cluster, i};
    auto& s = slot(pe);
    const PeState st = s.state.load(std::memory_order_relaxed);
    if (st == PeState::Failed) continue;
    const bool was_busy = st == PeState::Busy;
    s.state.store(PeState::Failed, std::memory_order_relaxed);
    s.generation += 1;
    failed_count_ += 1;
    record_trace({now(), TraceKind::PeFailed, cluster, i, 0});
    if (was_busy && work_lost_) work_lost_(cluster);
  }
  handle_cluster_death(cluster);
}

void Machine::handle_cluster_death(ClusterId cluster) {
  auto& cl = clusters_[cluster.index];
  if (cl.lost) return;
  cl.lost = true;
  failed_clusters_ += 1;
  // Purge everything that lived in the cluster: undecoded input packets and
  // the shared memory's contents die with the hardware.
  for (const auto& p : cl.queue) drop_packet(p.source, cluster, p.bytes, now());
  cl.queue.clear();
  cl.memory_in_use = 0;
  metrics_.clusters[cluster.index].memory_in_use = 0;
  record_trace({now(), TraceKind::ClusterFailed, cluster, 0xffffffffu, 0});
  if (cluster_lost_) cluster_lost_(cluster);
}

bool Machine::cluster_alive(ClusterId cluster) const {
  check_cluster(cluster);
  return !clusters_[cluster.index].lost && alive_pes(cluster) > 0;
}

std::size_t Machine::alive_clusters() const {
  std::size_t n = 0;
  for (std::uint32_t c = 0; c < config_.clusters; ++c)
    if (cluster_alive(ClusterId{c})) ++n;
  return n;
}

std::size_t Machine::failed_cluster_count() const { return failed_clusters_; }

Machine::LinkSlot& Machine::link(ClusterId src, ClusterId dst) {
  check_cluster(src);
  check_cluster(dst);
  return links_[src.index * config_.clusters + dst.index];
}

const Machine::LinkSlot& Machine::link(ClusterId src, ClusterId dst) const {
  check_cluster(src);
  check_cluster(dst);
  return links_[src.index * config_.clusters + dst.index];
}

void Machine::set_drop_probability(double p) {
  FEM2_CHECK_MSG(p >= 0.0 && p < 1.0, "drop probability must be in [0, 1)");
  for (auto& l : links_) l.drop_probability = p;
}

void Machine::set_link_drop_probability(ClusterId src, ClusterId dst,
                                        double p) {
  FEM2_CHECK_MSG(p >= 0.0 && p < 1.0, "drop probability must be in [0, 1)");
  link(src, dst).drop_probability = p;
}

void Machine::fail_link(ClusterId src, ClusterId dst) {
  link(src, dst).severed = true;
  record_trace({now(), TraceKind::LinkFailed, dst, src.index, 0});
}

void Machine::restore_link(ClusterId src, ClusterId dst) {
  link(src, dst).severed = false;
}

bool Machine::link_severed(ClusterId src, ClusterId dst) const {
  return link(src, dst).severed;
}

void Machine::drop_packet(ClusterId src, ClusterId dst, std::size_t bytes,
                          Cycles at) {
  auto& nd = net_delta();
  nd.dropped_messages += 1;
  nd.dropped_bytes += bytes;
  record_trace({at, TraceKind::MessageDropped, dst, src.index, bytes});
}

void Machine::fold_metrics() const {
  for (auto& nd : net_deltas_) {
    metrics_.network.local_messages += nd.local_messages;
    metrics_.network.local_bytes += nd.local_bytes;
    metrics_.network.memory_port_busy_cycles += nd.memory_port_busy_cycles;
    metrics_.network.dropped_messages += nd.dropped_messages;
    metrics_.network.dropped_bytes += nd.dropped_bytes;
    nd = NetDeltas{};
  }
}

const MachineMetrics& Machine::metrics() const {
  fold_metrics();
  return metrics_;
}

void Machine::allocate(ClusterId cluster, std::size_t bytes) {
  check_cluster(cluster);
  auto& cl = clusters_[cluster.index];
  if (cl.memory_in_use + bytes > config_.memory_per_cluster) {
    throw OutOfMemory("cluster " + std::to_string(cluster.index) +
                      " shared memory exhausted: in use " +
                      std::to_string(cl.memory_in_use) + " + request " +
                      std::to_string(bytes) + " > capacity " +
                      std::to_string(config_.memory_per_cluster));
  }
  cl.memory_in_use += bytes;
  auto& cm = metrics_.clusters[cluster.index];
  cm.memory_in_use = cl.memory_in_use;
  cm.memory_high_water = std::max(cm.memory_high_water, cl.memory_in_use);
}

void Machine::release(ClusterId cluster, std::size_t bytes) {
  check_cluster(cluster);
  auto& cl = clusters_[cluster.index];
  FEM2_CHECK_MSG(bytes <= cl.memory_in_use, "releasing more than allocated");
  cl.memory_in_use -= bytes;
  metrics_.clusters[cluster.index].memory_in_use = cl.memory_in_use;
}

std::size_t Machine::memory_in_use(ClusterId cluster) const {
  check_cluster(cluster);
  return clusters_[cluster.index].memory_in_use;
}

}  // namespace fem2::hw
