// Counters for the three quantities the paper's simulation program targets:
// processing (busy cycles per PE), storage (shared-memory high water), and
// communication (messages and bytes, intra- vs inter-cluster).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

struct PeMetrics {
  Cycles busy_cycles = 0;
  std::uint64_t work_items = 0;  ///< dispatches executed on this PE
};

struct ClusterMetrics {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t kernel_dispatches = 0;
  std::size_t memory_in_use = 0;
  std::size_t memory_high_water = 0;
  std::uint64_t queue_peak = 0;  ///< deepest input queue seen
};

/// End-to-end latency distribution of delivered inter-cluster packets
/// (send to delivery, launch latency + contention + transfer).  HDR-style
/// histogram: exact below 16 cycles, then 16 linear sub-buckets per
/// power-of-two range, so any quantile is within ~6% of the true value.
/// Samples are recorded at packet launch, which always happens in the
/// deterministic serial order (inline or at a window barrier), so the
/// histogram is bit-identical across host thread counts.
struct LatencyHistogram {
  static constexpr std::size_t kSub = 16;

  std::uint64_t count = 0;
  Cycles sum = 0;
  Cycles min = 0;
  Cycles max = 0;
  std::vector<std::uint64_t> buckets;  ///< grown on demand

  void record(Cycles v);
  double mean() const;
  /// Upper bound of the bucket holding quantile q (q in [0, 1]).
  Cycles quantile(double q) const;

  static std::size_t bucket_index(Cycles v);
  static Cycles bucket_upper(std::size_t index);
};

struct NetworkMetrics {
  std::uint64_t messages = 0;        ///< inter-cluster only
  std::uint64_t bytes = 0;
  Cycles channel_busy_cycles = 0;    ///< total serialization on channels
  std::uint64_t local_messages = 0;  ///< intra-cluster (shared-memory) sends
  std::uint64_t local_bytes = 0;
  Cycles memory_port_busy_cycles = 0;  ///< shared-memory port serialization

  // Fault model: packets lost to the lossy/severed network or to failed
  // destination clusters.  Dropped packets still count in packets_out /
  // traffic_matrix (the source paid for the send).
  std::uint64_t dropped_messages = 0;
  std::uint64_t dropped_bytes = 0;

  /// Source×destination message counts (row-major, clusters²) — the
  /// communication pattern the paper's simulations were to measure.
  std::vector<std::uint64_t> traffic_matrix;
  std::size_t clusters = 0;

  /// Delivery-latency distribution of inter-cluster packets (drops are not
  /// deliveries and do not sample).
  LatencyHistogram latency;

  std::uint64_t traffic(std::size_t from, std::size_t to) const;
  /// Rendered source×destination table.
  std::string render_traffic_matrix() const;
};

struct MachineMetrics {
  std::vector<PeMetrics> pes;          ///< indexed cluster*ppc + pe
  std::vector<ClusterMetrics> clusters;
  NetworkMetrics network;

  Cycles total_busy_cycles() const;
  double pe_utilization(Cycles elapsed) const;  ///< over alive+failed PEs
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::size_t memory_high_water() const;

  std::string summary(Cycles elapsed) const;

  /// Exhaustive, byte-stable dump of every counter (one line per field).
  /// Two runs are bit-identical iff their dumps compare equal; the
  /// determinism tests diff this across host thread counts.
  std::string dump() const;
};

}  // namespace fem2::hw
