#include "hw/topology.hpp"

#include <algorithm>

#include "hw/fault.hpp"
#include "support/check.hpp"

namespace fem2::hw {

// --- FlatTopology ----------------------------------------------------------

FlatTopology::FlatTopology(std::size_t clusters, Cycles latency, double cpb)
    : clusters_(clusters), latency_(latency), cpb_(cpb) {
  FEM2_CHECK_MSG(clusters_ > 0, "topology needs at least one cluster");
  FEM2_CHECK_MSG(latency_ > 0, "flat launch latency must be positive");
}

FlatTopology::FlatTopology(const MachineConfig& config)
    : FlatTopology(config.clusters, config.network_base_latency,
                   config.network_cycles_per_byte) {}

// --- FatTreeTopology -------------------------------------------------------

FatTreeTopology::FatTreeTopology(std::size_t clusters, Options options)
    : clusters_(clusters), options_(options) {
  FEM2_CHECK_MSG(clusters_ > 0, "topology needs at least one cluster");
  FEM2_CHECK_MSG(options_.pod_size > 0, "fat-tree pods must be non-empty");
  FEM2_CHECK_MSG(options_.edge_latency > 0 && options_.spine_latency > 0,
                 "fat-tree latencies must be positive");
  FEM2_CHECK_MSG(options_.spine_latency >= options_.edge_latency,
                 "spine path cannot be shorter than the edge path");
  pods_ = (clusters_ + options_.pod_size - 1) / options_.pod_size;
}

Cycles FatTreeTopology::launch_delay(ClusterId src, ClusterId dst,
                                     Cycles) const {
  return pod_of(src) == pod_of(dst) ? options_.edge_latency
                                    : options_.spine_latency;
}

double FatTreeTopology::cycles_per_byte(ClusterId src, ClusterId dst) const {
  return pod_of(src) == pod_of(dst) ? options_.edge_cycles_per_byte
                                    : options_.spine_cycles_per_byte;
}

Cycles FatTreeTopology::min_launch_delay() const {
  // With a single pod every path is an edge path; with several, the edge
  // latency is still the minimum because spine >= edge is enforced.
  return options_.edge_latency;
}

std::size_t FatTreeTopology::channel(ClusterId src, ClusterId dst) const {
  if (pod_of(src) == pod_of(dst)) return dst.index;
  return clusters_ + pod_of(src);  // source pod's spine uplink
}

// --- RotorTopology ---------------------------------------------------------

RotorTopology::RotorTopology(std::size_t clusters, Options options)
    : clusters_(clusters), options_(options) {
  FEM2_CHECK_MSG(clusters_ > 0, "topology needs at least one cluster");
  FEM2_CHECK_MSG(options_.base_latency > 0,
                 "rotor base latency must be positive");
  FEM2_CHECK_MSG(options_.slot_cycles > 0,
                 "rotor slots must be at least one cycle");
  slots_ = clusters_ > 1 ? clusters_ - 1 : 1;
}

Cycles RotorTopology::launch_delay(ClusterId src, ClusterId dst,
                                   Cycles at) const {
  if (slots_ == 1) return options_.base_latency;  // always wired
  // Matching k wires i -> (i + k + 1) mod N, so the pair needs matching
  // (dst - src - 1) mod N; wait until it is next active (0 if active now).
  const std::size_t need =
      (dst.index + clusters_ - src.index - 1) % clusters_;
  const Cycles revolution = options_.slot_cycles * slots_;
  const Cycles phase = at % revolution;
  const Cycles slot_begin = static_cast<Cycles>(need) * options_.slot_cycles;
  Cycles wait = 0;
  if (phase < slot_begin) {
    wait = slot_begin - phase;
  } else if (phase >= slot_begin + options_.slot_cycles) {
    wait = revolution - phase + slot_begin;
  }
  return options_.base_latency + wait;
}

Cycles RotorTopology::max_launch_delay() const {
  if (slots_ == 1) return options_.base_latency;
  // Worst case: the needed matching just ended, wait a full revolution
  // minus one slot.
  return options_.base_latency + options_.slot_cycles * (slots_ - 1) +
         options_.slot_cycles - 1;
}

// --- DegradedTopology ------------------------------------------------------

DegradedTopology::DegradedTopology(
    std::shared_ptr<const Topology> base, std::vector<Brownout> brownouts,
    std::vector<std::pair<ClusterId, ClusterId>> severed)
    : base_(std::move(base)),
      brownouts_(std::move(brownouts)),
      severed_(std::move(severed)) {
  FEM2_CHECK_MSG(base_ != nullptr, "degraded topology needs a base");
  for (const Brownout& b : brownouts_) {
    FEM2_CHECK_MSG(b.latency_factor >= 1 && b.bandwidth_factor >= 1.0,
                   "a brownout cannot make a link faster (the window bound "
                   "is the base topology's minimum)");
  }
}

const DegradedTopology::Brownout* DegradedTopology::brownout(
    ClusterId src, ClusterId dst) const {
  for (const Brownout& b : brownouts_) {
    if (b.src == src && b.dst == dst) return &b;
  }
  return nullptr;
}

Cycles DegradedTopology::launch_delay(ClusterId src, ClusterId dst,
                                      Cycles at) const {
  const Cycles base = base_->launch_delay(src, dst, at);
  const Brownout* b = brownout(src, dst);
  return b == nullptr ? base : base * b->latency_factor;
}

double DegradedTopology::cycles_per_byte(ClusterId src, ClusterId dst) const {
  const double base = base_->cycles_per_byte(src, dst);
  const Brownout* b = brownout(src, dst);
  return b == nullptr ? base : base * b->bandwidth_factor;
}

Cycles DegradedTopology::max_launch_delay() const {
  Cycles factor = 1;
  for (const Brownout& b : brownouts_)
    factor = std::max(factor, b.latency_factor);
  return base_->max_launch_delay() * factor;
}

std::vector<std::pair<ClusterId, ClusterId>> DegradedTopology::severed_links()
    const {
  auto out = base_->severed_links();
  out.insert(out.end(), severed_.begin(), severed_.end());
  return out;
}

FaultPlan DegradedTopology::equivalent_fault_plan() const {
  FaultPlan plan;
  for (const auto& [src, dst] : severed_) plan.fail_link(0, src, dst);
  return plan;
}

// --- factory ---------------------------------------------------------------

const std::vector<std::string>& topology_kinds() {
  static const std::vector<std::string> kinds = {"flat", "fattree", "rotor",
                                                 "degraded"};
  return kinds;
}

std::shared_ptr<const Topology> make_topology(const std::string& kind,
                                              const MachineConfig& config) {
  const std::size_t n = config.clusters;
  if (kind == "flat") {
    return std::make_shared<FlatTopology>(config);
  }
  if (kind == "fattree") {
    FatTreeTopology::Options opt;
    // Pods of up to 4 clusters; edge paths beat the flat network, spine
    // paths pay two extra hops and half the bandwidth.
    opt.pod_size = std::min<std::size_t>(4, std::max<std::size_t>(1, n / 2));
    opt.edge_latency = std::max<Cycles>(1, config.network_base_latency * 2 / 3);
    opt.spine_latency = config.network_base_latency * 8 / 5;
    opt.edge_cycles_per_byte = config.network_cycles_per_byte;
    opt.spine_cycles_per_byte = config.network_cycles_per_byte * 2.0;
    return std::make_shared<FatTreeTopology>(n, opt);
  }
  if (kind == "rotor") {
    RotorTopology::Options opt;
    opt.base_latency = std::max<Cycles>(1, config.network_base_latency * 2 / 3);
    opt.slot_cycles = config.network_base_latency * 2;
    opt.cycles_per_byte = config.network_cycles_per_byte / 2.0;
    return std::make_shared<RotorTopology>(n, opt);
  }
  if (kind == "degraded") {
    // Flat network with browned-out ring-neighbor links: latency x4,
    // bandwidth / 4 on every i -> (i+1) mod N link.
    std::vector<DegradedTopology::Brownout> brownouts;
    if (n > 1) {
      for (std::uint32_t i = 0; i < n; ++i) {
        brownouts.push_back(DegradedTopology::Brownout{
            ClusterId{i}, ClusterId{static_cast<std::uint32_t>((i + 1) % n)},
            4, 4.0});
      }
    }
    return std::make_shared<DegradedTopology>(
        std::make_shared<FlatTopology>(config), std::move(brownouts));
  }
  FEM2_CHECK_MSG(false, "unknown topology kind: " + kind);
  return nullptr;
}

}  // namespace fem2::hw
