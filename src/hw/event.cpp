#include "hw/event.hpp"

#include "support/check.hpp"

namespace fem2::hw {

void Engine::schedule(Cycles delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void Engine::schedule_at(Cycles time, Action action) {
  FEM2_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  FEM2_CHECK(action != nullptr);
  queue_.push(Event{time, next_seq_++, std::move(action)});
}

std::uint64_t Engine::run() {
  return run_until(~Cycles{0});
}

std::uint64_t Engine::run_until(Cycles limit) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    // Copy out before pop so the action may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++count;
    ++processed_;
    if (quiescent_hook_ && (queue_.empty() || queue_.top().time != now_)) {
      quiescent_hook_();
    }
  }
  if (idle_hook_ && count > 0 && queue_.empty()) idle_hook_();
  return count;
}

}  // namespace fem2::hw
