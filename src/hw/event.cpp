#include "hw/event.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace fem2::hw {

thread_local Engine::Context* Engine::context_ = nullptr;

Engine::Engine() {
  if (const char* env = std::getenv("FEM2_HOST_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v >= 1 && v <= 256) {
      threads_ = static_cast<unsigned>(v);
    }
  }
}

Engine::~Engine() { stop_pool(); }

void Engine::configure(std::uint32_t clusters, Cycles window) {
  FEM2_CHECK_MSG(!running_, "cannot reconfigure a running engine");
  FEM2_CHECK_MSG(shards_.size() == 1 && shards_[0].queue.empty() &&
                     shards_[0].next_seq == 0,
                 "engine must be configured before any event is scheduled");
  FEM2_CHECK(clusters >= 1);
  shards_ = std::vector<Shard>(clusters + 1);
  window_ = window;
  next_refresh_ = window;
}

void Engine::set_threads(unsigned n) {
  FEM2_CHECK_MSG(!running_, "cannot resize the pool while running");
  threads_ = std::max(1u, n);
  stop_pool();
}

Cycles Engine::now() const {
  return in_context() ? context_->key.time : host_now_;
}

std::uint32_t Engine::current_shard() const {
  return in_context() ? context_->shard : global_shard();
}

EventKey Engine::current_key() const {
  return in_context() ? context_->key
                      : EventKey{host_now_, global_shard(), 0};
}

void Engine::schedule(Cycles delay, Action action) {
  schedule_on(current_shard(), now() + delay, std::move(action));
}

void Engine::schedule_at(Cycles time, Action action) {
  schedule_on(current_shard(), time, std::move(action));
}

void Engine::schedule_on(std::uint32_t shard, Cycles time, Action action) {
  schedule_reserved(shard, time, reserve_origin(), std::move(action));
}

EventOrigin Engine::reserve_origin() {
  const std::uint32_t s = current_shard();
  return EventOrigin{s, shards_[s].next_seq++};
}

void Engine::schedule_reserved(std::uint32_t shard, Cycles time,
                               EventOrigin origin, Action action) {
  FEM2_CHECK_MSG(time >= now(), "cannot schedule an event in the past");
  FEM2_CHECK(action != nullptr);
  FEM2_CHECK(shard < shard_count());
  if (in_worker_phase_ && in_context()) {
    FEM2_CHECK_MSG(shard == context_->shard,
                   "cross-shard scheduling from a parallel phase");
  }
  shards_[shard].queue.push(
      Event{EventKey{time, origin.shard, origin.seq}, std::move(action)});
}

std::uint64_t Engine::run() { return run_until(~Cycles{0}); }

bool Engine::idle() const {
  for (const Shard& s : shards_) {
    if (!s.queue.empty()) return false;
  }
  return true;
}

std::size_t Engine::pending() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.queue.size();
  return n;
}

std::uint64_t Engine::processed() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.executed;
  return n;
}

void Engine::add_barrier_hook(Hook hook) {
  FEM2_CHECK(hook != nullptr);
  barrier_hooks_.push_back(std::move(hook));
}

void Engine::add_refresh_hook(Hook hook) {
  FEM2_CHECK(hook != nullptr);
  refresh_hooks_.push_back(std::move(hook));
}

void Engine::run_barrier_hooks() {
  for (Hook& h : barrier_hooks_) h();
}

void Engine::fire_refresh_up_to(Cycles next_time) {
  if (refresh_hooks_.empty()) return;
  if (window_ == 0) {
    for (Hook& h : refresh_hooks_) h();
    return;
  }
  while (next_refresh_ <= next_time) {
    for (Hook& h : refresh_hooks_) h();
    next_refresh_ += window_;
  }
}

void Engine::maybe_quiescent(Cycles settled) {
  if (!quiescent_hook_) return;
  for (const Shard& s : shards_) {
    if (!s.queue.empty() && s.queue.top().key.time == settled) return;
  }
  quiescent_hook_();
}

void Engine::execute(std::uint32_t shard) {
  Shard& sh = shards_[shard];
  // Move out before pop so the action may schedule more events.
  Event ev = std::move(const_cast<Event&>(sh.queue.top()));
  sh.queue.pop();
  sh.last_key = ev.key;
  Context ctx{this, shard, ev.key};
  Context* prev = context_;
  context_ = &ctx;
  struct Restore {
    Context*& slot;
    Context* prev;
    ~Restore() { slot = prev; }
  } restore{context_, prev};
  ev.action();
  ++sh.executed;
}

void Engine::drain_shard(std::uint32_t shard, const EventKey& stop) {
  Shard& sh = shards_[shard];
  try {
    while (!sh.queue.empty() && sh.queue.top().key < stop) execute(shard);
  } catch (...) {
    sh.error = std::current_exception();
    sh.error_key = sh.last_key;
  }
}

void Engine::rethrow_phase_error() {
  std::uint32_t worst = shard_count();
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    if (shards_[s].error &&
        (worst == shard_count() || shards_[s].error_key < shards_[worst].error_key)) {
      worst = s;
    }
  }
  if (worst == shard_count()) return;
  std::exception_ptr err = shards_[worst].error;
  for (Shard& s : shards_) s.error = nullptr;
  std::rethrow_exception(err);
}

void Engine::worker_main(unsigned slot, std::uint64_t seen) {
  // `seen` is the epoch observed by ensure_pool() before this thread was
  // spawned; loading phase_epoch_ here instead would race with the first
  // phase of the run (the main thread may bump the epoch before this
  // thread is first scheduled, and the wake-up would be missed forever).
  for (;;) {
    while (phase_epoch_.load(std::memory_order_acquire) == seen) {
      if (pool_stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    ++seen;
    if (pool_stop_.load(std::memory_order_acquire)) return;
    const EventKey stop = phase_stop_;
    const std::uint32_t g = global_shard();
    for (std::uint32_t s = slot; s < g; s += pool_stride_) {
      drain_shard(s, stop);
    }
    phase_pending_.fetch_sub(1, std::memory_order_release);
  }
}

void Engine::ensure_pool() {
  const std::uint32_t clusters = shard_count() - 1;
  unsigned want = threads_;
  if (clusters < 2 || window_ == 0) want = 1;
  want = std::min<unsigned>(want, clusters);
  if (want <= 1) {
    if (!workers_.empty()) stop_pool();
    pool_stride_ = 1;
    return;
  }
  if (pool_stride_ == want && workers_.size() == want - 1) return;
  stop_pool();
  pool_stride_ = want;
  workers_.reserve(want - 1);
  const std::uint64_t epoch = phase_epoch_.load(std::memory_order_acquire);
  for (unsigned slot = 1; slot < want; ++slot) {
    workers_.emplace_back(&Engine::worker_main, this, slot, epoch);
  }
}

void Engine::stop_pool() {
  pool_stride_ = 1;
  if (workers_.empty()) return;
  pool_stop_.store(true, std::memory_order_release);
  phase_epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  pool_stop_.store(false, std::memory_order_release);
}

std::uint64_t Engine::run_until(Cycles limit) {
  FEM2_CHECK_MSG(!running_, "engine run() is not reentrant");
  running_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{running_};
  ensure_pool();
  const std::uint64_t start_processed = processed();
  const std::uint32_t g = global_shard();
  for (;;) {
    bool any = false;
    EventKey min_key;
    std::uint32_t min_shard = 0;
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
      const Shard& sh = shards_[s];
      if (sh.queue.empty()) continue;
      const EventKey& k = sh.queue.top().key;
      if (!any || k < min_key) {
        any = true;
        min_key = k;
        min_shard = s;
      }
    }
    if (!any || min_key.time > limit) break;
    fire_refresh_up_to(min_key.time);

    if (min_shard == g) {
      // Host/global events run one at a time, stop-world, between phases.
      execute(g);
      host_now_ = std::max(host_now_, min_key.time);
      run_barrier_hooks();
      maybe_quiescent(min_key.time);
      continue;
    }

    // A cluster phase: every cluster event with key < stop, where stop is
    // the next window boundary, the next global event, or the run limit —
    // whichever comes first.  Lookahead guarantees no event executed in
    // this phase can schedule into another shard before `stop`.
    EventKey stop{window_ == 0 ? min_key.time + 1
                               : (min_key.time / window_ + 1) * window_,
                  0, 0};
    if (limit != ~Cycles{0} && limit + 1 < stop.time) {
      stop = EventKey{limit + 1, 0, 0};
    }
    if (!shards_[g].queue.empty() && shards_[g].queue.top().key < stop) {
      stop = shards_[g].queue.top().key;
    }

    unsigned active = 0;
    std::uint32_t only = min_shard;
    for (std::uint32_t s = 0; s < g; ++s) {
      const Shard& sh = shards_[s];
      if (!sh.queue.empty() && sh.queue.top().key < stop) {
        ++active;
        only = s;
      }
    }

    if (pool_stride_ > 1 && active > 1) {
      // Parallel phase: workers drain their statically assigned shards.
      phase_stop_ = stop;
      in_worker_phase_ = true;
      phase_pending_.store(pool_stride_ - 1, std::memory_order_relaxed);
      phase_epoch_.fetch_add(1, std::memory_order_release);
      for (std::uint32_t s = 0; s < g; s += pool_stride_) {
        drain_shard(s, stop);
      }
      while (phase_pending_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      in_worker_phase_ = false;
      for (std::uint32_t s = 0; s < g; ++s) {
        host_now_ = std::max(host_now_, shards_[s].last_key.time);
      }
      run_barrier_hooks();
      rethrow_phase_error();
      maybe_quiescent(host_now_);
    } else if (active == 1) {
      // Single active shard: drain it inline, serial semantics.
      Shard& sh = shards_[only];
      while (!sh.queue.empty() && sh.queue.top().key < stop) {
        execute(only);
        host_now_ = std::max(host_now_, sh.last_key.time);
      }
      run_barrier_hooks();
      maybe_quiescent(host_now_);
    } else {
      // Serial phase across several shards: interleave by key order.
      for (;;) {
        bool found = false;
        EventKey k;
        std::uint32_t sidx = 0;
        for (std::uint32_t s = 0; s < g; ++s) {
          const Shard& sh = shards_[s];
          if (sh.queue.empty()) continue;
          const EventKey& t = sh.queue.top().key;
          if (t < stop && (!found || t < k)) {
            found = true;
            k = t;
            sidx = s;
          }
        }
        if (!found) break;
        execute(sidx);
        host_now_ = std::max(host_now_, k.time);
      }
      run_barrier_hooks();
      maybe_quiescent(host_now_);
    }
  }
  const std::uint64_t count = processed() - start_processed;
  if (idle_hook_ && count > 0 && idle()) idle_hook_();
  return count;
}

}  // namespace fem2::hw
