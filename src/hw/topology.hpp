// Pluggable inter-cluster network topologies.
//
// The paper's simulation program exists for design-space exploration, and
// the network is the design axis that matters most at scale: the machine
// shape ("sets of clusters communicate through a common communication
// network") says nothing about whether that network is a flat crossbar, a
// fat tree of pods, or a rotor-style circuit switch.  A Topology supplies,
// per directed cluster pair, the launch latency (possibly time-varying),
// the per-byte transfer cost, and the contention channel packets serialize
// on; the Machine consults it for every inter-cluster send.
//
// Determinism contract: the conservative PDES window width of the event
// engine is derived from min_launch_delay(), the greatest lower bound of
// launch_delay over all pairs and all times.  A packet sent at time t in
// window [B, B+W) therefore cannot be delivered before B+W, so cross-shard
// deliveries still happen exclusively at window barriers and results stay
// bit-identical at every host thread count — for every topology.
// launch_delay must be a pure function of (src, dst, at).
//
// Degraded variants (brownouts, severed links) are expressed with
// DegradedTopology; severed links use the same per-link severing the
// FaultPlan machinery drives, so a statically severed topology behaves
// exactly like the equivalent FaultPlan applied at t=0.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/config.hpp"

namespace fem2::hw {

class FaultPlan;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;
  virtual std::size_t clusters() const = 0;

  /// Launch latency of a packet committed to the network at virtual time
  /// `at` on the directed link src -> dst, in cycles.  Pure in (src, dst,
  /// at); must be >= min_launch_delay() for every input (checked at launch
  /// time), since the PDES lookahead is derived from that bound.
  virtual Cycles launch_delay(ClusterId src, ClusterId dst,
                              Cycles at) const = 0;

  /// Per-byte transfer cost of the src -> dst path.
  virtual double cycles_per_byte(ClusterId src, ClusterId dst) const = 0;

  /// Greatest lower bound of launch_delay over all distinct pairs and all
  /// times: the conservative PDES window width.  Must be > 0.
  virtual Cycles min_launch_delay() const = 0;

  /// Least upper bound of launch_delay (fault-free paths).  Feeds derived
  /// timeouts (e.g. the sysvm auto retransmit timeout).
  virtual Cycles max_launch_delay() const = 0;

  /// Contention model: packets mapped to the same channel serialize on it.
  /// The default is the flat model's one inbound channel per destination.
  virtual std::size_t channel_count() const { return clusters(); }
  virtual std::size_t channel(ClusterId src, ClusterId dst) const {
    (void)src;
    return dst.index;
  }

  /// Directed links down from construction time (degraded variants).  The
  /// Machine severs these before the simulation starts, exactly as a
  /// FaultPlan::fail_link at t=0 would.
  virtual std::vector<std::pair<ClusterId, ClusterId>> severed_links() const {
    return {};
  }
};

/// The seed machine shape: one flat network, uniform latency and bandwidth,
/// one inbound channel per destination cluster.  Constructed from the
/// MachineConfig timing fields, it reproduces the pre-topology cost model
/// bit for bit.
class FlatTopology final : public Topology {
 public:
  FlatTopology(std::size_t clusters, Cycles latency, double cpb);
  explicit FlatTopology(const MachineConfig& config);

  std::string name() const override { return "flat"; }
  std::size_t clusters() const override { return clusters_; }
  Cycles launch_delay(ClusterId, ClusterId, Cycles) const override {
    return latency_;
  }
  double cycles_per_byte(ClusterId, ClusterId) const override { return cpb_; }
  Cycles min_launch_delay() const override { return latency_; }
  Cycles max_launch_delay() const override { return latency_; }

 private:
  std::size_t clusters_;
  Cycles latency_;
  double cpb_;
};

/// Two-level fat tree: clusters grouped into pods of `pod_size` behind an
/// edge switch, pods joined by a spine.  Intra-pod traffic pays the edge
/// latency; inter-pod traffic pays the spine latency and serializes on the
/// source pod's uplink (the oversubscription point), while intra-pod
/// traffic serializes on the destination's inbound channel.
class FatTreeTopology final : public Topology {
 public:
  struct Options {
    std::size_t pod_size = 4;
    Cycles edge_latency = 100;    ///< within a pod
    Cycles spine_latency = 240;   ///< across pods (two extra hops)
    double edge_cycles_per_byte = 0.5;
    double spine_cycles_per_byte = 1.0;  ///< oversubscribed uplinks
  };

  FatTreeTopology(std::size_t clusters, Options options);

  std::string name() const override { return "fattree"; }
  std::size_t clusters() const override { return clusters_; }
  Cycles launch_delay(ClusterId src, ClusterId dst, Cycles at) const override;
  double cycles_per_byte(ClusterId src, ClusterId dst) const override;
  Cycles min_launch_delay() const override;
  Cycles max_launch_delay() const override { return options_.spine_latency; }
  std::size_t channel_count() const override { return clusters_ + pods_; }
  std::size_t channel(ClusterId src, ClusterId dst) const override;

  std::size_t pod_of(ClusterId c) const { return c.index / options_.pod_size; }
  std::size_t pods() const { return pods_; }

 private:
  std::size_t clusters_;
  Options options_;
  std::size_t pods_;
};

/// Rotor (round-robin circuit) network: each cluster owns one optical port;
/// a global rotor cycles through N-1 matchings, each held for `slot_cycles`,
/// and in matching k cluster i is wired directly to cluster (i+k+1) mod N.
/// A packet launches when the matching containing its (src, dst) pair is
/// next active, so launch latency is base + a deterministic wait that
/// depends on the send time.  Packets serialize on the source's port.
class RotorTopology final : public Topology {
 public:
  struct Options {
    Cycles base_latency = 100;  ///< circuit is set up: pure propagation
    Cycles slot_cycles = 400;   ///< how long each matching is held
    double cycles_per_byte = 0.25;  ///< optical links are fat
  };

  RotorTopology(std::size_t clusters, Options options);

  std::string name() const override { return "rotor"; }
  std::size_t clusters() const override { return clusters_; }
  Cycles launch_delay(ClusterId src, ClusterId dst, Cycles at) const override;
  double cycles_per_byte(ClusterId, ClusterId) const override {
    return options_.cycles_per_byte;
  }
  Cycles min_launch_delay() const override { return options_.base_latency; }
  Cycles max_launch_delay() const override;
  std::size_t channel(ClusterId src, ClusterId) const override {
    return src.index;
  }

  /// Matchings per rotor revolution (N-1, or 1 for a 2-cluster machine).
  std::size_t slots() const { return slots_; }

 private:
  std::size_t clusters_;
  Options options_;
  std::size_t slots_;
};

/// A wrapper degrading selected directed links of any base topology:
/// browned-out links multiply latency and per-byte cost, severed links are
/// down from t=0 (exactly the effect of FaultPlan::fail_link at time 0,
/// and convertible to that plan via equivalent_fault_plan()).  The window
/// stays the base topology's min launch delay — degradation only ever
/// increases latency, so the lookahead bound remains valid.
class DegradedTopology final : public Topology {
 public:
  struct Brownout {
    ClusterId src;
    ClusterId dst;
    Cycles latency_factor = 4;
    double bandwidth_factor = 4.0;  ///< multiplies cycles_per_byte
  };

  DegradedTopology(std::shared_ptr<const Topology> base,
                   std::vector<Brownout> brownouts,
                   std::vector<std::pair<ClusterId, ClusterId>> severed = {});

  std::string name() const override { return base_->name() + "-degraded"; }
  std::size_t clusters() const override { return base_->clusters(); }
  Cycles launch_delay(ClusterId src, ClusterId dst, Cycles at) const override;
  double cycles_per_byte(ClusterId src, ClusterId dst) const override;
  Cycles min_launch_delay() const override {
    return base_->min_launch_delay();
  }
  Cycles max_launch_delay() const override;
  std::size_t channel_count() const override { return base_->channel_count(); }
  std::size_t channel(ClusterId src, ClusterId dst) const override {
    return base_->channel(src, dst);
  }
  std::vector<std::pair<ClusterId, ClusterId>> severed_links() const override;

  /// The FaultPlan whose t=0 application is equivalent to this topology's
  /// severed set (parity is pinned by the topology test suite).
  FaultPlan equivalent_fault_plan() const;

 private:
  const Brownout* brownout(ClusterId src, ClusterId dst) const;

  std::shared_ptr<const Topology> base_;
  std::vector<Brownout> brownouts_;
  std::vector<std::pair<ClusterId, ClusterId>> severed_;
};

/// Sweep-facing factory: "flat", "fattree", "rotor", or "degraded" (flat
/// with ring-neighbor brownouts), parameterized from the config's timing
/// fields so a flat instance reproduces the config's exact cost model.
std::shared_ptr<const Topology> make_topology(const std::string& kind,
                                              const MachineConfig& config);

/// The topology kinds make_topology accepts, in sweep order.
const std::vector<std::string>& topology_kinds();

}  // namespace fem2::hw
