#include "hw/fault.hpp"

#include <algorithm>
#include <sstream>

#include "hw/machine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace fem2::hw {

FaultPlan& FaultPlan::fail_pe(Cycles at, ClusterId cluster, std::uint32_t pe) {
  actions_.push_back({FaultAction::Kind::FailPe, at, cluster, pe, {}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::restore_pe(Cycles at, ClusterId cluster,
                                 std::uint32_t pe) {
  actions_.push_back({FaultAction::Kind::RestorePe, at, cluster, pe, {}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::fail_cluster(Cycles at, ClusterId cluster) {
  actions_.push_back(
      {FaultAction::Kind::FailCluster, at, cluster, 0, {}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::fail_link(Cycles at, ClusterId src, ClusterId dst) {
  actions_.push_back({FaultAction::Kind::FailLink, at, src, 0, dst, 0.0});
  return *this;
}

FaultPlan& FaultPlan::restore_link(Cycles at, ClusterId src, ClusterId dst) {
  actions_.push_back({FaultAction::Kind::RestoreLink, at, src, 0, dst, 0.0});
  return *this;
}

FaultPlan& FaultPlan::set_drop_probability(Cycles at, double p) {
  actions_.push_back(
      {FaultAction::Kind::SetDropProbability, at, {}, 0, {}, p});
  return *this;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const auto& a : actions_) {
    os << "@" << a.at << " ";
    switch (a.kind) {
      case FaultAction::Kind::FailPe:
        os << "fail-pe c" << a.cluster.index << "p" << a.pe;
        break;
      case FaultAction::Kind::RestorePe:
        os << "restore-pe c" << a.cluster.index << "p" << a.pe;
        break;
      case FaultAction::Kind::FailCluster:
        os << "fail-cluster c" << a.cluster.index;
        break;
      case FaultAction::Kind::FailLink:
        os << "fail-link c" << a.cluster.index << "->c" << a.peer.index;
        break;
      case FaultAction::Kind::RestoreLink:
        os << "restore-link c" << a.cluster.index << "->c" << a.peer.index;
        break;
      case FaultAction::Kind::SetDropProbability:
        os << "set-drop-probability " << a.probability;
        break;
    }
    os << "\n";
  }
  return os.str();
}

FaultPlan FaultPlan::randomized(const MachineConfig& config,
                                const ChaosSpec& spec, std::uint64_t seed) {
  FEM2_CHECK_MSG(spec.cluster_kills < config.clusters,
                 "chaos plan must leave at least one cluster alive");
  FEM2_CHECK(spec.window_end > spec.window_begin);
  support::Rng rng(seed);
  FaultPlan plan;

  auto draw_time = [&] {
    return spec.window_begin +
           static_cast<Cycles>(rng.next_below(
               spec.window_end - spec.window_begin));
  };

  if (spec.drop_probability > 0.0) {
    plan.set_drop_probability(spec.window_begin, spec.drop_probability);
  }

  // Pick the doomed clusters first so PE kills can avoid them.
  std::vector<std::uint32_t> order(config.clusters);
  for (std::uint32_t c = 0; c < config.clusters; ++c) order[c] = c;
  rng.shuffle(order);
  std::vector<bool> doomed(config.clusters, false);
  for (std::size_t i = 0; i < spec.cluster_kills; ++i) {
    doomed[order[i]] = true;
    plan.fail_cluster(draw_time(), ClusterId{order[i]});
  }

  std::vector<std::uint32_t> survivors;
  for (std::uint32_t c = 0; c < config.clusters; ++c)
    if (!doomed[c]) survivors.push_back(c);

  for (std::size_t i = 0; i < spec.pe_kills; ++i) {
    const auto c = survivors[rng.next_below(survivors.size())];
    // Spare PE 0 so a PE kill can never silently become a cluster kill on a
    // small cluster; whole-cluster loss is controlled by cluster_kills.
    if (config.pes_per_cluster < 2) continue;
    const auto pe = 1 + static_cast<std::uint32_t>(
                            rng.next_below(config.pes_per_cluster - 1));
    plan.fail_pe(draw_time(), ClusterId{c}, pe);
  }

  for (std::size_t i = 0; i < spec.link_cuts && config.clusters > 1; ++i) {
    const auto src = static_cast<std::uint32_t>(
        rng.next_below(config.clusters));
    auto dst = static_cast<std::uint32_t>(
        rng.next_below(config.clusters - 1));
    if (dst >= src) ++dst;
    const auto cut = draw_time();
    plan.fail_link(cut, ClusterId{src}, ClusterId{dst});
    // Heal the cut later in the window so reliable transport can recover.
    plan.restore_link(cut + (spec.window_end - cut) / 2, ClusterId{src},
                      ClusterId{dst});
  }

  std::stable_sort(plan.actions_.begin(), plan.actions_.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultInjector::FaultInjector(Machine& machine, FaultPlan plan)
    : machine_(machine), plan_(std::move(plan)) {}

void FaultInjector::arm() {
  FEM2_CHECK_MSG(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  for (const auto& action : plan_.actions()) {
    machine_.engine().schedule_at(
        std::max(action.at, machine_.now()),
        [this, &action] { apply(action); });
  }
}

void FaultInjector::apply(const FaultAction& action) {
  fired_ += 1;
  switch (action.kind) {
    case FaultAction::Kind::FailPe:
      machine_.fail_pe({action.cluster, action.pe});
      break;
    case FaultAction::Kind::RestorePe:
      machine_.restore_pe({action.cluster, action.pe});
      break;
    case FaultAction::Kind::FailCluster:
      machine_.fail_cluster(action.cluster);
      break;
    case FaultAction::Kind::FailLink:
      machine_.fail_link(action.cluster, action.peer);
      break;
    case FaultAction::Kind::RestoreLink:
      machine_.restore_link(action.cluster, action.peer);
      break;
    case FaultAction::Kind::SetDropProbability:
      machine_.set_drop_probability(action.probability);
      break;
  }
}

}  // namespace fem2::hw
