// Snapshot files: a checkpoint of the whole object table (every version
// chain) written atomically, after which the write-ahead log up to that
// point is redundant and can be truncated (log compaction).
//
// Atomicity: the snapshot is written to `<path>.tmp`, fsync'd, then
// renamed over `<path>` (rename within a directory is atomic on POSIX),
// and the directory is fsync'd.  Recovery therefore sees either the old
// snapshot or the new one, never a half-written file; the CRC trailer
// turns any other corruption into a hard error instead of silent loss.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/vfs.hpp"

namespace fem2::db {

struct SnapshotVersion {
  std::uint64_t revision = 0;
  bool deleted = false;
  std::uint64_t txn = 0;
  std::string kind;
  std::string value;

  bool operator==(const SnapshotVersion&) const = default;
};

struct SnapshotChain {
  std::string name;
  std::vector<SnapshotVersion> versions;  ///< ascending revision

  bool operator==(const SnapshotChain&) const = default;
};

struct SnapshotData {
  std::uint64_t next_txn = 1;
  std::vector<SnapshotChain> chains;  ///< sorted by name

  bool operator==(const SnapshotData&) const = default;
};

/// Write `data` to `path` atomically (tmp + fsync + rename + dir fsync).
/// Every step that fails — including the directory fsync that makes the
/// rename durable — throws IoError; a snapshot is only "written" once the
/// whole chain succeeded.
void write_snapshot(Vfs& vfs, const std::string& path,
                    const SnapshotData& data);
void write_snapshot(const std::string& path, const SnapshotData& data);

/// Load a snapshot.  Returns nullopt when the file does not exist; throws
/// db::Error on a corrupt or incompatible file.
std::optional<SnapshotData> load_snapshot(Vfs& vfs, const std::string& path);
std::optional<SnapshotData> load_snapshot(const std::string& path);

}  // namespace fem2::db
