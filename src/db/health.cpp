#include "db/health.hpp"

namespace fem2::db {

FailureResponse failure_response(FailureSite site) {
  switch (site) {
    case FailureSite::AppendRollbackOk:
      // The log is exactly as it was before the transaction: a clean
      // failure (an ENOSPC disk fails every commit this way without
      // degrading the engine).
      return FailureResponse::FailOperation;
    case FailureSite::AppendRollbackFailed:
      // The log holds a torn frame we could not remove.
      return FailureResponse::Degrade;
    case FailureSite::CommitFsyncFailed:
      // The fsync-gate hazard: records sit in the file undurable, and the
      // next successful fsync would durably publish a failed commit.
      return FailureResponse::Degrade;
    case FailureSite::CheckpointSnapshotWriteFailed:
      // Nothing published; the previous snapshot plus the intact log
      // still recover everything.
      return FailureResponse::FailOperation;
    case FailureSite::CheckpointLogResetFailed:
      // Snapshot published but the log's in-memory counters may no
      // longer match the file: stop trusting it.
      return FailureResponse::Degrade;
  }
  return FailureResponse::Degrade;  // unreachable; fail safe
}

std::string_view failure_site_name(FailureSite site) {
  switch (site) {
    case FailureSite::AppendRollbackOk:
      return "append-rollback-ok";
    case FailureSite::AppendRollbackFailed:
      return "append-rollback-failed";
    case FailureSite::CommitFsyncFailed:
      return "commit-fsync-failed";
    case FailureSite::CheckpointSnapshotWriteFailed:
      return "checkpoint-snapshot-write-failed";
    case FailureSite::CheckpointLogResetFailed:
      return "checkpoint-log-reset-failed";
  }
  return "unknown-failure-site";
}

HealthModel::Transition HealthModel::on_failure(FailureSite site,
                                                std::string reason) {
  Transition t;
  t.response = failure_response(site);
  if (t.response == FailureResponse::Degrade && !degraded_) {
    degraded_ = true;
    reason_ = std::move(reason);
    t.entered_degraded = true;
  }
  return t;
}

bool HealthModel::on_success() {
  if (sticky_ || !degraded_) return false;
  degraded_ = false;  // the defect: success masks an earlier degrade
  reason_.clear();
  return true;
}

void HealthModel::on_recover() {
  degraded_ = false;
  reason_.clear();
}

}  // namespace fem2::db
