#include "db/retry.hpp"

#include <algorithm>
#include <thread>

namespace fem2::db {

RetryPolicy RetryPolicy::none() {
  RetryPolicy policy;
  policy.max_attempts = 1;
  return policy;
}

RetrySchedule::RetrySchedule(RetryPolicy policy)
    : policy_(policy), rng_(policy.seed) {}

std::optional<std::chrono::microseconds> RetrySchedule::next_delay() {
  if (retries_ + 1 >= policy_.max_attempts) return std::nullopt;

  double base = static_cast<double>(policy_.initial_backoff.count());
  for (std::size_t i = 0; i < retries_; ++i) base *= policy_.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy_.max_backoff.count()));

  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  const double scaled = base * (1.0 - jitter * rng_.uniform());
  const auto delay =
      std::chrono::microseconds(static_cast<std::int64_t>(scaled));

  if (policy_.overall_timeout.count() > 0 &&
      total_ + delay > policy_.overall_timeout)
    return std::nullopt;

  retries_ += 1;
  total_ += delay;
  return delay;
}

void sleep_for(std::chrono::microseconds delay) {
  std::this_thread::sleep_for(delay);
}

}  // namespace fem2::db
