#include "db/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "db/bytes.hpp"
#include "db/crc32.hpp"

namespace fem2::db {

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw Error(what + " '" + path + "': " + std::strerror(errno));
}

std::string encode_payload(const WalRecord& record) {
  std::string payload;
  append_u8(payload, static_cast<std::uint8_t>(record.type));
  append_u64(payload, record.txn);
  switch (record.type) {
    case RecordType::Put:
      append_string(payload, record.name);
      append_string(payload, record.kind);
      append_string(payload, record.value);
      append_u64(payload, record.revision);
      break;
    case RecordType::Erase:
      append_string(payload, record.name);
      append_u64(payload, record.revision);
      break;
    case RecordType::TxnBegin:
    case RecordType::TxnCommit:
    case RecordType::TxnAbort:
      break;
  }
  return payload;
}

bool decode_payload(std::string_view payload, WalRecord& record) {
  Cursor cursor(payload);
  std::uint8_t type = 0;
  if (!cursor.read_u8(type) || !cursor.read_u64(record.txn)) return false;
  if (type < static_cast<std::uint8_t>(RecordType::TxnBegin) ||
      type > static_cast<std::uint8_t>(RecordType::TxnAbort))
    return false;
  record.type = static_cast<RecordType>(type);
  record.name.clear();
  record.kind.clear();
  record.value.clear();
  record.revision = 0;
  switch (record.type) {
    case RecordType::Put:
      if (!cursor.read_string(record.name) ||
          !cursor.read_string(record.kind) ||
          !cursor.read_string(record.value) ||
          !cursor.read_u64(record.revision))
        return false;
      break;
    case RecordType::Erase:
      if (!cursor.read_string(record.name) ||
          !cursor.read_u64(record.revision))
        return false;
      break;
    case RecordType::TxnBegin:
    case RecordType::TxnCommit:
    case RecordType::TxnAbort:
      break;
  }
  return cursor.remaining() == 0;
}

}  // namespace

std::string encode_record(const WalRecord& record) {
  const std::string payload = encode_payload(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32(frame, crc32c(payload));
  frame += payload;
  return frame;
}

DecodeStatus decode_record(std::string_view buffer, std::size_t& offset,
                           WalRecord& record) {
  Cursor cursor(buffer.substr(offset));
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  if (!cursor.read_u32(length) || !cursor.read_u32(crc))
    return DecodeStatus::Truncated;
  if (cursor.remaining() < length) return DecodeStatus::Truncated;
  const std::string_view payload =
      buffer.substr(offset + kFrameHeaderBytes, length);
  if (crc32c(payload) != crc) return DecodeStatus::Corrupt;
  if (!decode_payload(payload, record)) return DecodeStatus::Corrupt;
  offset += kFrameHeaderBytes + length;
  return DecodeStatus::Ok;
}

Wal::Wal(std::string path, std::optional<std::uint64_t> truncate_to,
         std::uint64_t recovered_records)
    : path_(std::move(path)), records_(recovered_records) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw_errno("cannot open write-ahead log", path_);
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) throw_errno("cannot seek write-ahead log", path_);
  bytes_ = static_cast<std::uint64_t>(size);
  if (truncate_to && *truncate_to < bytes_) {
    if (::ftruncate(fd_, static_cast<off_t>(*truncate_to)) != 0)
      throw_errno("cannot truncate write-ahead log", path_);
    if (::lseek(fd_, static_cast<off_t>(*truncate_to), SEEK_SET) < 0)
      throw_errno("cannot seek write-ahead log", path_);
    bytes_ = *truncate_to;
  }
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::append(const WalRecord& record) {
  const std::string frame = encode_record(record);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot append to write-ahead log", path_);
    }
    written += static_cast<std::size_t>(n);
  }
  bytes_ += frame.size();
  records_ += 1;
}

void Wal::sync() {
  if (::fsync(fd_) != 0) throw_errno("cannot fsync write-ahead log", path_);
}

void Wal::reset() {
  if (::ftruncate(fd_, 0) != 0)
    throw_errno("cannot truncate write-ahead log", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0)
    throw_errno("cannot seek write-ahead log", path_);
  sync();
  bytes_ = 0;
  records_ = 0;
}

ReplayResult Wal::replay(const std::string& path) {
  ReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // no log yet — an empty database
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  result.total_bytes = data.size();

  std::size_t offset = 0;
  WalRecord record;
  while (offset < data.size()) {
    const DecodeStatus status = decode_record(data, offset, record);
    if (status != DecodeStatus::Ok) break;
    result.records.push_back(record);
    result.valid_bytes = offset;
  }
  result.torn_tail = result.valid_bytes < result.total_bytes;
  return result;
}

}  // namespace fem2::db
