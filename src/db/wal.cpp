#include "db/wal.hpp"

#include "db/bytes.hpp"
#include "db/crc32.hpp"

namespace fem2::db {

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

std::string encode_payload(const WalRecord& record) {
  std::string payload;
  append_u8(payload, static_cast<std::uint8_t>(record.type));
  append_u64(payload, record.txn);
  switch (record.type) {
    case RecordType::Put:
      append_string(payload, record.name);
      append_string(payload, record.kind);
      append_string(payload, record.value);
      append_u64(payload, record.revision);
      break;
    case RecordType::Erase:
      append_string(payload, record.name);
      append_u64(payload, record.revision);
      break;
    case RecordType::TxnBegin:
    case RecordType::TxnCommit:
    case RecordType::TxnAbort:
      break;
  }
  return payload;
}

bool decode_payload(std::string_view payload, WalRecord& record) {
  Cursor cursor(payload);
  std::uint8_t type = 0;
  if (!cursor.read_u8(type) || !cursor.read_u64(record.txn)) return false;
  if (type < static_cast<std::uint8_t>(RecordType::TxnBegin) ||
      type > static_cast<std::uint8_t>(RecordType::TxnAbort))
    return false;
  record.type = static_cast<RecordType>(type);
  record.name.clear();
  record.kind.clear();
  record.value.clear();
  record.revision = 0;
  switch (record.type) {
    case RecordType::Put:
      if (!cursor.read_string(record.name) ||
          !cursor.read_string(record.kind) ||
          !cursor.read_string(record.value) ||
          !cursor.read_u64(record.revision))
        return false;
      break;
    case RecordType::Erase:
      if (!cursor.read_string(record.name) ||
          !cursor.read_u64(record.revision))
        return false;
      break;
    case RecordType::TxnBegin:
    case RecordType::TxnCommit:
    case RecordType::TxnAbort:
      break;
  }
  return cursor.remaining() == 0;
}

}  // namespace

std::string encode_record(const WalRecord& record) {
  const std::string payload = encode_payload(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32(frame, crc32c(payload));
  frame += payload;
  return frame;
}

DecodeStatus decode_record(std::string_view buffer, std::size_t& offset,
                           WalRecord& record) {
  Cursor cursor(buffer.substr(offset));
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  if (!cursor.read_u32(length) || !cursor.read_u32(crc))
    return DecodeStatus::Truncated;
  if (cursor.remaining() < length) return DecodeStatus::Truncated;
  const std::string_view payload =
      buffer.substr(offset + kFrameHeaderBytes, length);
  if (crc32c(payload) != crc) return DecodeStatus::Corrupt;
  if (!decode_payload(payload, record)) return DecodeStatus::Corrupt;
  offset += kFrameHeaderBytes + length;
  return DecodeStatus::Ok;
}

Wal::Wal(std::shared_ptr<Vfs> vfs, std::string path,
         std::optional<std::uint64_t> truncate_to,
         std::uint64_t recovered_records)
    : path_(std::move(path)), records_(recovered_records) {
  FEM2_CHECK_MSG(vfs != nullptr, "Wal needs a Vfs");
  file_ = vfs->open_append(path_);
  bytes_ = file_->size();
  if (truncate_to && *truncate_to < bytes_) {
    file_->truncate(*truncate_to);
    bytes_ = *truncate_to;
  }
}

Wal::Wal(std::string path, std::optional<std::uint64_t> truncate_to,
         std::uint64_t recovered_records)
    : Wal(Vfs::posix(), std::move(path), truncate_to, recovered_records) {}

void Wal::append(const WalRecord& record) {
  FEM2_CHECK_MSG(!torn_, "write-ahead log tail is torn; recover first");
  const std::string frame = encode_record(record);
  try {
    file_->write_all(frame.data(), frame.size());
  } catch (const IoError&) {
    // Part of the frame may have reached the file.  Shear it so the file
    // offset and our counters agree again; if even that fails, the tail
    // is torn and the log must not accept further appends.
    try {
      file_->truncate(bytes_);
    } catch (const IoError&) {
      torn_ = true;
    }
    throw;
  }
  bytes_ += frame.size();
  records_ += 1;
}

void Wal::sync() { file_->sync(); }

void Wal::truncate_to(std::uint64_t bytes, std::uint64_t records) {
  FEM2_CHECK_MSG(bytes <= bytes_, "cannot roll the log forward");
  file_->truncate(bytes);
  bytes_ = bytes;
  records_ = records;
  torn_ = false;
}

void Wal::reset() {
  file_->truncate(0);
  file_->sync();
  bytes_ = 0;
  records_ = 0;
  torn_ = false;
}

ReplayResult Wal::replay(Vfs& vfs, const std::string& path) {
  ReplayResult result;
  const auto data = vfs.read_file(path);
  if (!data) return result;  // no log yet — an empty database
  result.total_bytes = data->size();

  std::size_t offset = 0;
  WalRecord record;
  while (offset < data->size()) {
    const DecodeStatus status = decode_record(*data, offset, record);
    if (status != DecodeStatus::Ok) break;
    result.records.push_back(record);
    result.valid_bytes = offset;
  }
  result.torn_tail = result.valid_bytes < result.total_bytes;
  return result;
}

ReplayResult Wal::replay(const std::string& path) {
  return replay(*Vfs::posix(), path);
}

}  // namespace fem2::db
