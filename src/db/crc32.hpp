// CRC-32C (Castagnoli) — the checksum framing every fem2-db record and
// snapshot carries so recovery can tell a torn tail from valid data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fem2::db {

/// One-shot CRC-32C over a buffer.  `seed` chains incremental computation:
/// crc32c(b, crc32c(a)) == crc32c(a + b).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) {
  return crc32c(data.data(), data.size(), seed);
}

}  // namespace fem2::db
