// The write-ahead log: the durability backbone of fem2-db.
//
// Commit protocol (fsync-point discipline): a committing transaction
// appends TxnBegin, one Put/Erase per write, then TxnCommit, and only then
// issues a single fsync.  The fsync return is the commit point — before it
// the transaction may vanish in a crash, after it the transaction must
// survive any crash.  Recovery replays only transactions whose TxnCommit
// record is fully on disk; a torn tail (truncated or CRC-corrupt suffix)
// is discarded, never fatal.
//
// All file traffic goes through a Vfs, so the same log code runs over the
// real filesystem and over FaultVfs in chaos tests.  A failed append
// shears its own partial frame so the in-memory counters and the file
// offset never disagree; if even that shear fails, the log reports
// torn() and the engine must stop trusting it.
//
// Record framing, little-endian:
//   [u32 payload_bytes][u32 crc32c(payload)][payload]
//   payload = [u8 type][type-specific fields]
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/vfs.hpp"

namespace fem2::db {

enum class RecordType : std::uint8_t {
  TxnBegin = 1,
  Put = 2,
  Erase = 3,
  TxnCommit = 4,
  TxnAbort = 5,
};

/// One logical WAL record.  Put carries the full object state; Erase only
/// the name.  Both carry the revision the write was assigned at commit.
struct WalRecord {
  RecordType type = RecordType::TxnBegin;
  std::uint64_t txn = 0;
  std::string name;
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;

  bool operator==(const WalRecord&) const = default;
};

/// Frame one record (header + CRC + payload).
std::string encode_record(const WalRecord& record);

enum class DecodeStatus {
  Ok,         ///< one complete, CRC-valid record decoded
  Truncated,  ///< buffer ends mid-record — a torn tail
  Corrupt,    ///< framing present but CRC or type invalid
};

/// Decode the record starting at `offset`; on Ok advances `offset` past it.
DecodeStatus decode_record(std::string_view buffer, std::size_t& offset,
                           WalRecord& record);

struct ReplayResult {
  std::vector<WalRecord> records;  ///< complete, CRC-valid prefix, in order
  std::uint64_t valid_bytes = 0;   ///< end offset of the last valid record
  std::uint64_t total_bytes = 0;   ///< file size as found on disk
  bool torn_tail = false;          ///< trailing bytes were discarded
};

/// Append-only log file with explicit sync points.
class Wal {
 public:
  /// Opens `path` for appending through `vfs`, creating it if absent.  If
  /// `truncate_to` is given, the file is first cut to that many bytes —
  /// recovery uses this to shear a torn tail before new appends go after
  /// valid data.  `recovered_records` seeds the records() counter.
  Wal(std::shared_ptr<Vfs> vfs, std::string path,
      std::optional<std::uint64_t> truncate_to = std::nullopt,
      std::uint64_t recovered_records = 0);

  /// Convenience: open over the real filesystem.
  explicit Wal(std::string path,
               std::optional<std::uint64_t> truncate_to = std::nullopt,
               std::uint64_t recovered_records = 0);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one framed record (buffered in the OS; not yet durable).  On
  /// an I/O failure the partial frame is truncated away before the error
  /// propagates, so the log stays at a frame boundary; if that shear also
  /// fails, torn() turns true and the file must not be trusted for
  /// further appends.
  void append(const WalRecord& record);

  /// The fsync point: everything appended so far becomes durable.
  void sync();

  /// Roll the log back to an earlier frame boundary — the engine's
  /// transaction rollback after a mid-commit append failure.  Clears the
  /// torn flag on success.
  void truncate_to(std::uint64_t bytes, std::uint64_t records);

  /// Truncate the log to empty (after a checkpoint made it redundant).
  void reset();

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

  /// True when a failed append could not shear its partial frame: the
  /// on-disk tail no longer matches bytes().
  bool torn() const { return torn_; }

  /// Tolerant scan of a log file: returns every complete record up to the
  /// first truncated/corrupt frame.  A missing file is an empty log.
  static ReplayResult replay(Vfs& vfs, const std::string& path);
  static ReplayResult replay(const std::string& path);

 private:
  std::string path_;
  std::unique_ptr<VfsFile> file_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  bool torn_ = false;
};

}  // namespace fem2::db
