// The write-ahead log: the durability backbone of fem2-db.
//
// Commit protocol (fsync-point discipline): a committing transaction
// appends TxnBegin, one Put/Erase per write, then TxnCommit, and only then
// issues a single fsync.  The fsync return is the commit point — before it
// the transaction may vanish in a crash, after it the transaction must
// survive any crash.  Recovery replays only transactions whose TxnCommit
// record is fully on disk; a torn tail (truncated or CRC-corrupt suffix)
// is discarded, never fatal.
//
// Record framing, little-endian:
//   [u32 payload_bytes][u32 crc32c(payload)][payload]
//   payload = [u8 type][type-specific fields]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace fem2::db {

/// Recoverable database-layer failure (I/O errors, corrupt snapshots).
class Error : public support::Error {
 public:
  using support::Error::Error;
};

enum class RecordType : std::uint8_t {
  TxnBegin = 1,
  Put = 2,
  Erase = 3,
  TxnCommit = 4,
  TxnAbort = 5,
};

/// One logical WAL record.  Put carries the full object state; Erase only
/// the name.  Both carry the revision the write was assigned at commit.
struct WalRecord {
  RecordType type = RecordType::TxnBegin;
  std::uint64_t txn = 0;
  std::string name;
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;

  bool operator==(const WalRecord&) const = default;
};

/// Frame one record (header + CRC + payload).
std::string encode_record(const WalRecord& record);

enum class DecodeStatus {
  Ok,         ///< one complete, CRC-valid record decoded
  Truncated,  ///< buffer ends mid-record — a torn tail
  Corrupt,    ///< framing present but CRC or type invalid
};

/// Decode the record starting at `offset`; on Ok advances `offset` past it.
DecodeStatus decode_record(std::string_view buffer, std::size_t& offset,
                           WalRecord& record);

struct ReplayResult {
  std::vector<WalRecord> records;  ///< complete, CRC-valid prefix, in order
  std::uint64_t valid_bytes = 0;   ///< end offset of the last valid record
  std::uint64_t total_bytes = 0;   ///< file size as found on disk
  bool torn_tail = false;          ///< trailing bytes were discarded
};

/// Append-only log file with explicit sync points.
class Wal {
 public:
  /// Opens `path` for appending, creating it if absent.  If `truncate_to`
  /// is given, the file is first cut to that many bytes — recovery uses
  /// this to shear a torn tail before new appends go after valid data.
  /// `recovered_records` seeds the records() counter after a replay.
  explicit Wal(std::string path,
               std::optional<std::uint64_t> truncate_to = std::nullopt,
               std::uint64_t recovered_records = 0);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one framed record (buffered in the OS; not yet durable).
  void append(const WalRecord& record);

  /// The fsync point: everything appended so far becomes durable.
  void sync();

  /// Truncate the log to empty (after a checkpoint made it redundant).
  void reset();

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

  /// Tolerant scan of a log file: returns every complete record up to the
  /// first truncated/corrupt frame.  A missing file is an empty log.
  static ReplayResult replay(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace fem2::db
