#include "db/vfs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fem2::db {

const char* io_op_name(IoOp op) {
  switch (op) {
    case IoOp::Open:
      return "open";
    case IoOp::Read:
      return "read";
    case IoOp::Write:
      return "write";
    case IoOp::Fsync:
      return "fsync";
    case IoOp::Rename:
      return "rename";
    case IoOp::Truncate:
      return "truncate";
    case IoOp::DirSync:
      return "dir_sync";
  }
  return "io";
}

namespace {

std::string io_message(IoOp op, const std::string& path, int code) {
  return std::string(io_op_name(op)) + " failed on '" + path +
         "': " + std::strerror(code);
}

}  // namespace

IoError::IoError(IoOp op, std::string path, int error_code)
    : Error(io_message(op, path, error_code)),
      op_(op),
      path_(std::move(path)),
      code_(error_code) {}

bool IoError::transient() const {
  return code_ == EINTR || code_ == EAGAIN || code_ == EBUSY ||
         code_ == ENOBUFS;
}

void VfsFile::write_all(const char* data, std::size_t bytes) {
  std::size_t written = 0;
  while (written < bytes) {
    written += write_some(data + written, bytes - written);
  }
}

std::string parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// --- PosixVfs ---------------------------------------------------------------

namespace {

class PosixFile : public VfsFile {
 public:
  PosixFile(std::string path, int fd) : VfsFile(std::move(path)), fd_(fd) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t write_some(const char* data, std::size_t bytes) override {
    for (;;) {
      const ssize_t n = ::write(fd_, data, bytes);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      throw IoError(IoOp::Write, path(), errno);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw IoError(IoOp::Fsync, path(), errno);
  }

  void truncate(std::uint64_t bytes) override {
    if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0)
      throw IoError(IoOp::Truncate, path(), errno);
    if (::lseek(fd_, static_cast<off_t>(bytes), SEEK_SET) < 0)
      throw IoError(IoOp::Truncate, path(), errno);
  }

  std::uint64_t size() override {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) throw IoError(IoOp::Open, path(), errno);
    return static_cast<std::uint64_t>(end);
  }

 private:
  int fd_ = -1;
};

std::unique_ptr<VfsFile> posix_open(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw IoError(IoOp::Open, path, errno);
  auto file = std::make_unique<PosixFile>(path, fd);
  if ((flags & O_TRUNC) == 0) file->size();  // position at end for appends
  return file;
}

}  // namespace

std::unique_ptr<VfsFile> PosixVfs::open_append(const std::string& path) {
  return posix_open(path, O_RDWR | O_CREAT);
}

std::unique_ptr<VfsFile> PosixVfs::create_truncate(const std::string& path) {
  return posix_open(path, O_WRONLY | O_CREAT | O_TRUNC);
}

std::optional<std::string> PosixVfs::read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw IoError(IoOp::Open, path, errno);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int code = errno;
      ::close(fd);
      throw IoError(IoOp::Read, path, code);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void PosixVfs::rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0)
    throw IoError(IoOp::Rename, from, errno);
}

void PosixVfs::dir_sync(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw IoError(IoOp::DirSync, dir, errno);
  if (::fsync(fd) != 0) {
    const int code = errno;
    ::close(fd);
    throw IoError(IoOp::DirSync, dir, code);
  }
  ::close(fd);
}

const std::shared_ptr<Vfs>& Vfs::posix() {
  static const std::shared_ptr<Vfs> instance = std::make_shared<PosixVfs>();
  return instance;
}

}  // namespace fem2::db
