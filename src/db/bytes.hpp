// Little-endian byte encoding for fem2-db on-disk structures (WAL records
// and snapshots).  Explicit byte order keeps log files portable across
// hosts; a Cursor never reads past the buffer, so torn/corrupt tails decode
// to a clean "truncated" result instead of UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace fem2::db {

inline void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// u32 length prefix + raw bytes.
inline void append_string(std::string& out, std::string_view v) {
  append_u32(out, static_cast<std::uint32_t>(v.size()));
  out.append(v.data(), v.size());
}

/// Bounds-checked sequential reader.  Every read_* returns false once the
/// buffer is exhausted; the cursor then stays failed.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool read_u8(std::uint8_t& v) {
    if (failed_ || data_.size() - pos_ < 1) return fail();
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (failed_ || data_.size() - pos_ < 4) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (failed_ || data_.size() - pos_ < 8) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool read_string(std::string& v) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (data_.size() - pos_ < len) return fail();
    v.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  bool ok() const { return !failed_; }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace fem2::db
