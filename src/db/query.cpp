#include "db/query.hpp"

namespace fem2::db {

QueryResult Engine::query(const QueryFilter& filter) const {
  std::lock_guard lock(mutex_);
  stats_.queries += 1;

  QueryResult result;
  const auto matches = [&](const std::string& name, const Version& head) {
    if (!filter.kind.empty() && head.kind != filter.kind) return false;
    if (!filter.name_prefix.empty() &&
        name.compare(0, filter.name_prefix.size(), filter.name_prefix) != 0)
      return false;
    return head.revision >= filter.min_revision &&
           head.revision <= filter.max_revision;
  };
  const auto live_head = [&](const std::string& name) -> const Version* {
    const Version* head = current_version_locked(name);
    return (head && !head->deleted) ? head : nullptr;
  };
  // Candidate visitor: count it, re-check every predicate (the planner
  // must never change the result set), respect the limit.  Returns false
  // once the limit makes further candidates moot.
  const auto visit = [&](const std::string& name,
                         const Version& head) -> bool {
    result.scanned += 1;
    if (matches(name, head))
      result.rows.push_back(
          EntryInfo{name, head.kind, head.value.size(), head.revision});
    if (filter.limit != 0 && result.rows.size() >= filter.limit) {
      result.truncated = true;
      return false;
    }
    return true;
  };

  const bool narrows_revision =
      filter.min_revision > 0 || filter.max_revision != kAnyRevision;

  if (narrows_revision) {
    // Ordered (revision, name) index over live heads: walk exactly the
    // revision window, nothing outside it.
    result.plan = "revision-index";
    auto it = revision_index_.lower_bound({filter.min_revision, ""});
    for (; it != revision_index_.end() && it->first <= filter.max_revision;
         ++it) {
      const Version* head = live_head(it->second);
      if (!head) continue;  // index is maintained; stay defensive
      if (!visit(it->second, *head)) break;
    }
  } else if (!filter.name_prefix.empty()) {
    // The object table is ordered by name: a prefix is a bounded range.
    result.plan = "name-range";
    for (auto it = objects_.lower_bound(filter.name_prefix);
         it != objects_.end(); ++it) {
      if (it->first.compare(0, filter.name_prefix.size(),
                            filter.name_prefix) != 0)
        break;
      const Version* head = live_head(it->first);
      if (!head) continue;
      if (!visit(it->first, *head)) break;
    }
  } else if (!filter.kind.empty()) {
    result.plan = "kind-index";
    const auto bucket = kind_index_.find(filter.kind);
    if (bucket != kind_index_.end()) {
      for (const auto& name : bucket->second) {
        const Version* head = live_head(name);
        if (!head) continue;
        if (!visit(name, *head)) break;
      }
    }
  } else {
    result.plan = "scan";
    for (const auto& [name, chain] : objects_) {
      if (chain.versions.empty()) continue;
      const Version& head = chain.versions.back();
      if (head.deleted) continue;
      if (!visit(name, head)) break;
    }
  }
  return result;
}

}  // namespace fem2::db
