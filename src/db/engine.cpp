#include "db/engine.hpp"

#include <algorithm>
#include <filesystem>

#include "db/snapshot.hpp"

namespace fem2::db {

namespace {

std::string conflict_message(const std::string& name, std::uint64_t expected,
                             std::uint64_t actual) {
  std::string msg = "conflict on '" + name + "': ";
  if (expected == 0) {
    msg += "object already exists at revision " + std::to_string(actual);
  } else if (actual == 0) {
    msg += "expected revision " + std::to_string(expected) +
           " but the object does not exist";
  } else {
    msg += "expected revision " + std::to_string(expected) +
           " but current revision is " + std::to_string(actual);
  }
  return msg;
}

}  // namespace

ConflictError::ConflictError(std::string name, std::uint64_t expected,
                             std::uint64_t actual)
    : Error(conflict_message(name, expected, actual)),
      name_(std::move(name)),
      expected_(expected),
      actual_(actual) {}

DegradedError::DegradedError(const std::string& reason)
    : Error("engine is degraded (read-only): " + reason), reason_(reason) {}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      vfs_(options_.vfs ? options_.vfs : Vfs::posix()) {
  FEM2_CHECK_MSG(options_.history_limit >= 1,
                 "history_limit must keep at least the current version");
  if (!options_.directory.empty()) open_locked();
}

Engine::~Engine() = default;

void Engine::open_locked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec)
    throw Error("cannot create database directory '" + options_.directory +
                "': " + ec.message());
  snapshot_path_ = options_.directory + "/snapshot.f2db";
  const std::string wal_path = options_.directory + "/wal.f2db";

  // Phase 1: the last checkpoint.
  if (const auto snapshot = load_snapshot(*vfs_, snapshot_path_)) {
    next_txn_ = snapshot->next_txn;
    for (const auto& chain : snapshot->chains) {
      Chain loaded;
      loaded.versions.reserve(chain.versions.size());
      for (const auto& v : chain.versions)
        loaded.versions.push_back(
            Version{v.revision, v.deleted, v.txn, v.kind, v.value});
      objects_.emplace(chain.name, std::move(loaded));
    }
    stats_.recovered_snapshot = true;
  }

  // Phase 2: replay the log on top — committed transactions only.
  const ReplayResult replayed = Wal::replay(*vfs_, wal_path);
  std::map<std::uint64_t, std::vector<WalRecord>> pending;
  for (const auto& record : replayed.records) {
    // Never reuse a txn id that reached the log, committed or not: a
    // sheared transaction's orphaned writes must not be adopted by a
    // later transaction that happens to get the same id.
    next_txn_ = std::max(next_txn_, record.txn + 1);
    switch (record.type) {
      case RecordType::TxnBegin:
        pending[record.txn].clear();
        break;
      case RecordType::Put:
      case RecordType::Erase:
        pending[record.txn].push_back(record);
        break;
      case RecordType::TxnAbort:
        pending.erase(record.txn);
        break;
      case RecordType::TxnCommit: {
        const auto it = pending.find(record.txn);
        if (it == pending.end()) break;  // compacted away or duplicate
        for (const auto& write : it->second) {
          // Idempotence guard for a crash between snapshot publish and
          // log truncation: the snapshot already holds these versions,
          // and revisions are monotonic per name, so anything at or
          // below the chain's head is a duplicate.
          const auto chain = objects_.find(write.name);
          if (chain != objects_.end() && !chain->second.versions.empty() &&
              chain->second.versions.back().revision >= write.revision)
            continue;
          apply_version_locked(
              write.name,
              Version{write.revision, write.type == RecordType::Erase,
                      write.txn, write.kind, write.value});
        }
        pending.erase(it);
        stats_.recovered_txns += 1;
        break;
      }
    }
  }
  stats_.recovery_discarded_txns = pending.size();
  stats_.recovery_discarded_bytes =
      replayed.total_bytes - replayed.valid_bytes;

  // Shear the torn tail so new commits append after valid data.
  wal_ = std::make_unique<Wal>(vfs_, wal_path, replayed.valid_bytes,
                               replayed.records.size());

  // Snapshot-loaded chains bypass apply_version_locked, so the secondary
  // indexes are rebuilt wholesale once the table is final.
  rebuild_indexes_locked();
}

// --- version-chain primitives (callers hold mutex_) -----------------------

const Engine::Version* Engine::current_version_locked(
    const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end() || it->second.versions.empty()) return nullptr;
  return &it->second.versions.back();
}

Engine::HeadView Engine::effective_head_locked(const std::string& name) const {
  // A batch that reached the log but not yet its fsync has already claimed
  // revisions; later transactions must validate and number against that
  // in-flight head, not the applied table, or two batches would mint the
  // same revision for one name.
  const auto pending = pending_heads_.find(name);
  if (pending != pending_heads_.end()) return pending->second;
  const Version* current = current_version_locked(name);
  if (!current) return HeadView{0, true};
  return HeadView{current->revision, current->deleted};
}

void Engine::check_expected_locked(const std::string& name,
                                   std::uint64_t expected) const {
  if (expected == kAnyRevision) return;
  const HeadView head = effective_head_locked(name);
  const std::uint64_t actual = head.deleted ? 0 : head.revision;
  if (actual != expected) throw ConflictError(name, expected, actual);
}

void Engine::apply_version_locked(const std::string& name, Version version) {
  auto& chain = objects_[name];
  if (!chain.versions.empty()) {
    const Version& old = chain.versions.back();
    if (!old.deleted) {
      revision_index_.erase({old.revision, name});
      const auto bucket = kind_index_.find(old.kind);
      if (bucket != kind_index_.end()) {
        bucket->second.erase(name);
        if (bucket->second.empty()) kind_index_.erase(bucket);
      }
    }
  }
  if (!version.deleted) {
    revision_index_.emplace(version.revision, name);
    kind_index_[version.kind].insert(name);
  }
  chain.versions.push_back(std::move(version));
  if (chain.versions.size() > options_.history_limit)
    chain.versions.erase(chain.versions.begin(),
                         chain.versions.end() -
                             static_cast<std::ptrdiff_t>(
                                 options_.history_limit));
}

void Engine::rebuild_indexes_locked() {
  kind_index_.clear();
  revision_index_.clear();
  for (const auto& [name, chain] : objects_) {
    if (chain.versions.empty()) continue;
    const Version& head = chain.versions.back();
    if (head.deleted) continue;
    revision_index_.emplace(head.revision, name);
    kind_index_[head.kind].insert(name);
  }
}

// --- transactions ---------------------------------------------------------

std::uint64_t Engine::begin() {
  std::lock_guard lock(mutex_);
  ensure_writable_locked();
  const std::uint64_t txn = next_txn_++;
  open_txns_[txn];
  return txn;
}

void Engine::put(std::uint64_t txn, std::string name, std::string kind,
                 std::string value, std::uint64_t expected) {
  std::lock_guard lock(mutex_);
  const auto it = open_txns_.find(txn);
  if (it == open_txns_.end())
    throw Error("no open transaction " + std::to_string(txn));
  it->second.writes.push_back(PendingWrite{
      std::move(name), std::move(kind), std::move(value), expected});
}

void Engine::erase(std::uint64_t txn, std::string name,
                   std::uint64_t expected) {
  std::lock_guard lock(mutex_);
  const auto it = open_txns_.find(txn);
  if (it == open_txns_.end())
    throw Error("no open transaction " + std::to_string(txn));
  it->second.writes.push_back(
      PendingWrite{std::move(name), "", std::nullopt, expected});
}

std::optional<ObjectView> Engine::get(std::uint64_t txn,
                                      const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = open_txns_.find(txn);
  if (it == open_txns_.end())
    throw Error("no open transaction " + std::to_string(txn));
  // Read-your-writes: the latest buffered write to this name wins.
  const auto& writes = it->second.writes;
  for (auto w = writes.rbegin(); w != writes.rend(); ++w) {
    if (w->name != name) continue;
    if (!w->value) return std::nullopt;  // buffered erase
    const Version* current = current_version_locked(name);
    const std::uint64_t base =
        current ? current->revision : 0;  // revision once committed
    return ObjectView{name, w->kind, *w->value, base + 1};
  }
  const Version* current = current_version_locked(name);
  if (!current || current->deleted) return std::nullopt;
  return ObjectView{name, current->kind, current->value, current->revision};
}

std::size_t Engine::commit_writes_locked(std::unique_lock<std::mutex>& lock,
                                         std::uint64_t txn,
                                         std::vector<PendingWrite> writes,
                                         std::uint64_t* last_revision) {
  // Validate every optimistic expectation against the effective state
  // (committed table plus in-flight batch heads) before anything touches
  // the log: a conflicted transaction must leave no trace.
  for (const auto& write : writes) {
    try {
      check_expected_locked(write.name, write.expected);
    } catch (const ConflictError&) {
      stats_.conflicts += 1;
      throw;
    }
  }

  // Assign revisions in write order (a transaction may touch one name
  // twice; each write gets the next revision in the chain).
  std::map<std::string, std::uint64_t> next_revision;
  std::vector<Version> versions;
  versions.reserve(writes.size());
  for (const auto& write : writes) {
    auto [it, inserted] = next_revision.try_emplace(write.name, 0);
    if (inserted) it->second = effective_head_locked(write.name).revision;
    it->second += 1;
    versions.push_back(Version{it->second, !write.value.has_value(), txn,
                               write.kind,
                               write.value ? *write.value : std::string{}});
  }
  if (last_revision && !versions.empty())
    *last_revision = versions.back().revision;

  // Log, then make the commit point durable — with its own fsync on the
  // classic path, or one fsync shared by the whole batch under group
  // commit.
  const bool group = wal_ && options_.sync_on_commit &&
                     options_.group_commit_window.count() > 0;
  if (wal_) {
    const std::uint64_t pre_bytes = wal_->bytes();
    const std::uint64_t pre_records = wal_->records();
    try {
      wal_->append(WalRecord{RecordType::TxnBegin, txn, "", "", "", 0});
      for (std::size_t i = 0; i < writes.size(); ++i) {
        const auto& write = writes[i];
        const auto& version = versions[i];
        wal_->append(WalRecord{
            version.deleted ? RecordType::Erase : RecordType::Put, txn,
            write.name, version.kind, version.value, version.revision});
      }
      wal_->append(WalRecord{RecordType::TxnCommit, txn, "", "", "", 0});
    } catch (const IoError&) {
      stats_.io_errors += 1;
      // Roll the log back to the pre-transaction frame boundary.  If the
      // rollback holds, this was a clean failure — the transaction failed
      // but the log is exactly as before it (any in-flight batch's frames
      // sit below our start), and the engine stays live (an ENOSPC disk
      // fails every commit this way without degrading).
      try {
        wal_->truncate_to(pre_bytes, pre_records);
        fail_locked(FailureSite::AppendRollbackOk, "");
      } catch (const IoError& rollback) {
        fail_locked(FailureSite::AppendRollbackFailed,
                    std::string("append rollback failed: ") +
                        rollback.what());
        // The log tail is now untrustworthy; no in-flight batch can reach
        // a durable fsync, so fail every member cleanly.
        fail_batches_locked(rollback);
      }
      throw;
    }
    if (group)
      return group_commit_locked(lock, txn, std::move(writes),
                                 std::move(versions), pre_bytes, pre_records);
    if (options_.sync_on_commit) {
      try {
        wal_->sync();
      } catch (const IoError& sync_error) {
        stats_.io_errors += 1;
        // The fsync-gate hazard: this transaction's records sit in the
        // file but are not durable, and the NEXT successful fsync would
        // durably publish them even though this commit failed.  Scrub
        // them best-effort, then fail safe: read-only until recover().
        try {
          wal_->truncate_to(pre_bytes, pre_records);
          wal_->sync();
        } catch (...) {
          // The scrub is advisory; degraded mode is the guarantee.
        }
        fail_locked(FailureSite::CommitFsyncFailed,
                    std::string("commit fsync failed: ") + sync_error.what());
        throw;
      }
    }
  }

  for (std::size_t i = 0; i < writes.size(); ++i)
    apply_version_locked(writes[i].name, std::move(versions[i]));
  stats_.commits += 1;

  if (wal_ && !health_.degraded() && options_.compact_after_bytes > 0 &&
      wal_->bytes() > options_.compact_after_bytes) {
    try {
      checkpoint_locked();
    } catch (const IoError&) {
      // The commit is durable and acknowledged; a failed automatic
      // compaction only means the log stays long for now.  Degradation,
      // if the log truncation itself failed, is already recorded.
    }
  }
  return writes.size();
}

std::size_t Engine::group_commit_locked(std::unique_lock<std::mutex>& lock,
                                        std::uint64_t txn,
                                        std::vector<PendingWrite> writes,
                                        std::vector<Version> versions,
                                        std::uint64_t pre_bytes,
                                        std::uint64_t pre_records) {
  // Our frames are in the log but not durable.  Claim the in-flight heads
  // so later transactions validate and number against them, then join (or
  // open) the filling batch.
  std::vector<std::string> names;
  names.reserve(writes.size());
  for (std::size_t i = 0; i < writes.size(); ++i) {
    pending_heads_[writes[i].name] =
        HeadView{versions[i].revision, versions[i].deleted};
    names.push_back(std::move(writes[i].name));
  }

  std::shared_ptr<Batch> batch = filling_;
  const bool leader = batch == nullptr;
  if (leader) {
    batch = std::make_shared<Batch>();
    batch->seq = next_batch_seq_++;
    batch->start_bytes = pre_bytes;
    batch->start_records = pre_records;
    batches_.emplace(batch->seq, batch);
    filling_ = batch;
  }
  const std::size_t write_count = names.size();
  batch->members.push_back(
      Batch::Member{txn, std::move(names), std::move(versions)});
  if (batch->members.size() >= options_.group_commit_max_batch) {
    batch->sealed = true;
    if (filling_ == batch) filling_ = nullptr;
    batch->cv.notify_all();
  }

  if (leader) {
    lead_batch_locked(lock, batch);
  } else {
    batch->cv.wait(lock, [&] { return batch->done; });
  }
  if (batch->failed)
    throw IoError(batch->error_op, batch->error_path, batch->error_code);
  return write_count;
}

void Engine::lead_batch_locked(std::unique_lock<std::mutex>& lock,
                               const std::shared_ptr<Batch>& batch) {
  // Gather members until the window expires, the batch fills, or a
  // failure elsewhere decides the batch's fate for us.
  if (!batch->sealed)
    batch->cv.wait_for(lock, options_.group_commit_window,
                       [&] { return batch->sealed || batch->done; });
  if (!batch->sealed) {
    batch->sealed = true;
    if (filling_ == batch) filling_ = nullptr;
  }

  // Batches fsync and apply in sequence order, so the acknowledged state
  // is always a prefix of the log.
  sync_order_cv_.wait(lock, [&] {
    return batch->done || applied_batch_seq_ + 1 == batch->seq;
  });
  if (batch->done) {  // failed wholesale while we waited our turn
    batches_.erase(batch->seq);
    sync_order_cv_.notify_all();
    return;
  }

  // One fsync covers every member.  The mutex is dropped across it so
  // reads and the next batch's appends proceed while the disk works.
  std::optional<IoError> sync_error;
  lock.unlock();
  try {
    wal_->sync();
  } catch (const IoError& error) {
    sync_error = error;
  }
  lock.lock();

  if (batch->done) {
    // An append-rollback failure degraded the engine while we were
    // syncing; the coordinator already failed every batch, ours
    // included, and our members carry the root cause.  Retire the seq.
    batches_.erase(batch->seq);
    sync_order_cv_.notify_all();
    return;
  }

  if (sync_error) {
    stats_.io_errors += 1;
    // The fsync-gate hazard, batch edition: every frame from this batch's
    // start — ours and any batch appended behind us — sits in the file
    // un-durable, and the NEXT successful fsync would publish them all.
    // Scrub best-effort, then fail safe: read-only until recover(), and
    // every in-flight member fails cleanly with the root cause.
    try {
      wal_->truncate_to(batch->start_bytes, batch->start_records);
      wal_->sync();
    } catch (...) {
      // The scrub is advisory; degraded mode is the guarantee.
    }
    fail_locked(FailureSite::CommitFsyncFailed,
                std::string("group commit fsync failed: ") +
                    sync_error->what());
    fail_batches_locked(*sync_error);
    batches_.erase(batch->seq);
    sync_order_cv_.notify_all();
    return;
  }

  // Durable: apply every member in append order, release the heads this
  // batch claimed, and ack.
  for (auto& member : batch->members) {
    for (std::size_t i = 0; i < member.names.size(); ++i) {
      const auto pending = pending_heads_.find(member.names[i]);
      if (pending != pending_heads_.end() &&
          pending->second.revision == member.versions[i].revision)
        pending_heads_.erase(pending);
      apply_version_locked(member.names[i], std::move(member.versions[i]));
    }
  }
  stats_.commits += batch->members.size();
  stats_.group_batches += 1;
  stats_.group_batched_txns += batch->members.size();
  stats_.group_max_batch =
      std::max<std::uint64_t>(stats_.group_max_batch, batch->members.size());
  applied_batch_seq_ = batch->seq;
  batch->done = true;
  batch->cv.notify_all();
  batches_.erase(batch->seq);
  sync_order_cv_.notify_all();

  // Auto-compaction must not erase frames a later batch appended but has
  // not applied yet, so it only runs once the pipeline is drained.
  if (batches_.empty() && !health_.degraded() &&
      options_.compact_after_bytes > 0 &&
      wal_->bytes() > options_.compact_after_bytes) {
    try {
      checkpoint_locked();
    } catch (const IoError&) {
      // The batch is durable and acknowledged; a failed compaction only
      // means the log stays long for now.
    }
  }
}

void Engine::fail_batches_locked(const IoError& error) {
  // A durability failure degrades the engine, so no in-flight batch can
  // ever reach a durable fsync: fail every member cleanly with the root
  // cause.  Leaders retire their own seq when they wake.
  for (auto& [seq, batch] : batches_) {
    if (batch->done) continue;
    batch->sealed = true;
    batch->done = true;
    batch->failed = true;
    batch->error_op = error.op();
    batch->error_path = error.path();
    batch->error_code = error.code();
    batch->cv.notify_all();
  }
  filling_ = nullptr;
  pending_heads_.clear();
  applied_batch_seq_ = next_batch_seq_ - 1;
  sync_order_cv_.notify_all();
}

std::size_t Engine::commit(std::uint64_t txn) {
  std::unique_lock lock(mutex_);
  ensure_writable_locked();
  auto node = open_txns_.extract(txn);
  if (node.empty()) throw Error("no open transaction " + std::to_string(txn));
  return commit_writes_locked(lock, txn, std::move(node.mapped().writes));
}

void Engine::abort(std::uint64_t txn) {
  std::lock_guard lock(mutex_);
  if (open_txns_.erase(txn) == 0)
    throw Error("no open transaction " + std::to_string(txn));
  stats_.aborts += 1;
}

// --- autocommit -----------------------------------------------------------

std::uint64_t Engine::put(std::string name, std::string kind,
                          std::string value, std::uint64_t expected) {
  std::unique_lock lock(mutex_);
  ensure_writable_locked();
  const std::uint64_t txn = next_txn_++;
  std::vector<PendingWrite> writes;
  writes.push_back(PendingWrite{std::move(name), std::move(kind),
                                std::move(value), expected});
  // The assigned revision comes back through the out-parameter: under
  // group commit the table head may already be past our version by the
  // time the batch lands (a later batch bumped it), so re-reading the
  // chain here would hand the caller someone else's revision.
  std::uint64_t revision = 0;
  commit_writes_locked(lock, txn, std::move(writes), &revision);
  return revision;
}

bool Engine::erase(const std::string& name, std::uint64_t expected) {
  std::unique_lock lock(mutex_);
  ensure_writable_locked();
  const HeadView head = effective_head_locked(name);
  if (head.deleted) {
    // Erasing a missing object is a no-op unless the caller demanded a
    // specific revision.
    if (expected != kAnyRevision && expected != 0)
      throw ConflictError(name, expected, 0);
    return false;
  }
  const std::uint64_t txn = next_txn_++;
  std::vector<PendingWrite> writes;
  writes.push_back(PendingWrite{name, "", std::nullopt, expected});
  commit_writes_locked(lock, txn, std::move(writes));
  return true;
}

// --- reads ----------------------------------------------------------------

std::optional<ObjectView> Engine::get(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const Version* current = current_version_locked(name);
  if (!current || current->deleted) return std::nullopt;
  return ObjectView{name, current->kind, current->value, current->revision};
}

std::optional<ObjectView> Engine::get_at(const std::string& name,
                                         std::uint64_t revision) const {
  std::lock_guard lock(mutex_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  for (const auto& v : it->second.versions) {
    if (v.revision == revision)
      return v.deleted ? std::nullopt
                       : std::optional<ObjectView>(
                             ObjectView{name, v.kind, v.value, v.revision});
  }
  return std::nullopt;
}

std::vector<VersionInfo> Engine::history(const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<VersionInfo> out;
  const auto it = objects_.find(name);
  if (it == objects_.end()) return out;
  out.reserve(it->second.versions.size());
  for (const auto& v : it->second.versions)
    out.push_back(
        VersionInfo{v.revision, v.kind, v.value.size(), v.txn, v.deleted});
  return out;
}

std::vector<EntryInfo> Engine::list() const {
  std::lock_guard lock(mutex_);
  std::vector<EntryInfo> out;
  for (const auto& [name, chain] : objects_) {
    if (chain.versions.empty()) continue;
    const Version& current = chain.versions.back();
    if (current.deleted) continue;
    out.push_back(EntryInfo{name, current.kind, current.value.size(),
                            current.revision});
  }
  return out;
}

bool Engine::contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const Version* current = current_version_locked(name);
  return current && !current->deleted;
}

std::uint64_t Engine::revision_of(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const Version* current = current_version_locked(name);
  return (current && !current->deleted) ? current->revision : 0;
}

std::size_t Engine::size() const {
  std::lock_guard lock(mutex_);
  std::size_t live = 0;
  for (const auto& [name, chain] : objects_)
    live += !chain.versions.empty() && !chain.versions.back().deleted;
  return live;
}

// --- maintenance ----------------------------------------------------------

void Engine::checkpoint_locked() {
  if (!wal_) return;  // nothing to compact in memory mode
  SnapshotData data;
  data.next_txn = next_txn_;
  data.chains.reserve(objects_.size());
  for (const auto& [name, chain] : objects_) {
    SnapshotChain out;
    out.name = name;
    out.versions.reserve(chain.versions.size());
    for (const auto& v : chain.versions)
      out.versions.push_back(
          SnapshotVersion{v.revision, v.deleted, v.txn, v.kind, v.value});
    data.chains.push_back(std::move(out));
  }
  try {
    write_snapshot(*vfs_, snapshot_path_, data);
  } catch (const IoError&) {
    // Nothing published yet: the previous snapshot and the intact log
    // still recover everything, so the engine stays healthy.
    stats_.io_errors += 1;
    stats_.checkpoint_failures += 1;
    fail_locked(FailureSite::CheckpointSnapshotWriteFailed, "");
    throw;
  }
  try {
    wal_->reset();  // the log up to here is now redundant
  } catch (const IoError& reset_error) {
    // The snapshot is published but the log could not be truncated; the
    // log's in-memory counters may no longer match the file, so stop
    // trusting it.  (Recovery handles the published-snapshot + stale-log
    // combination via the replay idempotence guard.)
    stats_.io_errors += 1;
    stats_.checkpoint_failures += 1;
    fail_locked(FailureSite::CheckpointLogResetFailed,
                std::string("log truncation after checkpoint failed: ") +
                    reset_error.what());
    throw;
  }
  stats_.checkpoints += 1;
}

void Engine::checkpoint() {
  std::unique_lock lock(mutex_);
  // A checkpoint truncates the whole log; wait for in-flight batches to
  // drain so it never erases frames that were appended but not yet
  // applied to the table.
  sync_order_cv_.wait(lock, [&] { return batches_.empty(); });
  ensure_writable_locked();
  checkpoint_locked();
}

void Engine::fail_locked(FailureSite site, std::string reason) {
  const auto transition = health_.on_failure(site, std::move(reason));
  if (transition.entered_degraded) stats_.degraded_entries += 1;
}

void Engine::ensure_writable_locked() const {
  if (health_.degraded()) throw DegradedError(health_.reason());
}

bool Engine::degraded() const {
  std::lock_guard lock(mutex_);
  return health_.degraded();
}

std::string Engine::degraded_reason() const {
  std::lock_guard lock(mutex_);
  return health_.reason();
}

void Engine::recover() {
  std::unique_lock lock(mutex_);
  if (options_.directory.empty()) return;  // memory mode never degrades
  // Degradation already failed every in-flight batch; wait for their
  // leaders to retire them so no thread still holds the WAL handle we
  // are about to replace.
  sync_order_cv_.wait(lock, [&] { return batches_.empty(); });
  objects_.clear();
  open_txns_.clear();
  pending_heads_.clear();
  filling_.reset();
  next_batch_seq_ = 1;
  applied_batch_seq_ = 0;
  wal_.reset();
  next_txn_ = 1;
  health_.on_recover();
  stats_.recovered_snapshot = false;
  stats_.recovered_txns = 0;
  open_locked();
  stats_.recoveries += 1;
}

EngineStats Engine::stats() const {
  std::lock_guard lock(mutex_);
  EngineStats out = stats_;
  if (wal_) {
    out.wal_records = wal_->records();
    out.wal_bytes = wal_->bytes();
  }
  return out;
}

EngineState Engine::state() const {
  std::lock_guard lock(mutex_);
  EngineState out;
  out.mode = !wal_ ? "memory" : (health_.degraded() ? "degraded" : "persistent");
  out.chains.reserve(objects_.size());
  for (const auto& [name, chain] : objects_) {
    EngineState::Chain c;
    c.name = name;
    c.versions.reserve(chain.versions.size());
    for (const auto& v : chain.versions)
      c.versions.push_back(
          VersionInfo{v.revision, v.kind, v.value.size(), v.txn, v.deleted});
    out.chains.push_back(std::move(c));
  }
  for (const auto& [id, txn] : open_txns_)
    out.transactions.push_back(EngineState::Txn{id, txn.writes.size()});
  out.stats = stats_;
  if (wal_) {
    out.stats.wal_records = wal_->records();
    out.stats.wal_bytes = wal_->bytes();
  }
  out.index_kinds = kind_index_.size();
  out.index_entries = revision_index_.size();
  out.pending_heads = pending_heads_.size();
  return out;
}

}  // namespace fem2::db
