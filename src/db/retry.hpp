// Bounded, deterministic retry with exponential backoff.
//
// Two failure classes are worth an automatic retry at the session level:
// optimistic-concurrency conflicts (another session won the race; re-read
// and try again) and transient I/O errors (IoError::transient()).  Hard
// failures — EIO, ENOSPC, DegradedError — are not retried: they need
// recovery or an operator, and hammering them only hides that.
//
// Determinism: the jitter that de-synchronizes competing sessions comes
// from a seeded support::Rng, and the overall timeout is a budget on the
// *scheduled* backoff total rather than a wall-clock deadline.  Two runs
// with the same seed therefore make identical retry decisions, which is
// what lets chaos tests assert exact outcomes.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

#include "support/rng.hpp"

namespace fem2::db {

struct RetryPolicy {
  /// Total attempts including the first; 1 = no retries.
  std::size_t max_attempts = 8;
  /// Backoff before the first retry.
  std::chrono::microseconds initial_backoff{500};
  /// Each subsequent backoff multiplies by this, capped at max_backoff.
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{50'000};
  /// Fraction of each backoff randomized away: the delay is drawn
  /// uniformly from [base * (1 - jitter), base].  0 = fully deterministic
  /// delays, 1 = full jitter.
  double jitter = 0.5;
  /// Budget on the total scheduled backoff; exceeding it stops retrying
  /// even if attempts remain.  Zero = no budget.
  std::chrono::microseconds overall_timeout{0};
  /// Seed for the jitter stream (give each session its own).
  std::uint64_t seed = 0x5eedf00dULL;

  /// A policy that never retries.
  static RetryPolicy none();
};

/// The deterministic core: yields the backoff before each retry, or
/// nullopt when the policy says give up.
class RetrySchedule {
 public:
  explicit RetrySchedule(RetryPolicy policy);

  /// Call after a retryable failure.  Returns the delay to wait before
  /// the next attempt, or nullopt when attempts or budget are exhausted.
  std::optional<std::chrono::microseconds> next_delay();

  /// Retries granted so far.
  std::size_t retries() const { return retries_; }
  /// Total backoff scheduled so far.
  std::chrono::microseconds total_backoff() const { return total_; }

 private:
  RetryPolicy policy_;
  support::Rng rng_;
  std::size_t retries_ = 0;
  std::chrono::microseconds total_{0};
};

/// How to wait — injectable so tests retry instantly while recording the
/// schedule.
using Sleeper = std::function<void(std::chrono::microseconds)>;

/// The default Sleeper: actually sleep.
void sleep_for(std::chrono::microseconds delay);

/// Run `op` under `policy`, retrying when `retryable(exception)` says so.
/// The final failure (or a non-retryable one) propagates unchanged.
template <typename Op, typename Retryable>
auto with_retry(const RetryPolicy& policy, Op&& op, Retryable&& retryable,
                const Sleeper& sleeper = sleep_for) -> decltype(op()) {
  RetrySchedule schedule(policy);
  for (;;) {
    try {
      return op();
    } catch (const std::exception& error) {
      if (!retryable(error)) throw;
      const auto delay = schedule.next_delay();
      if (!delay) throw;
      if (delay->count() > 0) sleeper(*delay);
    }
  }
}

}  // namespace fem2::db
