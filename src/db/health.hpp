// Engine health lifecycle as a pure state machine: healthy -> degraded
// (read-only, sticky) -> recover().
//
// Every storage-failure site in the commit/checkpoint pipeline maps to a
// fixed policy response — fail the one transaction cleanly, or fail safe
// into degraded mode — and that mapping lives here, not scattered through
// engine.cpp.  The Engine consults failure_response()/HealthModel at each
// site; the bounded model checker (analyze/model_check.hpp) drives the
// same HealthModel through every interleaving of fault events and checks
// that degraded mode is sticky until an explicit recover() and that no
// acknowledged commit is lost.  The `sticky` knob exists only so the
// checker can demonstrate the counterexample when stickiness is broken.
#pragma once

#include <string>
#include <string_view>

namespace fem2::db {

/// Where in the storage pipeline an I/O failure surfaced.
enum class FailureSite {
  AppendRollbackOk,        ///< log append failed; rollback restored the log
  AppendRollbackFailed,    ///< log append failed AND rollback failed
  CommitFsyncFailed,       ///< commit-point fsync failed (fsync-gate hazard)
  CheckpointSnapshotWriteFailed,  ///< snapshot not published; log intact
  CheckpointLogResetFailed,       ///< snapshot published; log untruncatable
};

/// The policy response at a failure site.
enum class FailureResponse {
  FailOperation,  ///< surface the error; the engine stays healthy
  Degrade,        ///< fail safe: read-only degraded mode until recover()
};

/// The fixed site -> response policy (see DESIGN.md on fail-safe storage).
FailureResponse failure_response(FailureSite site);

std::string_view failure_site_name(FailureSite site);

class HealthModel {
 public:
  /// `sticky` is the model-checker defect knob: production engines are
  /// always sticky (degraded mode survives until recover()).
  explicit HealthModel(bool sticky = true) : sticky_(sticky) {}

  bool degraded() const { return degraded_; }
  const std::string& reason() const { return reason_; }

  struct Transition {
    FailureResponse response = FailureResponse::FailOperation;
    bool entered_degraded = false;  ///< this event crossed healthy->degraded
  };

  /// An I/O failure surfaced at `site`; applies the policy.
  Transition on_failure(FailureSite site, std::string reason);

  /// A storage operation completed successfully.  Healthy engines ignore
  /// this; a non-sticky (defective) model silently clears degraded mode.
  /// Returns true when degraded mode was wrongly cleared.
  bool on_success();

  /// Explicit recover(): the only legitimate exit from degraded mode.
  void on_recover();

 private:
  bool sticky_ = true;
  bool degraded_ = false;
  std::string reason_;
};

}  // namespace fem2::db
