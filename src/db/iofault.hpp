// Deterministic I/O fault injection — hw::FaultPlan for the storage
// boundary.
//
// An IoFaultPlan is a declarative list of faults keyed by (operation
// kind, Nth occurrence): fail the 3rd write with EIO, make the 2nd fsync
// lie (report success without persisting), cut the 1st rename, give the
// 5th write a short count, run out of disk after K bytes.  A FaultVfs
// wraps a real Vfs and fires those faults as the engine's operations
// stream through it, so a chaos run is exactly as reproducible as a
// clean one: same plan, same workload, same failure, same recovery.
//
// The FaultVfs also models the part of a crash the host can't give us
// deterministically: which bytes actually survive.  It tracks, per file,
// the durable prefix (what the last *honest* fsync covered) and pending
// renames (not yet covered by a dir_sync).  crash_to_durable() then
// reverts the real filesystem to that durable image — un-synced tails
// truncated, un-synced renames undone — which is the on-disk state a
// power loss at that moment could legally leave behind.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "db/vfs.hpp"

namespace fem2::db {

struct IoFault {
  enum class Kind : std::uint8_t {
    Fail,        ///< the op throws IoError with `error`
    ShortWrite,  ///< a write transfers only `short_bytes` (no error)
    LyingFsync,  ///< fsync reports success but persists nothing
  };

  IoOp op = IoOp::Write;
  std::uint64_t nth = 0;  ///< 0-based index among ops of this kind
  Kind kind = Kind::Fail;
  int error = 0;               ///< errno for Kind::Fail (EIO default)
  std::size_t short_bytes = 0; ///< transferred count for Kind::ShortWrite
};

class IoFaultPlan {
 public:
  /// Fail the Nth op of `kind` with `error` (default EIO).
  IoFaultPlan& fail(IoOp op, std::uint64_t nth, int error = 0);
  /// The Nth write transfers only `bytes` of its buffer.
  IoFaultPlan& short_write(std::uint64_t nth, std::size_t bytes);
  /// The Nth fsync returns success without persisting anything.
  IoFaultPlan& lying_fsync(std::uint64_t nth);
  /// Every write after `bytes` total written bytes fails with ENOSPC.
  IoFaultPlan& enospc_after(std::uint64_t bytes);

  const std::vector<IoFault>& faults() const { return faults_; }
  std::uint64_t enospc_after_bytes() const { return enospc_after_bytes_; }
  bool empty() const { return faults_.empty() && enospc_after_bytes_ == 0; }
  std::size_t size() const { return faults_.size(); }

  /// One line per fault, for logging chaos-test reproductions.
  std::string describe() const;

  /// `count` distinct fsync failures at indices drawn uniformly from
  /// [0, among) with a seeded deterministic generator.
  static IoFaultPlan random_fsync_failures(std::size_t count,
                                           std::uint64_t among,
                                           std::uint64_t seed);

 private:
  std::vector<IoFault> faults_;
  std::uint64_t enospc_after_bytes_ = 0;
};

/// Operation counters, for sizing fault sweeps ("how many fsyncs does
/// this workload issue?").
struct IoOpCounts {
  std::uint64_t open = 0;
  std::uint64_t read = 0;
  std::uint64_t write = 0;
  std::uint64_t fsync = 0;
  std::uint64_t rename = 0;
  std::uint64_t truncate = 0;
  std::uint64_t dir_sync = 0;

  std::uint64_t of(IoOp op) const;
};

class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(IoFaultPlan plan = {},
                    std::shared_ptr<Vfs> inner = Vfs::posix());

  std::unique_ptr<VfsFile> open_append(const std::string& path) override;
  std::unique_ptr<VfsFile> create_truncate(const std::string& path) override;
  std::optional<std::string> read_file(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void dir_sync(const std::string& dir) override;

  /// Replace the plan; operation counters keep running (a fault at nth=K
  /// still means the Kth op since construction).
  void set_plan(IoFaultPlan plan);

  IoOpCounts counts() const;
  std::uint64_t faults_fired() const;

  /// Simulate a power loss: truncate every file written through this Vfs
  /// to its durable prefix (plus up to `keep_torn_bytes` of un-synced
  /// tail, to model a torn write caught mid-flight) and undo renames not
  /// yet covered by a successful dir_sync.  Call with every engine over
  /// this Vfs destroyed.
  void crash_to_durable(std::uint64_t keep_torn_bytes = 0);

 private:
  friend class FaultFile;

  struct FileState {
    std::uint64_t size = 0;     ///< what the OS sees now
    std::uint64_t durable = 0;  ///< survives crash_to_durable
  };
  struct PendingRename {
    std::string from;
    std::string to;
    std::optional<std::string> replaced;  ///< prior content of `to`
  };

  /// Advances the op counter and fires the matching fault: throws on
  /// Kind::Fail, otherwise returns the fault that applies (if any).
  std::optional<IoFault> account(IoOp op, const std::string& path);

  std::uint64_t& counter(IoOp op);

  // FaultFile forwards here so all accounting shares one lock.
  std::size_t file_write(VfsFile& inner, const char* data, std::size_t bytes);
  void file_sync(VfsFile& inner);
  void file_truncate(VfsFile& inner, std::uint64_t bytes);

  mutable std::mutex mutex_;
  IoFaultPlan plan_;
  std::shared_ptr<Vfs> inner_;
  IoOpCounts counts_;
  std::uint64_t faults_fired_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::map<std::string, FileState> files_;
  std::vector<PendingRename> pending_renames_;
};

}  // namespace fem2::db
