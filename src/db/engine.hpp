// fem2-db: a persistent, crash-recoverable, multi-session storage engine —
// the "data base (long-term storage; shared data)" of the application
// user's VM made real.
//
//   * Durability: commits append CRC-framed records to a write-ahead log
//     and fsync once per commit (wal.hpp).  Recovery = snapshot load + log
//     replay; a crash at any byte leaves exactly the committed prefix.
//   * Compaction: checkpoint() writes an atomic snapshot of the object
//     table and truncates the log; it also runs automatically once the log
//     outgrows EngineOptions::compact_after_bytes.
//   * MVCC: objects are version chains.  Reads can target a historical
//     revision; history() exposes the chain (bounded by history_limit).
//   * Optimistic concurrency: every write may carry an expected revision
//     (compare-and-swap).  Two sessions racing on one name get a clean
//     ConflictError instead of silent clobbering.
//   * Degenerate mode: an empty directory means a purely in-memory engine
//     with identical semantics minus durability.
//
// Thread safety: all public methods are safe to call from concurrent
// sessions; one mutex serializes the table and the log tail.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "db/health.hpp"
#include "db/wal.hpp"

namespace fem2::db {

/// Optimistic-concurrency check failed: the object's current revision is
/// not the one the writer expected.
class ConflictError : public Error {
 public:
  ConflictError(std::string name, std::uint64_t expected,
                std::uint64_t actual);

  const std::string& name() const { return name_; }
  std::uint64_t expected() const { return expected_; }
  std::uint64_t actual() const { return actual_; }

 private:
  std::string name_;
  std::uint64_t expected_ = 0;
  std::uint64_t actual_ = 0;
};

/// The engine is in read-only degraded mode after a durability failure.
/// Reads and history keep working; writes fail with this error until
/// recover() re-opens the store from its durable state.  Failing safe
/// here avoids the fsync-gate hazard: after a failed commit fsync, a
/// later successful fsync would durably publish the failed transaction's
/// records without anyone having acknowledged them.
class DegradedError : public Error {
 public:
  explicit DegradedError(const std::string& reason);

  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Expected-revision wildcard: write unconditionally.
inline constexpr std::uint64_t kAnyRevision = ~std::uint64_t{0};
/// Expected revision 0 means "the object must not currently exist".

struct EngineOptions {
  /// Data directory.  Empty = in-memory degenerate mode (no WAL, no
  /// snapshot, nothing survives the process).
  std::string directory;
  /// Versions retained per object (MVCC history window), >= 1.
  std::size_t history_limit = 8;
  /// Auto-checkpoint once the WAL exceeds this many bytes; 0 disables.
  std::size_t compact_after_bytes = 4u << 20;
  /// fsync at every commit point (the durability guarantee).  Off only for
  /// throughput experiments that accept losing the OS buffer tail.
  bool sync_on_commit = true;
  /// Storage backend; null = the real filesystem (Vfs::posix()).  Tests
  /// and chaos drivers pass a FaultVfs here.
  std::shared_ptr<Vfs> vfs = nullptr;
};

/// A live object as seen by a read.
struct ObjectView {
  std::string name;
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;
};

/// One version in an object's MVCC chain (no payload — see get_at).
struct VersionInfo {
  std::uint64_t revision = 0;
  std::string kind;
  std::size_t bytes = 0;
  std::uint64_t txn = 0;
  bool deleted = false;
};

/// Directory row for list().
struct EntryInfo {
  std::string name;
  std::string kind;
  std::size_t bytes = 0;
  std::uint64_t revision = 0;
};

struct EngineStats {
  std::uint64_t commits = 0;      ///< committed transactions (incl. autocommit)
  std::uint64_t aborts = 0;       ///< explicit aborts
  std::uint64_t conflicts = 0;    ///< commits rejected by revision checks
  std::uint64_t checkpoints = 0;  ///< snapshots written (manual + automatic)
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t recovered_txns = 0;  ///< committed txns replayed at open
  std::uint64_t recovery_discarded_txns = 0;   ///< uncommitted at crash
  std::uint64_t recovery_discarded_bytes = 0;  ///< torn-tail bytes sheared
  bool recovered_snapshot = false;             ///< a snapshot was loaded
  std::uint64_t io_errors = 0;            ///< IoErrors seen on the write path
  std::uint64_t checkpoint_failures = 0;  ///< checkpoints that threw
  std::uint64_t degraded_entries = 0;     ///< transitions into degraded mode
  std::uint64_t recoveries = 0;           ///< explicit recover() calls
};

/// Full engine state for spec reflection (spec/reflect.hpp) and debugging.
struct EngineState {
  std::string mode;  ///< "memory", "persistent" or "degraded"
  struct Chain {
    std::string name;
    std::vector<VersionInfo> versions;
  };
  std::vector<Chain> chains;  ///< sorted by name
  struct Txn {
    std::uint64_t id = 0;
    std::size_t writes = 0;
  };
  std::vector<Txn> transactions;  ///< open (uncommitted) transactions
  EngineStats stats;
};

class Engine {
 public:
  /// Opens (and, for a persistent directory, recovers) the database.
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- transactions ------------------------------------------------------
  /// Start a transaction; writes are buffered until commit.
  std::uint64_t begin();

  /// Buffer a write/delete in an open transaction.  `expected` is checked
  /// against the table state at commit time (optimistic concurrency).
  void put(std::uint64_t txn, std::string name, std::string kind,
           std::string value, std::uint64_t expected = kAnyRevision);
  void erase(std::uint64_t txn, std::string name,
             std::uint64_t expected = kAnyRevision);

  /// Read inside a transaction: sees the transaction's own buffered
  /// writes, else the committed state.
  std::optional<ObjectView> get(std::uint64_t txn,
                                const std::string& name) const;

  /// Validate, log (one fsync), apply.  Returns the number of writes
  /// applied.  Throws ConflictError — the transaction is then gone — when
  /// any expected revision no longer matches.
  std::size_t commit(std::uint64_t txn);

  /// Drop a transaction; its buffered writes never reach the log.
  void abort(std::uint64_t txn);

  // --- autocommit operations ---------------------------------------------
  /// Single-write transaction; returns the new revision.
  std::uint64_t put(std::string name, std::string kind, std::string value,
                    std::uint64_t expected = kAnyRevision);
  /// Returns false when the object does not exist (nothing to erase).
  bool erase(const std::string& name, std::uint64_t expected = kAnyRevision);

  // --- reads --------------------------------------------------------------
  std::optional<ObjectView> get(const std::string& name) const;
  /// MVCC read of a historical revision still inside the history window.
  std::optional<ObjectView> get_at(const std::string& name,
                                   std::uint64_t revision) const;
  std::vector<VersionInfo> history(const std::string& name) const;
  std::vector<EntryInfo> list() const;
  bool contains(const std::string& name) const;
  /// Current revision of a live object; 0 when absent or deleted.
  std::uint64_t revision_of(const std::string& name) const;
  /// Live (non-deleted) object count.
  std::size_t size() const;

  // --- maintenance --------------------------------------------------------
  /// Snapshot the table and truncate the WAL (log compaction).  On an I/O
  /// failure before the snapshot is published, the engine stays healthy
  /// (the old snapshot plus the intact log still recover everything) and
  /// the error propagates; a failure truncating the log afterwards
  /// degrades the engine.
  void checkpoint();

  /// True after a durability failure put the engine in read-only mode.
  bool degraded() const;
  /// Why (empty when not degraded).
  std::string degraded_reason() const;

  /// Re-open the store from its durable state (snapshot load + log
  /// replay), dropping open transactions and clearing degraded mode.
  /// This is the only way out of degraded mode.  No-op in memory mode.
  void recover();

  EngineStats stats() const;
  EngineState state() const;
  const EngineOptions& options() const { return options_; }

 private:
  struct Version {
    std::uint64_t revision = 0;
    bool deleted = false;
    std::uint64_t txn = 0;
    std::string kind;
    std::string value;
  };
  struct Chain {
    std::vector<Version> versions;  ///< ascending revision, trimmed window
  };
  struct PendingWrite {
    std::string name;
    std::string kind;
    std::optional<std::string> value;  ///< nullopt = erase
    std::uint64_t expected = kAnyRevision;
  };
  struct Txn {
    std::vector<PendingWrite> writes;
  };

  void open_locked();
  std::size_t commit_writes_locked(std::uint64_t txn,
                                   std::vector<PendingWrite> writes);
  void apply_version_locked(const std::string& name, Version version);
  const Version* current_version_locked(const std::string& name) const;
  void check_expected_locked(const std::string& name,
                             std::uint64_t expected) const;
  void checkpoint_locked();
  void fail_locked(FailureSite site, std::string reason);
  void ensure_writable_locked() const;

  EngineOptions options_;
  std::shared_ptr<Vfs> vfs_;
  mutable std::mutex mutex_;
  std::map<std::string, Chain> objects_;
  std::map<std::uint64_t, Txn> open_txns_;
  std::uint64_t next_txn_ = 1;
  std::unique_ptr<Wal> wal_;  ///< null in memory mode
  std::string snapshot_path_;
  EngineStats stats_;
  /// Health lifecycle (healthy -> degraded -> recover()); the site->policy
  /// mapping lives in health.hpp, shared with the bounded model checker.
  HealthModel health_;
};

}  // namespace fem2::db
