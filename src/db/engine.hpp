// fem2-db: a persistent, crash-recoverable, multi-session storage engine —
// the "data base (long-term storage; shared data)" of the application
// user's VM made real.
//
//   * Durability: commits append CRC-framed records to a write-ahead log
//     and fsync once per commit (wal.hpp).  Recovery = snapshot load + log
//     replay; a crash at any byte leaves exactly the committed prefix.
//   * Compaction: checkpoint() writes an atomic snapshot of the object
//     table and truncates the log; it also runs automatically once the log
//     outgrows EngineOptions::compact_after_bytes.
//   * MVCC: objects are version chains.  Reads can target a historical
//     revision; history() exposes the chain (bounded by history_limit).
//   * Optimistic concurrency: every write may carry an expected revision
//     (compare-and-swap).  Two sessions racing on one name get a clean
//     ConflictError instead of silent clobbering.
//   * Degenerate mode: an empty directory means a purely in-memory engine
//     with identical semantics minus durability.
//
// Thread safety: all public methods are safe to call from concurrent
// sessions; one mutex serializes the table and the log tail.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "db/health.hpp"
#include "db/wal.hpp"

namespace fem2::db {

/// Optimistic-concurrency check failed: the object's current revision is
/// not the one the writer expected.
class ConflictError : public Error {
 public:
  ConflictError(std::string name, std::uint64_t expected,
                std::uint64_t actual);

  const std::string& name() const { return name_; }
  std::uint64_t expected() const { return expected_; }
  std::uint64_t actual() const { return actual_; }

 private:
  std::string name_;
  std::uint64_t expected_ = 0;
  std::uint64_t actual_ = 0;
};

/// The engine is in read-only degraded mode after a durability failure.
/// Reads and history keep working; writes fail with this error until
/// recover() re-opens the store from its durable state.  Failing safe
/// here avoids the fsync-gate hazard: after a failed commit fsync, a
/// later successful fsync would durably publish the failed transaction's
/// records without anyone having acknowledged them.
class DegradedError : public Error {
 public:
  explicit DegradedError(const std::string& reason);

  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Expected-revision wildcard: write unconditionally.
inline constexpr std::uint64_t kAnyRevision = ~std::uint64_t{0};
/// Expected revision 0 means "the object must not currently exist".

struct EngineOptions {
  /// Data directory.  Empty = in-memory degenerate mode (no WAL, no
  /// snapshot, nothing survives the process).
  std::string directory;
  /// Versions retained per object (MVCC history window), >= 1.
  std::size_t history_limit = 8;
  /// Auto-checkpoint once the WAL exceeds this many bytes; 0 disables.
  std::size_t compact_after_bytes = 4u << 20;
  /// fsync at every commit point (the durability guarantee).  Off only for
  /// throughput experiments that accept losing the OS buffer tail.
  bool sync_on_commit = true;
  /// Storage backend; null = the real filesystem (Vfs::posix()).  Tests
  /// and chaos drivers pass a FaultVfs here.
  std::shared_ptr<Vfs> vfs = nullptr;
  /// Group commit: batch every transaction that reaches its commit point
  /// within this window into ONE fsync, acking each only after the shared
  /// fsync returns.  0 (the default) keeps the classic one-fsync-per-
  /// commit path.  Only meaningful for a persistent engine with
  /// sync_on_commit.
  std::chrono::microseconds group_commit_window{0};
  /// Seal a filling batch early once it holds this many transactions.
  std::size_t group_commit_max_batch = 64;
};

/// A live object as seen by a read.
struct ObjectView {
  std::string name;
  std::string kind;
  std::string value;
  std::uint64_t revision = 0;
};

/// One version in an object's MVCC chain (no payload — see get_at).
struct VersionInfo {
  std::uint64_t revision = 0;
  std::string kind;
  std::size_t bytes = 0;
  std::uint64_t txn = 0;
  bool deleted = false;
};

struct QueryFilter;  // predicate query over live objects (db/query.hpp)
struct QueryResult;

/// Directory row for list().
struct EntryInfo {
  std::string name;
  std::string kind;
  std::size_t bytes = 0;
  std::uint64_t revision = 0;
};

struct EngineStats {
  std::uint64_t commits = 0;      ///< committed transactions (incl. autocommit)
  std::uint64_t aborts = 0;       ///< explicit aborts
  std::uint64_t conflicts = 0;    ///< commits rejected by revision checks
  std::uint64_t checkpoints = 0;  ///< snapshots written (manual + automatic)
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t recovered_txns = 0;  ///< committed txns replayed at open
  std::uint64_t recovery_discarded_txns = 0;   ///< uncommitted at crash
  std::uint64_t recovery_discarded_bytes = 0;  ///< torn-tail bytes sheared
  bool recovered_snapshot = false;             ///< a snapshot was loaded
  std::uint64_t io_errors = 0;            ///< IoErrors seen on the write path
  std::uint64_t checkpoint_failures = 0;  ///< checkpoints that threw
  std::uint64_t degraded_entries = 0;     ///< transitions into degraded mode
  std::uint64_t recoveries = 0;           ///< explicit recover() calls
  std::uint64_t group_batches = 0;        ///< group-commit batches fsynced
  std::uint64_t group_batched_txns = 0;   ///< transactions those carried
  std::uint64_t group_max_batch = 0;      ///< largest batch seen
  std::uint64_t queries = 0;              ///< query() calls served
};

/// Full engine state for spec reflection (spec/reflect.hpp) and debugging.
struct EngineState {
  std::string mode;  ///< "memory", "persistent" or "degraded"
  struct Chain {
    std::string name;
    std::vector<VersionInfo> versions;
  };
  std::vector<Chain> chains;  ///< sorted by name
  struct Txn {
    std::uint64_t id = 0;
    std::size_t writes = 0;
  };
  std::vector<Txn> transactions;  ///< open (uncommitted) transactions
  EngineStats stats;
  std::size_t index_kinds = 0;    ///< kind buckets in the secondary index
  std::size_t index_entries = 0;  ///< entries in the revision index
  std::size_t pending_heads = 0;  ///< heads claimed by unsynced batches
};

class Engine {
 public:
  /// Opens (and, for a persistent directory, recovers) the database.
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- transactions ------------------------------------------------------
  /// Start a transaction; writes are buffered until commit.
  std::uint64_t begin();

  /// Buffer a write/delete in an open transaction.  `expected` is checked
  /// against the table state at commit time (optimistic concurrency).
  void put(std::uint64_t txn, std::string name, std::string kind,
           std::string value, std::uint64_t expected = kAnyRevision);
  void erase(std::uint64_t txn, std::string name,
             std::uint64_t expected = kAnyRevision);

  /// Read inside a transaction: sees the transaction's own buffered
  /// writes, else the committed state.
  std::optional<ObjectView> get(std::uint64_t txn,
                                const std::string& name) const;

  /// Validate, log (one fsync), apply.  Returns the number of writes
  /// applied.  Throws ConflictError — the transaction is then gone — when
  /// any expected revision no longer matches.
  std::size_t commit(std::uint64_t txn);

  /// Drop a transaction; its buffered writes never reach the log.
  void abort(std::uint64_t txn);

  // --- autocommit operations ---------------------------------------------
  /// Single-write transaction; returns the new revision.
  std::uint64_t put(std::string name, std::string kind, std::string value,
                    std::uint64_t expected = kAnyRevision);
  /// Returns false when the object does not exist (nothing to erase).
  bool erase(const std::string& name, std::uint64_t expected = kAnyRevision);

  // --- reads --------------------------------------------------------------
  std::optional<ObjectView> get(const std::string& name) const;
  /// MVCC read of a historical revision still inside the history window.
  std::optional<ObjectView> get_at(const std::string& name,
                                   std::uint64_t revision) const;
  std::vector<VersionInfo> history(const std::string& name) const;
  std::vector<EntryInfo> list() const;
  /// Predicate query over live objects via the secondary indexes; see
  /// db/query.hpp for the filter, result and planner contract.
  QueryResult query(const QueryFilter& filter) const;
  bool contains(const std::string& name) const;
  /// Current revision of a live object; 0 when absent or deleted.
  std::uint64_t revision_of(const std::string& name) const;
  /// Live (non-deleted) object count.
  std::size_t size() const;

  // --- maintenance --------------------------------------------------------
  /// Snapshot the table and truncate the WAL (log compaction).  On an I/O
  /// failure before the snapshot is published, the engine stays healthy
  /// (the old snapshot plus the intact log still recover everything) and
  /// the error propagates; a failure truncating the log afterwards
  /// degrades the engine.
  void checkpoint();

  /// True after a durability failure put the engine in read-only mode.
  bool degraded() const;
  /// Why (empty when not degraded).
  std::string degraded_reason() const;

  /// Re-open the store from its durable state (snapshot load + log
  /// replay), dropping open transactions and clearing degraded mode.
  /// This is the only way out of degraded mode.  No-op in memory mode.
  void recover();

  EngineStats stats() const;
  EngineState state() const;
  const EngineOptions& options() const { return options_; }

 private:
  struct Version {
    std::uint64_t revision = 0;
    bool deleted = false;
    std::uint64_t txn = 0;
    std::string kind;
    std::string value;
  };
  struct Chain {
    std::vector<Version> versions;  ///< ascending revision, trimmed window
  };
  struct PendingWrite {
    std::string name;
    std::string kind;
    std::optional<std::string> value;  ///< nullopt = erase
    std::uint64_t expected = kAnyRevision;
  };
  struct Txn {
    std::vector<PendingWrite> writes;
  };

  /// What a name's revision counter would read once every in-flight
  /// (appended, not yet fsynced) group-commit batch lands.
  struct HeadView {
    std::uint64_t revision = 0;  ///< 0 when the name has never existed
    bool deleted = true;
  };

  /// One group-commit batch: the transactions whose WAL frames share one
  /// fsync.  The first transaction to open a batch is its leader; it runs
  /// the window timer, the fsync and the apply, then wakes the members.
  struct Batch {
    std::uint64_t seq = 0;           ///< fsync/apply order, 1-based
    std::uint64_t start_bytes = 0;   ///< WAL position before the batch
    std::uint64_t start_records = 0;
    bool sealed = false;  ///< no longer accepting members
    bool done = false;    ///< outcome decided; members may wake
    bool failed = false;  ///< outcome was an I/O failure
    IoOp error_op = IoOp::Fsync;  ///< failure detail for members' throw
    std::string error_path;
    int error_code = 0;
    struct Member {
      std::uint64_t txn = 0;
      std::vector<std::string> names;
      std::vector<Version> versions;
    };
    std::vector<Member> members;  ///< in WAL append order
    std::condition_variable cv;   ///< sealed (leader) / done (members)
  };

  void open_locked();
  std::size_t commit_writes_locked(std::unique_lock<std::mutex>& lock,
                                   std::uint64_t txn,
                                   std::vector<PendingWrite> writes,
                                   std::uint64_t* last_revision = nullptr);
  std::size_t group_commit_locked(std::unique_lock<std::mutex>& lock,
                                  std::uint64_t txn,
                                  std::vector<PendingWrite> writes,
                                  std::vector<Version> versions,
                                  std::uint64_t pre_bytes,
                                  std::uint64_t pre_records);
  void lead_batch_locked(std::unique_lock<std::mutex>& lock,
                         const std::shared_ptr<Batch>& batch);
  void fail_batches_locked(const IoError& error);
  void apply_version_locked(const std::string& name, Version version);
  void rebuild_indexes_locked();
  const Version* current_version_locked(const std::string& name) const;
  HeadView effective_head_locked(const std::string& name) const;
  void check_expected_locked(const std::string& name,
                             std::uint64_t expected) const;
  void checkpoint_locked();
  void fail_locked(FailureSite site, std::string reason);
  void ensure_writable_locked() const;

  EngineOptions options_;
  std::shared_ptr<Vfs> vfs_;
  mutable std::mutex mutex_;
  std::map<std::string, Chain> objects_;
  std::map<std::uint64_t, Txn> open_txns_;
  std::uint64_t next_txn_ = 1;
  std::unique_ptr<Wal> wal_;  ///< null in memory mode
  std::string snapshot_path_;
  mutable EngineStats stats_;  ///< mutable: query() counts under a const lock
  /// Health lifecycle (healthy -> degraded -> recover()); the site->policy
  /// mapping lives in health.hpp, shared with the bounded model checker.
  HealthModel health_;

  // --- group-commit coordinator (all guarded by mutex_) ------------------
  std::shared_ptr<Batch> filling_;  ///< open batch accepting members
  std::map<std::uint64_t, std::shared_ptr<Batch>> batches_;  ///< in flight
  std::uint64_t next_batch_seq_ = 1;
  std::uint64_t applied_batch_seq_ = 0;  ///< last batch fsynced + applied
  /// Wakes leaders waiting their fsync turn, plus checkpoint()/recover()
  /// waiting for in-flight batches to drain.
  std::condition_variable sync_order_cv_;
  /// Revision heads already claimed by appended-but-unsynced batches, so
  /// later transactions validate and number against in-flight state.
  std::map<std::string, HeadView> pending_heads_;

  // --- secondary indexes over live heads (guarded by mutex_) -------------
  std::map<std::string, std::set<std::string>> kind_index_;
  std::set<std::pair<std::uint64_t, std::string>> revision_index_;
};

}  // namespace fem2::db
