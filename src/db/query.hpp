// fem2-db query layer: predicate queries over the live object table.
//
// A QueryFilter combines four optional predicates — kind, name prefix and
// a [min, max] revision window — plus a row limit.  Engine::query picks
// the cheapest access path for the filter from the secondary indexes the
// engine maintains over live heads:
//
//   * revision-index : ordered (revision, name) index, used whenever the
//     filter narrows the revision window;
//   * name-range     : the object table itself is ordered by name, so a
//     name prefix becomes a bounded map range;
//   * kind-index     : kind -> live-name sets for kind-only filters;
//   * scan           : full table walk when nothing narrows the search.
//
// Whatever the path, every surviving candidate is checked against ALL
// predicates, so the planner is a pure optimisation: the result set never
// depends on which index served it.  QueryResult::scanned counts the
// candidates examined, making planner behavior observable in tests.
//
// Queries never touch the write-ahead log and never wait on a group
// commit's fsync (the engine drops its mutex across the fsync), so the
// read path stays live while committers batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/engine.hpp"

namespace fem2::db {

/// Conjunction of predicates over live objects.  Default-constructed,
/// it matches everything.
struct QueryFilter {
  std::string kind;          ///< exact kind; empty = any
  std::string name_prefix;   ///< name prefix; empty = any
  std::uint64_t min_revision = 0;             ///< inclusive lower bound
  std::uint64_t max_revision = kAnyRevision;  ///< inclusive upper bound
  std::size_t limit = 0;     ///< max rows returned; 0 = unlimited
};

/// Query outcome.  Rows are ordered by name, except on the
/// revision-index path where they arrive in ascending revision order
/// (the natural order for "what changed after revision R" questions).
struct QueryResult {
  std::vector<EntryInfo> rows;
  std::size_t scanned = 0;   ///< candidates examined before predicates
  bool truncated = false;    ///< limit cut the result short
  std::string plan;          ///< access path chosen (see header comment)
};

}  // namespace fem2::db
