#include "db/iofault.hpp"

#include <cerrno>
#include <cstring>
#include <set>
#include <sstream>

#include "support/rng.hpp"

namespace fem2::db {

// --- IoFaultPlan ------------------------------------------------------------

IoFaultPlan& IoFaultPlan::fail(IoOp op, std::uint64_t nth, int error) {
  faults_.push_back(IoFault{op, nth, IoFault::Kind::Fail, error, 0});
  return *this;
}

IoFaultPlan& IoFaultPlan::short_write(std::uint64_t nth, std::size_t bytes) {
  faults_.push_back(
      IoFault{IoOp::Write, nth, IoFault::Kind::ShortWrite, 0, bytes});
  return *this;
}

IoFaultPlan& IoFaultPlan::lying_fsync(std::uint64_t nth) {
  faults_.push_back(
      IoFault{IoOp::Fsync, nth, IoFault::Kind::LyingFsync, 0, 0});
  return *this;
}

IoFaultPlan& IoFaultPlan::enospc_after(std::uint64_t bytes) {
  enospc_after_bytes_ = bytes;
  return *this;
}

std::string IoFaultPlan::describe() const {
  std::ostringstream os;
  for (const auto& fault : faults_) {
    os << io_op_name(fault.op) << " #" << fault.nth << ": ";
    switch (fault.kind) {
      case IoFault::Kind::Fail:
        os << "fail (" << std::strerror(fault.error ? fault.error : EIO)
           << ")";
        break;
      case IoFault::Kind::ShortWrite:
        os << "short write (" << fault.short_bytes << " bytes)";
        break;
      case IoFault::Kind::LyingFsync:
        os << "lying fsync";
        break;
    }
    os << "\n";
  }
  if (enospc_after_bytes_ > 0)
    os << "ENOSPC after " << enospc_after_bytes_ << " written bytes\n";
  return os.str();
}

IoFaultPlan IoFaultPlan::random_fsync_failures(std::size_t count,
                                               std::uint64_t among,
                                               std::uint64_t seed) {
  IoFaultPlan plan;
  if (among == 0) return plan;
  support::Rng rng(seed);
  std::set<std::uint64_t> picked;
  while (picked.size() < count && picked.size() < among)
    picked.insert(rng.next_below(among));
  for (const std::uint64_t nth : picked) plan.fail(IoOp::Fsync, nth);
  return plan;
}

std::uint64_t IoOpCounts::of(IoOp op) const {
  switch (op) {
    case IoOp::Open:
      return open;
    case IoOp::Read:
      return read;
    case IoOp::Write:
      return write;
    case IoOp::Fsync:
      return fsync;
    case IoOp::Rename:
      return rename;
    case IoOp::Truncate:
      return truncate;
    case IoOp::DirSync:
      return dir_sync;
  }
  return 0;
}

// --- FaultVfs ---------------------------------------------------------------

/// Wraps an inner file; every operation goes through the owner's fault
/// accounting under the owner's lock.
class FaultFile : public VfsFile {
 public:
  FaultFile(FaultVfs& owner, std::unique_ptr<VfsFile> inner)
      : VfsFile(inner->path()), owner_(owner), inner_(std::move(inner)) {}

  std::size_t write_some(const char* data, std::size_t bytes) override {
    return owner_.file_write(*inner_, data, bytes);
  }
  void sync() override { owner_.file_sync(*inner_); }
  void truncate(std::uint64_t bytes) override {
    owner_.file_truncate(*inner_, bytes);
  }
  std::uint64_t size() override { return inner_->size(); }

 private:
  FaultVfs& owner_;
  std::unique_ptr<VfsFile> inner_;
};

FaultVfs::FaultVfs(IoFaultPlan plan, std::shared_ptr<Vfs> inner)
    : plan_(std::move(plan)), inner_(std::move(inner)) {
  FEM2_CHECK_MSG(inner_ != nullptr, "FaultVfs needs an inner Vfs");
}

std::uint64_t& FaultVfs::counter(IoOp op) {
  switch (op) {
    case IoOp::Open:
      return counts_.open;
    case IoOp::Read:
      return counts_.read;
    case IoOp::Write:
      return counts_.write;
    case IoOp::Fsync:
      return counts_.fsync;
    case IoOp::Rename:
      return counts_.rename;
    case IoOp::Truncate:
      return counts_.truncate;
    case IoOp::DirSync:
      return counts_.dir_sync;
  }
  return counts_.open;  // unreachable
}

std::optional<IoFault> FaultVfs::account(IoOp op, const std::string& path) {
  const std::uint64_t index = counter(op)++;
  for (const auto& fault : plan_.faults()) {
    if (fault.op != op || fault.nth != index) continue;
    faults_fired_ += 1;
    if (fault.kind == IoFault::Kind::Fail)
      throw IoError(op, path, fault.error ? fault.error : EIO);
    return fault;
  }
  return std::nullopt;
}

std::size_t FaultVfs::file_write(VfsFile& inner, const char* data,
                                 std::size_t bytes) {
  std::lock_guard lock(mutex_);
  const auto fault = account(IoOp::Write, inner.path());
  if (fault && fault->kind == IoFault::Kind::ShortWrite &&
      fault->short_bytes < bytes) {
    // A zero-byte write would spin the caller's write_all loop forever.
    bytes = fault->short_bytes > 0 ? fault->short_bytes : 1;
  }
  if (const std::uint64_t budget = plan_.enospc_after_bytes(); budget > 0) {
    if (bytes_written_ >= budget) {
      faults_fired_ += 1;
      throw IoError(IoOp::Write, inner.path(), ENOSPC);
    }
    bytes = static_cast<std::size_t>(
        std::min<std::uint64_t>(bytes, budget - bytes_written_));
  }
  const std::size_t written = inner.write_some(data, bytes);
  bytes_written_ += written;
  files_[inner.path()].size += written;
  return written;
}

void FaultVfs::file_sync(VfsFile& inner) {
  std::lock_guard lock(mutex_);
  const auto fault = account(IoOp::Fsync, inner.path());
  if (fault && fault->kind == IoFault::Kind::LyingFsync) return;  // "success"
  inner.sync();
  auto& state = files_[inner.path()];
  state.durable = state.size;
}

void FaultVfs::file_truncate(VfsFile& inner, std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  account(IoOp::Truncate, inner.path());
  inner.truncate(bytes);
  auto& state = files_[inner.path()];
  state.size = bytes;
  state.durable = std::min(state.durable, bytes);
}

std::unique_ptr<VfsFile> FaultVfs::open_append(const std::string& path) {
  std::lock_guard lock(mutex_);
  account(IoOp::Open, path);
  auto inner = inner_->open_append(path);
  auto [it, inserted] = files_.try_emplace(path);
  it->second.size = inner->size();
  // Content present before we started watching is assumed durable.
  if (inserted) it->second.durable = it->second.size;
  return std::make_unique<FaultFile>(*this, std::move(inner));
}

std::unique_ptr<VfsFile> FaultVfs::create_truncate(const std::string& path) {
  std::lock_guard lock(mutex_);
  account(IoOp::Open, path);
  auto inner = inner_->create_truncate(path);
  files_[path] = FileState{0, 0};
  return std::make_unique<FaultFile>(*this, std::move(inner));
}

std::optional<std::string> FaultVfs::read_file(const std::string& path) {
  std::lock_guard lock(mutex_);
  account(IoOp::Read, path);
  return inner_->read_file(path);
}

void FaultVfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard lock(mutex_);
  account(IoOp::Rename, from);
  PendingRename pending{from, to, inner_->read_file(to)};
  inner_->rename(from, to);
  // The file's bytes keep their durability; the *name change* is pending
  // until the directory is synced.
  if (const auto it = files_.find(from); it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  pending_renames_.push_back(std::move(pending));
}

void FaultVfs::dir_sync(const std::string& dir) {
  std::lock_guard lock(mutex_);
  account(IoOp::DirSync, dir);
  inner_->dir_sync(dir);
  std::erase_if(pending_renames_, [&dir](const PendingRename& pending) {
    return parent_directory(pending.to) == dir;
  });
}

void FaultVfs::set_plan(IoFaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
}

IoOpCounts FaultVfs::counts() const {
  std::lock_guard lock(mutex_);
  return counts_;
}

std::uint64_t FaultVfs::faults_fired() const {
  std::lock_guard lock(mutex_);
  return faults_fired_;
}

void FaultVfs::crash_to_durable(std::uint64_t keep_torn_bytes) {
  std::lock_guard lock(mutex_);
  // Un-synced renames roll back, newest first (the old destination
  // content, saved at rename time, is restored byte for byte).
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    inner_->rename(it->to, it->from);
    if (const auto entry = files_.find(it->to); entry != files_.end()) {
      files_[it->from] = entry->second;
      files_.erase(entry);
    }
    if (it->replaced) {
      auto file = inner_->create_truncate(it->to);
      file->write_all(*it->replaced);
      files_[it->to] = FileState{it->replaced->size(), it->replaced->size()};
    }
  }
  pending_renames_.clear();

  // Un-synced tails vanish (minus an optional torn fragment).
  for (auto& [path, state] : files_) {
    const std::uint64_t keep =
        std::min(state.size, state.durable + keep_torn_bytes);
    if (keep < state.size) {
      auto file = inner_->open_append(path);
      file->truncate(keep);
      state.size = keep;
    }
    state.durable = std::min(state.durable, state.size);
  }
}

}  // namespace fem2::db
