#include "db/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "db/bytes.hpp"
#include "db/crc32.hpp"
#include "db/wal.hpp"

namespace fem2::db {

namespace {

constexpr char kMagic[8] = {'F', '2', 'D', 'B', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kFormatVersion = 1;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw Error(what + " '" + path + "': " + std::strerror(errno));
}

std::string encode(const SnapshotData& data) {
  std::string payload;
  append_u64(payload, data.next_txn);
  append_u64(payload, data.chains.size());
  for (const auto& chain : data.chains) {
    append_string(payload, chain.name);
    append_u64(payload, chain.versions.size());
    for (const auto& v : chain.versions) {
      append_u64(payload, v.revision);
      append_u8(payload, v.deleted ? 1 : 0);
      append_u64(payload, v.txn);
      append_string(payload, v.kind);
      append_string(payload, v.value);
    }
  }

  std::string out;
  out.append(kMagic, sizeof kMagic);
  append_u32(out, kFormatVersion);
  append_u64(out, payload.size());
  out += payload;
  append_u32(out, crc32c(payload));
  return out;
}

SnapshotData decode(std::string_view bytes, const std::string& path) {
  const auto corrupt = [&path](const char* why) -> Error {
    return Error("snapshot '" + path + "' is corrupt: " + why);
  };
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw corrupt("bad magic");
  Cursor cursor(bytes.substr(sizeof kMagic));
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  if (!cursor.read_u32(version) || !cursor.read_u64(payload_bytes))
    throw corrupt("truncated header");
  if (version != kFormatVersion) throw corrupt("unknown format version");
  if (cursor.remaining() < payload_bytes + 4) throw corrupt("truncated body");
  const std::string_view payload =
      bytes.substr(sizeof kMagic + 12, payload_bytes);

  Cursor trailer(bytes.substr(sizeof kMagic + 12 + payload_bytes));
  std::uint32_t crc = 0;
  if (!trailer.read_u32(crc) || crc32c(payload) != crc)
    throw corrupt("checksum mismatch");

  SnapshotData data;
  Cursor body(payload);
  std::uint64_t chain_count = 0;
  if (!body.read_u64(data.next_txn) || !body.read_u64(chain_count))
    throw corrupt("truncated payload");
  data.chains.resize(chain_count);
  for (auto& chain : data.chains) {
    std::uint64_t version_count = 0;
    if (!body.read_string(chain.name) || !body.read_u64(version_count))
      throw corrupt("truncated chain");
    chain.versions.resize(version_count);
    for (auto& v : chain.versions) {
      std::uint8_t deleted = 0;
      if (!body.read_u64(v.revision) || !body.read_u8(deleted) ||
          !body.read_u64(v.txn) || !body.read_string(v.kind) ||
          !body.read_string(v.value))
        throw corrupt("truncated version");
      v.deleted = deleted != 0;
    }
  }
  if (body.remaining() != 0) throw corrupt("trailing bytes in payload");
  return data;
}

}  // namespace

void write_snapshot(const std::string& path, const SnapshotData& data) {
  const std::string bytes = encode(data);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create snapshot", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("cannot write snapshot", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("cannot fsync snapshot", tmp);
  }
  ::close(fd);

  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("cannot publish snapshot", path);

  // Make the rename itself durable.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::optional<SnapshotData> load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode(buffer.str(), path);
}

}  // namespace fem2::db
