#include "db/snapshot.hpp"

#include <cstring>

#include "db/bytes.hpp"
#include "db/crc32.hpp"

namespace fem2::db {

namespace {

constexpr char kMagic[8] = {'F', '2', 'D', 'B', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kFormatVersion = 1;

std::string encode(const SnapshotData& data) {
  std::string payload;
  append_u64(payload, data.next_txn);
  append_u64(payload, data.chains.size());
  for (const auto& chain : data.chains) {
    append_string(payload, chain.name);
    append_u64(payload, chain.versions.size());
    for (const auto& v : chain.versions) {
      append_u64(payload, v.revision);
      append_u8(payload, v.deleted ? 1 : 0);
      append_u64(payload, v.txn);
      append_string(payload, v.kind);
      append_string(payload, v.value);
    }
  }

  std::string out;
  out.append(kMagic, sizeof kMagic);
  append_u32(out, kFormatVersion);
  append_u64(out, payload.size());
  out += payload;
  append_u32(out, crc32c(payload));
  return out;
}

SnapshotData decode(std::string_view bytes, const std::string& path) {
  const auto corrupt = [&path](const char* why) -> Error {
    return Error("snapshot '" + path + "' is corrupt: " + why);
  };
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw corrupt("bad magic");
  Cursor cursor(bytes.substr(sizeof kMagic));
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  if (!cursor.read_u32(version) || !cursor.read_u64(payload_bytes))
    throw corrupt("truncated header");
  if (version != kFormatVersion) throw corrupt("unknown format version");
  if (cursor.remaining() < payload_bytes + 4) throw corrupt("truncated body");
  const std::string_view payload =
      bytes.substr(sizeof kMagic + 12, payload_bytes);

  Cursor trailer(bytes.substr(sizeof kMagic + 12 + payload_bytes));
  std::uint32_t crc = 0;
  if (!trailer.read_u32(crc) || crc32c(payload) != crc)
    throw corrupt("checksum mismatch");

  SnapshotData data;
  Cursor body(payload);
  std::uint64_t chain_count = 0;
  if (!body.read_u64(data.next_txn) || !body.read_u64(chain_count))
    throw corrupt("truncated payload");
  data.chains.resize(chain_count);
  for (auto& chain : data.chains) {
    std::uint64_t version_count = 0;
    if (!body.read_string(chain.name) || !body.read_u64(version_count))
      throw corrupt("truncated chain");
    chain.versions.resize(version_count);
    for (auto& v : chain.versions) {
      std::uint8_t deleted = 0;
      if (!body.read_u64(v.revision) || !body.read_u8(deleted) ||
          !body.read_u64(v.txn) || !body.read_string(v.kind) ||
          !body.read_string(v.value))
        throw corrupt("truncated version");
      v.deleted = deleted != 0;
    }
  }
  if (body.remaining() != 0) throw corrupt("trailing bytes in payload");
  return data;
}

}  // namespace

void write_snapshot(Vfs& vfs, const std::string& path,
                    const SnapshotData& data) {
  const std::string bytes = encode(data);
  const std::string tmp = path + ".tmp";

  {
    auto file = vfs.create_truncate(tmp);
    file->write_all(bytes);
    file->sync();
  }

  vfs.rename(tmp, path);

  // Make the rename itself durable.  A failure here is a real failure:
  // until the directory is synced, a crash may legally resurrect the old
  // snapshot, so the caller must not treat the checkpoint as done.
  vfs.dir_sync(parent_directory(path));
}

void write_snapshot(const std::string& path, const SnapshotData& data) {
  write_snapshot(*Vfs::posix(), path, data);
}

std::optional<SnapshotData> load_snapshot(Vfs& vfs, const std::string& path) {
  const auto bytes = vfs.read_file(path);
  if (!bytes) return std::nullopt;
  return decode(*bytes, path);
}

std::optional<SnapshotData> load_snapshot(const std::string& path) {
  return load_snapshot(*Vfs::posix(), path);
}

}  // namespace fem2::db
