// The storage boundary of fem2-db: every byte the engine persists flows
// through a Vfs (open/read/write/fsync/rename/truncate/dir_sync).  The
// engine never calls the host directly, so the same code path runs over
//
//   * PosixVfs — the real filesystem, and
//   * FaultVfs (iofault.hpp) — a deterministic fault injector that fails
//     the Nth write/fsync/rename with a chosen errno, models short writes
//     and lying fsyncs, and can simulate a power loss,
//
// mirroring what hw::FaultPlan does for the simulated machine: chaos at
// the storage boundary is reproducible, not probabilistic.
//
// Every failure surfaces as an IoError carrying the operation, path and
// errno, so callers can classify (transient vs. hard) instead of parsing
// message strings.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "support/check.hpp"

namespace fem2::db {

/// Recoverable database-layer failure (I/O errors, corrupt snapshots).
class Error : public support::Error {
 public:
  using support::Error::Error;
};

/// The storage operations the engine performs, for fault targeting and
/// error classification.
enum class IoOp : std::uint8_t {
  Open,
  Read,
  Write,
  Fsync,
  Rename,
  Truncate,
  DirSync,
};

const char* io_op_name(IoOp op);

/// A failed storage operation: which op, on which path, with which errno.
class IoError : public Error {
 public:
  IoError(IoOp op, std::string path, int error_code);

  IoOp op() const { return op_; }
  const std::string& path() const { return path_; }
  int code() const { return code_; }

  /// True when retrying the same operation may succeed without operator
  /// intervention (interrupted call, momentary resource exhaustion).
  /// EIO, ENOSPC and friends are NOT transient: they need recovery or a
  /// bigger disk, not another attempt a millisecond later.
  bool transient() const;

 private:
  IoOp op_;
  std::string path_;
  int code_;
};

/// An open file handle.  Writes land at the current offset (the engine
/// only ever appends); truncate repositions to the new end.
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  VfsFile(const VfsFile&) = delete;
  VfsFile& operator=(const VfsFile&) = delete;

  const std::string& path() const { return path_; }

  /// Write up to `bytes`, returning how many were written — a short write
  /// is not an error (the caller loops); a failed write throws IoError.
  virtual std::size_t write_some(const char* data, std::size_t bytes) = 0;

  /// Loop write_some until everything is on its way to the OS.
  void write_all(const char* data, std::size_t bytes);
  void write_all(std::string_view bytes) {
    write_all(bytes.data(), bytes.size());
  }

  /// The durability point: flush this file's data to stable storage.
  virtual void sync() = 0;

  /// Cut the file to `bytes` and reposition the write offset there.
  virtual void truncate(std::uint64_t bytes) = 0;

  virtual std::uint64_t size() = 0;

 protected:
  explicit VfsFile(std::string path) : path_(std::move(path)) {}

 private:
  std::string path_;
};

/// The filesystem interface the storage engine is written against.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Open read-write for appending, creating if absent; positioned at end.
  virtual std::unique_ptr<VfsFile> open_append(const std::string& path) = 0;

  /// Create (or truncate) for writing — the snapshot tmp-file pattern.
  virtual std::unique_ptr<VfsFile> create_truncate(
      const std::string& path) = 0;

  /// Whole-file read; nullopt when the file does not exist.
  virtual std::optional<std::string> read_file(const std::string& path) = 0;

  /// Atomic within-directory rename (the snapshot publish step).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// fsync the directory so renames/creates inside it survive a crash.
  virtual void dir_sync(const std::string& dir) = 0;

  /// The process-wide real-filesystem instance.
  static const std::shared_ptr<Vfs>& posix();
};

/// The real thing: POSIX fds, real fsync, real rename.
class PosixVfs : public Vfs {
 public:
  std::unique_ptr<VfsFile> open_append(const std::string& path) override;
  std::unique_ptr<VfsFile> create_truncate(const std::string& path) override;
  std::optional<std::string> read_file(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void dir_sync(const std::string& dir) override;
};

/// Directory part of `path` ("." when it has no slash) — where dir_sync
/// must point for a rename of `path` to be durable.
std::string parent_directory(const std::string& path);

}  // namespace fem2::db
