#include "appvm/workspace.hpp"

#include "support/check.hpp"

namespace fem2::appvm {

fem::StructureModel& Workspace::model() {
  FEM2_CHECK_MSG(model_.has_value(),
                 "no model in the workspace (use 'new model' or 'retrieve')");
  return *model_;
}

const fem::StructureModel& Workspace::model() const {
  FEM2_CHECK_MSG(model_.has_value(),
                 "no model in the workspace (use 'new model' or 'retrieve')");
  return *model_;
}

const fem::AnalysisResult& Workspace::results() const {
  FEM2_CHECK_MSG(results_.has_value(),
                 "no analysis results in the workspace (use 'solve')");
  return *results_;
}

std::size_t Workspace::storage_bytes() const {
  std::size_t bytes = 0;
  if (model_) bytes += model_->storage_bytes();
  if (results_) {
    bytes += results_->solution.displacements.values.size() * sizeof(double);
    bytes += results_->stresses.size() * sizeof(fem::ElementStress);
  }
  return bytes;
}

}  // namespace fem2::appvm
