#include "appvm/serialize.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "support/strings.hpp"

namespace fem2::appvm {

namespace {

double parse_double(const std::string& token, std::size_t line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw SerializeError("line " + std::to_string(line) +
                         ": expected a number, found '" + token + "'");
  }
}

std::size_t parse_index(const std::string& token, std::size_t line) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw SerializeError("line " + std::to_string(line) +
                         ": expected an index, found '" + token + "'");
  }
  return value;
}

/// Extract the value of a key=value token; returns false if key mismatch.
bool keyed(const std::string& token, std::string_view key,
           std::string& value_out) {
  if (token.size() <= key.size() + 1) return false;
  if (!token.starts_with(key) || token[key.size()] != '=') return false;
  value_out = token.substr(key.size() + 1);
  return true;
}

fem::ElementType element_type_from_name(const std::string& name,
                                        std::size_t line) {
  if (name == "bar2") return fem::ElementType::Bar2;
  if (name == "beam2") return fem::ElementType::Beam2;
  if (name == "tri3") return fem::ElementType::Tri3;
  if (name == "quad4") return fem::ElementType::Quad4;
  throw SerializeError("line " + std::to_string(line) +
                       ": unknown element type '" + name + "'");
}

}  // namespace

std::string serialize_model(const fem::StructureModel& model) {
  std::ostringstream os;
  os.precision(17);
  os << "model " << model.name << "\n";
  for (const auto& n : model.nodes) os << "node " << n.x << " " << n.y << "\n";
  for (const auto& m : model.materials) {
    os << "material " << m.name << " E=" << m.youngs_modulus
       << " nu=" << m.poisson_ratio << " A=" << m.area
       << " I=" << m.moment_of_inertia << " t=" << m.thickness
       << " rho=" << m.density << "\n";
  }
  for (const auto& e : model.elements) {
    os << "element " << fem::element_type_name(e.type);
    for (std::size_t i = 0; i < e.node_count(); ++i) os << " " << e.nodes[i];
    os << " mat=" << e.material << "\n";
  }
  for (const auto& c : model.constraints)
    os << "constraint " << c.node << " " << c.dof << " " << c.value << "\n";
  for (const auto& [set_name, set] : model.load_sets)
    for (const auto& load : set.loads)
      os << "load " << set_name << " " << load.node << " " << load.dof << " "
         << load.value << "\n";
  return os.str();
}

fem::StructureModel parse_model(const std::string& text) {
  fem::StructureModel model;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_model = false;

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = support::split_ws(line);
    if (tokens.empty() || tokens[0].starts_with('#')) continue;
    const std::string& kind = tokens[0];

    if (kind == "model") {
      if (tokens.size() != 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": model takes a single name");
      model.name = tokens[1];
      saw_model = true;
    } else if (kind == "node") {
      if (tokens.size() != 3)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": node takes x y");
      model.add_node(parse_double(tokens[1], line_no),
                     parse_double(tokens[2], line_no));
    } else if (kind == "material") {
      if (tokens.size() < 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": material needs a name");
      fem::Material m;
      m.name = tokens[1];
      std::string value;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (keyed(tokens[i], "E", value)) m.youngs_modulus = parse_double(value, line_no);
        else if (keyed(tokens[i], "nu", value)) m.poisson_ratio = parse_double(value, line_no);
        else if (keyed(tokens[i], "A", value)) m.area = parse_double(value, line_no);
        else if (keyed(tokens[i], "I", value)) m.moment_of_inertia = parse_double(value, line_no);
        else if (keyed(tokens[i], "t", value)) m.thickness = parse_double(value, line_no);
        else if (keyed(tokens[i], "rho", value)) m.density = parse_double(value, line_no);
        else
          throw SerializeError("line " + std::to_string(line_no) +
                               ": unknown material property '" + tokens[i] +
                               "'");
      }
      model.add_material(std::move(m));
    } else if (kind == "element") {
      if (tokens.size() < 4)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": element needs a type and nodes");
      const fem::ElementType type = element_type_from_name(tokens[1], line_no);
      const std::size_t expected = fem::element_node_count(type);
      std::size_t material = 0;
      std::vector<std::size_t> nodes;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string value;
        if (keyed(tokens[i], "mat", value)) {
          material = parse_index(value, line_no);
        } else {
          nodes.push_back(parse_index(tokens[i], line_no));
        }
      }
      if (nodes.size() != expected)
        throw SerializeError("line " + std::to_string(line_no) + ": " +
                             std::string(fem::element_type_name(type)) +
                             " takes " + std::to_string(expected) + " nodes");
      fem::Element e;
      e.type = type;
      e.material = material;
      for (std::size_t i = 0; i < nodes.size(); ++i) e.nodes[i] = nodes[i];
      model.elements.push_back(e);
    } else if (kind == "constraint") {
      if (tokens.size() != 4)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": constraint takes node dof value");
      model.add_constraint(parse_index(tokens[1], line_no),
                           parse_index(tokens[2], line_no),
                           parse_double(tokens[3], line_no));
    } else if (kind == "load") {
      if (tokens.size() != 5)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": load takes set node dof value");
      model.add_load(tokens[1], parse_index(tokens[2], line_no),
                     parse_index(tokens[3], line_no),
                     parse_double(tokens[4], line_no));
    } else {
      throw SerializeError("line " + std::to_string(line_no) +
                           ": unknown record '" + kind + "'");
    }
  }
  if (!saw_model)
    throw SerializeError("model text has no 'model <name>' record");

  // Structural validation — the database must never hand a session an
  // unusable model (records may arrive in any order, so check at the end).
  for (std::size_t i = 0; i < model.elements.size(); ++i) {
    const auto& e = model.elements[i];
    if (e.material >= std::max<std::size_t>(model.materials.size(), 1))
      throw SerializeError("element " + std::to_string(i) +
                           " references missing material " +
                           std::to_string(e.material));
    for (std::size_t k = 0; k < e.node_count(); ++k) {
      if (e.nodes[k] >= model.nodes.size())
        throw SerializeError("element " + std::to_string(i) +
                             " references missing node " +
                             std::to_string(e.nodes[k]));
    }
  }
  for (std::size_t i = 0; i < model.constraints.size(); ++i) {
    const auto& c = model.constraints[i];
    if (c.node >= model.nodes.size())
      throw SerializeError("constraint references missing node " +
                           std::to_string(c.node));
    for (std::size_t j = i + 1; j < model.constraints.size(); ++j) {
      if (model.constraints[j].node == c.node &&
          model.constraints[j].dof == c.dof)
        throw SerializeError("duplicate constraint on node " +
                             std::to_string(c.node) + " dof " +
                             std::to_string(c.dof));
    }
  }
  for (const auto& [set_name, set] : model.load_sets) {
    for (const auto& load : set.loads) {
      if (load.node >= model.nodes.size())
        throw SerializeError("load set '" + set_name +
                             "' references missing node " +
                             std::to_string(load.node));
    }
  }
  return model;
}

std::string serialize_results(const fem::AnalysisResult& results) {
  std::ostringstream os;
  os.precision(17);
  const auto stress_record = [&os](const char* tag,
                                   const fem::ElementStress& s) {
    os << tag << " " << s.element << " " << s.sigma_xx << " " << s.sigma_yy
       << " " << s.tau_xy << " " << s.von_mises << "\n";
  };
  const auto& stats = results.solution.stats;
  os << "results\n";
  os << "method " << stats.method << "\n";
  os << "converged " << (stats.converged ? 1 : 0) << "\n";
  os << "iterations " << stats.iterations << "\n";
  os << "residual " << stats.residual << "\n";
  os << "matrix-bytes " << stats.matrix_storage_bytes << "\n";
  const auto& u = results.solution.displacements;
  os << "displacements " << u.dofs_per_node;
  for (const double v : u.values) os << " " << v;
  os << "\n";
  for (const auto& s : results.stresses) stress_record("stress", s);
  stress_record("peak", results.peak);
  return os.str();
}

fem::AnalysisResult parse_results(const std::string& text) {
  fem::AnalysisResult results;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_peak = false;

  const auto parse_stress = [](const std::vector<std::string>& tokens,
                               std::size_t line_number) {
    if (tokens.size() != 6)
      throw SerializeError("line " + std::to_string(line_number) +
                           ": stress takes element sxx syy txy vm");
    fem::ElementStress s;
    s.element = parse_index(tokens[1], line_number);
    s.sigma_xx = parse_double(tokens[2], line_number);
    s.sigma_yy = parse_double(tokens[3], line_number);
    s.tau_xy = parse_double(tokens[4], line_number);
    s.von_mises = parse_double(tokens[5], line_number);
    return s;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = support::split_ws(line);
    if (tokens.empty() || tokens[0].starts_with('#')) continue;
    const std::string& kind = tokens[0];

    if (kind == "results") {
      saw_header = true;
    } else if (kind == "method") {
      // Method names may contain spaces — take the rest of the line.
      const auto pos = line.find("method ");
      results.solution.stats.method =
          std::string(support::trim(line.substr(pos + 7)));
    } else if (kind == "converged") {
      if (tokens.size() != 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": converged takes 0 or 1");
      results.solution.stats.converged = parse_index(tokens[1], line_no) != 0;
    } else if (kind == "iterations") {
      if (tokens.size() != 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": iterations takes a count");
      results.solution.stats.iterations = parse_index(tokens[1], line_no);
    } else if (kind == "residual") {
      if (tokens.size() != 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": residual takes a value");
      results.solution.stats.residual = parse_double(tokens[1], line_no);
    } else if (kind == "matrix-bytes") {
      if (tokens.size() != 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": matrix-bytes takes a count");
      results.solution.stats.matrix_storage_bytes =
          parse_index(tokens[1], line_no);
    } else if (kind == "displacements") {
      if (tokens.size() < 2)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": displacements needs dofs_per_node");
      auto& u = results.solution.displacements;
      u.dofs_per_node = parse_index(tokens[1], line_no);
      if (u.dofs_per_node == 0)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": dofs_per_node must be positive");
      u.values.clear();
      u.values.reserve(tokens.size() - 2);
      for (std::size_t i = 2; i < tokens.size(); ++i)
        u.values.push_back(parse_double(tokens[i], line_no));
      if (u.values.size() % u.dofs_per_node != 0)
        throw SerializeError("line " + std::to_string(line_no) +
                             ": displacement count is not a multiple of "
                             "dofs_per_node");
    } else if (kind == "stress") {
      results.stresses.push_back(parse_stress(tokens, line_no));
    } else if (kind == "peak") {
      results.peak = parse_stress(tokens, line_no);
      saw_peak = true;
    } else {
      throw SerializeError("line " + std::to_string(line_no) +
                           ": unknown record '" + kind + "'");
    }
  }
  if (!saw_header)
    throw SerializeError("results text has no 'results' record");
  if (!saw_peak)
    throw SerializeError("results text has no 'peak' record");
  return results;
}

}  // namespace fem2::appvm
