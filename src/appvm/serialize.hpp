// Text serialization of structural models — the representation the
// database stores ("long-term storage; shared data") and the format the
// interactive session can import/export.
#pragma once

#include <string>

#include "fem/model.hpp"
#include "support/check.hpp"

namespace fem2::appvm {

class SerializeError : public support::Error {
 public:
  using support::Error::Error;
};

/// Deterministic, line-oriented model text:
///   model <name>
///   node <x> <y>
///   material <name> E=<v> nu=<v> A=<v> I=<v> t=<v>
///   element <type> <n0> <n1> [...] mat=<idx>
///   constraint <node> <dof> <value>
///   load <set> <node> <dof> <value>
std::string serialize_model(const fem::StructureModel& model);

/// Inverse of serialize_model.  Throws SerializeError on malformed text.
fem::StructureModel parse_model(const std::string& text);

}  // namespace fem2::appvm
