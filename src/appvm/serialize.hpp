// Text serialization of structural models — the representation the
// database stores ("long-term storage; shared data") and the format the
// interactive session can import/export.
#pragma once

#include <string>

#include "fem/analysis.hpp"
#include "fem/model.hpp"
#include "support/check.hpp"

namespace fem2::appvm {

class SerializeError : public support::Error {
 public:
  using support::Error::Error;
};

/// Deterministic, line-oriented model text:
///   model <name>
///   node <x> <y>
///   material <name> E=<v> nu=<v> A=<v> I=<v> t=<v>
///   element <type> <n0> <n1> [...] mat=<idx>
///   constraint <node> <dof> <value>
///   load <set> <node> <dof> <value>
std::string serialize_model(const fem::StructureModel& model);

/// Inverse of serialize_model.  Throws SerializeError on malformed text,
/// including structurally invalid models: out-of-range node/material
/// indices, duplicate constraints, degenerate elements.
fem::StructureModel parse_model(const std::string& text);

/// Deterministic, line-oriented analysis-result text (the database's
/// stored form of "displacements of nodes, stresses on elements"):
///   results
///   method <free text>
///   converged <0|1>
///   iterations <n>
///   residual <v>
///   matrix-bytes <n>
///   displacements <dofs_per_node> <v0> <v1> ...
///   stress <element> <sxx> <syy> <txy> <vm>     (one per element)
///   peak <element> <sxx> <syy> <txy> <vm>
/// Round-trips bit-identically (17 significant digits).
std::string serialize_results(const fem::AnalysisResult& results);

/// Inverse of serialize_results.  Throws SerializeError on malformed text.
fem::AnalysisResult parse_results(const std::string& text);

}  // namespace fem2::appvm
