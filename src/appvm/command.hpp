// The interactive command language — the application user's VM sequence
// control is "direct interpretation of user commands".  A Session couples a
// private Workspace with the shared Database; multiple sessions over one
// database model the multi-user workstation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appvm/database.hpp"
#include "appvm/workspace.hpp"

namespace fem2::appvm {

struct Response {
  bool ok = true;
  std::string text;
};

class Session {
 public:
  explicit Session(Database& database, std::string user = "engineer");
  /// Abandons (aborts) any transaction still open.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Interpret one command line.  Errors come back as ok=false responses,
  /// never exceptions — an interactive console must survive typos.
  Response execute(const std::string& line);

  /// Run a newline-separated script; stops at the first failure unless
  /// `keep_going`.
  std::vector<Response> execute_script(const std::string& script,
                                       bool keep_going = false);

  Workspace& workspace() { return workspace_; }
  const Workspace& workspace() const { return workspace_; }
  Database& database() { return database_; }
  const std::string& user() const { return user_; }

  /// Open transaction id, when `begin` has run and not yet committed.
  std::optional<std::uint64_t> transaction() const { return txn_; }

  /// Command language reference (the `help` command's output).
  static std::string help_text();

 private:
  Response dispatch(const std::vector<std::string>& tokens);

  Response cmd_new(const std::vector<std::string>& tokens);
  Response cmd_node(const std::vector<std::string>& tokens);
  Response cmd_material(const std::vector<std::string>& tokens);
  Response cmd_element(const std::vector<std::string>& tokens);
  Response cmd_fix(const std::vector<std::string>& tokens);
  Response cmd_constrain(const std::vector<std::string>& tokens);
  Response cmd_load(const std::vector<std::string>& tokens);
  Response cmd_mesh(const std::vector<std::string>& tokens);
  Response cmd_solve(const std::vector<std::string>& tokens);
  Response cmd_modes(const std::vector<std::string>& tokens);
  Response cmd_stresses(const std::vector<std::string>& tokens);
  Response cmd_show(const std::vector<std::string>& tokens);
  Response cmd_store(const std::vector<std::string>& tokens);
  Response cmd_retrieve(const std::vector<std::string>& tokens);
  Response cmd_list(const std::vector<std::string>& tokens);
  Response cmd_remove(const std::vector<std::string>& tokens);
  Response cmd_begin(const std::vector<std::string>& tokens);
  Response cmd_commit(const std::vector<std::string>& tokens);
  Response cmd_abort(const std::vector<std::string>& tokens);
  Response cmd_history(const std::vector<std::string>& tokens);
  Response cmd_save(const std::vector<std::string>& tokens);
  Response cmd_open(const std::vector<std::string>& tokens);

  Database& database_;
  Workspace workspace_;
  std::string user_;
  std::optional<std::uint64_t> txn_;
};

}  // namespace fem2::appvm
