// The interactive command language — the application user's VM sequence
// control is "direct interpretation of user commands".  A Session couples a
// private Workspace with the shared Database; multiple sessions over one
// database model the multi-user workstation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appvm/database.hpp"
#include "appvm/workspace.hpp"
#include "db/retry.hpp"

namespace fem2::appvm {

struct Response {
  /// Why a command failed, for retry classification: conflicts, transient
  /// I/O and server pushback (a tenant over quota, a full server queue)
  /// are worth re-running after a backoff; degraded means the store needs
  /// recovery first; everything else is the user's problem.
  enum class FailureKind {
    None,
    Conflict,
    TransientIo,
    Degraded,
    QuotaExceeded,  ///< tenant admission control said no (serve layer)
    Overloaded,     ///< server request queue is full (serve layer)
    Other,
  };

  /// The retry contract, shared by Session::execute_with_retry and the
  /// serve layer's call_with_retry.
  static bool retryable(FailureKind kind) {
    return kind == FailureKind::Conflict || kind == FailureKind::TransientIo ||
           kind == FailureKind::QuotaExceeded ||
           kind == FailureKind::Overloaded;
  }

  bool ok = true;
  std::string text;
  FailureKind kind = FailureKind::None;
};

class Session {
 public:
  /// `tenant` scopes the session for the serve layer's admission control
  /// and accounting; empty means untenanted (a local console).
  explicit Session(Database& database, std::string user = "engineer",
                   std::string tenant = "");
  /// Abandons (aborts) any transaction still open.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Interpret one command line.  Errors come back as ok=false responses,
  /// never exceptions — an interactive console must survive typos.
  Response execute(const std::string& line);

  /// Like execute(), but re-runs the command under the session's
  /// RetryPolicy while it fails with a conflict or transient I/O error.
  /// Pair with `if-rev=head`, which re-resolves the current revision on
  /// every attempt, for a safe compare-and-swap loop.
  Response execute_with_retry(const std::string& line);

  void set_retry_policy(db::RetryPolicy policy) { retry_policy_ = policy; }
  const db::RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Injectable wait for retry backoff (tests record instead of sleeping).
  void set_sleeper(db::Sleeper sleeper) { sleeper_ = std::move(sleeper); }

  /// Run a newline-separated script; stops at the first failure unless
  /// `keep_going`.
  std::vector<Response> execute_script(const std::string& script,
                                       bool keep_going = false);

  Workspace& workspace() { return workspace_; }
  const Workspace& workspace() const { return workspace_; }
  Database& database() { return database_; }
  const std::string& user() const { return user_; }
  const std::string& tenant() const { return tenant_; }

  /// Open transaction id, when `begin` has run and not yet committed.
  std::optional<std::uint64_t> transaction() const { return txn_; }

  /// Command language reference (the `help` command's output).
  static std::string help_text();

 private:
  Response dispatch(const std::vector<std::string>& tokens);

  Response cmd_new(const std::vector<std::string>& tokens);
  Response cmd_node(const std::vector<std::string>& tokens);
  Response cmd_material(const std::vector<std::string>& tokens);
  Response cmd_element(const std::vector<std::string>& tokens);
  Response cmd_fix(const std::vector<std::string>& tokens);
  Response cmd_constrain(const std::vector<std::string>& tokens);
  Response cmd_load(const std::vector<std::string>& tokens);
  Response cmd_mesh(const std::vector<std::string>& tokens);
  Response cmd_solve(const std::vector<std::string>& tokens);
  Response cmd_modes(const std::vector<std::string>& tokens);
  Response cmd_stresses(const std::vector<std::string>& tokens);
  Response cmd_show(const std::vector<std::string>& tokens);
  Response cmd_store(const std::vector<std::string>& tokens);
  Response cmd_retrieve(const std::vector<std::string>& tokens);
  Response cmd_list(const std::vector<std::string>& tokens);
  Response cmd_query(const std::vector<std::string>& tokens);
  Response cmd_remove(const std::vector<std::string>& tokens);
  Response cmd_begin(const std::vector<std::string>& tokens);
  Response cmd_commit(const std::vector<std::string>& tokens);
  Response cmd_abort(const std::vector<std::string>& tokens);
  Response cmd_history(const std::vector<std::string>& tokens);
  Response cmd_save(const std::vector<std::string>& tokens);
  Response cmd_open(const std::vector<std::string>& tokens);

  Database& database_;
  Workspace workspace_;
  std::string user_;
  std::string tenant_;
  std::optional<std::uint64_t> txn_;
  db::RetryPolicy retry_policy_;
  db::Sleeper sleeper_ = db::sleep_for;
};

}  // namespace fem2::appvm
