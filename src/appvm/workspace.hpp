// The application user's "workspace (user local data)": each session's
// private working state — the model being edited, the latest analysis, and
// data moved in from the shared database.
#pragma once

#include <optional>
#include <string>

#include "fem/analysis.hpp"
#include "fem/model.hpp"

namespace fem2::appvm {

class Workspace {
 public:
  bool has_model() const { return model_.has_value(); }
  fem::StructureModel& model();
  const fem::StructureModel& model() const;
  void set_model(fem::StructureModel model) { model_ = std::move(model); }
  void clear_model() { model_.reset(); results_.reset(); }

  bool has_results() const { return results_.has_value(); }
  const fem::AnalysisResult& results() const;
  void set_results(fem::AnalysisResult results) {
    results_ = std::move(results);
  }
  void clear_results() { results_.reset(); }

  /// Dynamic storage in use by this workspace (bytes).
  std::size_t storage_bytes() const;

 private:
  std::optional<fem::StructureModel> model_;
  std::optional<fem::AnalysisResult> results_;
};

}  // namespace fem2::appvm
