#include "appvm/command.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "appvm/serialize.hpp"
#include "fem/dynamics.hpp"
#include "fem/mesh.hpp"
#include "support/strings.hpp"

namespace fem2::appvm {

namespace {

class CommandError : public support::Error {
 public:
  using support::Error::Error;
};

double to_double(const std::string& token) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw CommandError("expected a number, found '" + token + "'");
  }
}

std::size_t to_index(const std::string& token) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw CommandError("expected an index, found '" + token + "'");
  return value;
}

/// key=value option scanning over a token range.
class Options {
 public:
  Options(const std::vector<std::string>& tokens, std::size_t first) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        flags_.push_back(tokens[i]);
      } else {
        pairs_.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
      }
    }
  }

  double number(std::string_view key, double fallback) const {
    for (const auto& [k, v] : pairs_)
      if (k == key) return to_double(v);
    return fallback;
  }
  std::size_t index(std::string_view key, std::size_t fallback) const {
    for (const auto& [k, v] : pairs_)
      if (k == key) return to_index(v);
    return fallback;
  }
  std::string text(std::string_view key, std::string fallback = "") const {
    for (const auto& [k, v] : pairs_)
      if (k == key) return v;
    return fallback;
  }
  bool flag(std::string_view name) const {
    for (const auto& f : flags_)
      if (f == name) return true;
    return false;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
  std::vector<std::string> flags_;
};

fem::SolverKind solver_from_name(const std::string& name) {
  if (name == "skyline") return fem::SolverKind::SkylineDirect;
  if (name == "cholesky") return fem::SolverKind::DenseCholesky;
  if (name == "cg") return fem::SolverKind::ConjugateGradient;
  if (name == "pcg") return fem::SolverKind::PreconditionedCg;
  if (name == "gauss-seidel") return fem::SolverKind::GaussSeidel;
  if (name == "sor") return fem::SolverKind::Sor;
  if (name == "jacobi") return fem::SolverKind::Jacobi;
  throw CommandError("unknown solver '" + name +
                     "' (skyline, cholesky, cg, pcg, gauss-seidel, sor, "
                     "jacobi)");
}

fem::ElementType element_from_name(const std::string& name) {
  if (name == "bar" || name == "bar2") return fem::ElementType::Bar2;
  if (name == "beam" || name == "beam2") return fem::ElementType::Beam2;
  if (name == "tri" || name == "tri3") return fem::ElementType::Tri3;
  if (name == "quad" || name == "quad4") return fem::ElementType::Quad4;
  throw CommandError("unknown element type '" + name + "'");
}

}  // namespace

Session::Session(Database& database, std::string user, std::string tenant)
    : database_(database), user_(std::move(user)), tenant_(std::move(tenant)) {}

Session::~Session() {
  if (txn_) {
    try {
      database_.abort(*txn_);
    } catch (const support::Error&) {
      // The engine may already have dropped it (e.g. conflicted commit).
    }
  }
}

Response Session::execute(const std::string& line) {
  const auto trimmed = support::trim(line);
  if (trimmed.empty() || trimmed.starts_with('#')) return {true, ""};
  const auto tokens = support::split_ws(trimmed);
  try {
    Response response = dispatch(tokens);
    // A failure built inline (usage errors and the like) defaults its
    // kind; normalize so FailureKind::None always means success.
    if (!response.ok && response.kind == Response::FailureKind::None)
      response.kind = Response::FailureKind::Other;
    return response;
  } catch (const db::ConflictError& e) {
    return {false, e.what(), Response::FailureKind::Conflict};
  } catch (const db::DegradedError& e) {
    return {false, e.what(), Response::FailureKind::Degraded};
  } catch (const db::IoError& e) {
    return {false, e.what(),
            e.transient() ? Response::FailureKind::TransientIo
                          : Response::FailureKind::Other};
  } catch (const support::Error& e) {
    return {false, e.what(), Response::FailureKind::Other};
  } catch (const support::CheckError& e) {
    return {false, e.what(), Response::FailureKind::Other};
  }
}

Response Session::execute_with_retry(const std::string& line) {
  db::RetrySchedule schedule(retry_policy_);
  for (;;) {
    Response response = execute(line);
    if (response.ok || !Response::retryable(response.kind)) return response;
    const auto delay = schedule.next_delay();
    if (!delay) return response;
    if (delay->count() > 0) sleeper_(*delay);
  }
}

std::vector<Response> Session::execute_script(const std::string& script,
                                              bool keep_going) {
  std::vector<Response> out;
  std::istringstream is(script);
  std::string line;
  while (std::getline(is, line)) {
    out.push_back(execute(line));
    if (!out.back().ok && !keep_going) break;
  }
  return out;
}

Response Session::dispatch(const std::vector<std::string>& tokens) {
  const std::string& cmd = tokens[0];
  if (cmd == "help") return {true, help_text()};
  if (cmd == "new") return cmd_new(tokens);
  if (cmd == "node") return cmd_node(tokens);
  if (cmd == "material") return cmd_material(tokens);
  if (cmd == "element") return cmd_element(tokens);
  if (cmd == "fix") return cmd_fix(tokens);
  if (cmd == "constrain") return cmd_constrain(tokens);
  if (cmd == "load") return cmd_load(tokens);
  if (cmd == "mesh") return cmd_mesh(tokens);
  if (cmd == "solve") return cmd_solve(tokens);
  if (cmd == "modes") return cmd_modes(tokens);
  if (cmd == "stresses") return cmd_stresses(tokens);
  if (cmd == "show") return cmd_show(tokens);
  if (cmd == "store") return cmd_store(tokens);
  if (cmd == "retrieve") return cmd_retrieve(tokens);
  if (cmd == "list") return cmd_list(tokens);
  if (cmd == "query") return cmd_query(tokens);
  if (cmd == "remove") return cmd_remove(tokens);
  if (cmd == "begin") return cmd_begin(tokens);
  if (cmd == "commit") return cmd_commit(tokens);
  if (cmd == "abort") return cmd_abort(tokens);
  if (cmd == "history") return cmd_history(tokens);
  if (cmd == "save") return cmd_save(tokens);
  if (cmd == "open") return cmd_open(tokens);
  return {false, "unknown command '" + cmd + "' (try 'help')"};
}

Response Session::cmd_new(const std::vector<std::string>& tokens) {
  if (tokens.size() != 3 || tokens[1] != "model")
    return {false, "usage: new model <name>"};
  fem::StructureModel model;
  model.name = tokens[2];
  workspace_.set_model(std::move(model));
  return {true, "new model '" + tokens[2] + "'"};
}

Response Session::cmd_node(const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) return {false, "usage: node <x> <y>"};
  const auto id = workspace_.model().add_node(to_double(tokens[1]),
                                              to_double(tokens[2]));
  return {true, "node " + std::to_string(id)};
}

Response Session::cmd_material(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) return {false, "usage: material <name> [E= nu= A= I= t=]"};
  fem::Material m;
  m.name = tokens[1];
  const Options opts(tokens, 2);
  m.youngs_modulus = opts.number("E", m.youngs_modulus);
  m.poisson_ratio = opts.number("nu", m.poisson_ratio);
  m.area = opts.number("A", m.area);
  m.moment_of_inertia = opts.number("I", m.moment_of_inertia);
  m.thickness = opts.number("t", m.thickness);
  m.density = opts.number("rho", m.density);
  const auto id = workspace_.model().add_material(std::move(m));
  return {true, "material " + std::to_string(id)};
}

Response Session::cmd_element(const std::vector<std::string>& tokens) {
  if (tokens.size() < 4)
    return {false, "usage: element <type> <nodes...> [mat=i]"};
  const fem::ElementType type = element_from_name(tokens[1]);
  const std::size_t expected = fem::element_node_count(type);
  std::vector<std::size_t> nodes;
  std::size_t material = 0;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i].starts_with("mat=")) {
      material = to_index(tokens[i].substr(4));
    } else {
      nodes.push_back(to_index(tokens[i]));
    }
  }
  if (nodes.size() != expected)
    return {false, std::string(fem::element_type_name(type)) + " takes " +
                       std::to_string(expected) + " nodes"};
  auto& model = workspace_.model();
  fem::Element e;
  e.type = type;
  e.material = material;
  for (std::size_t i = 0; i < nodes.size(); ++i) e.nodes[i] = nodes[i];
  model.elements.push_back(e);
  return {true, "element " + std::to_string(model.elements.size() - 1)};
}

Response Session::cmd_fix(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) return {false, "usage: fix <node>"};
  workspace_.model().fix_node(to_index(tokens[1]));
  return {true, "fixed node " + tokens[1]};
}

Response Session::cmd_constrain(const std::vector<std::string>& tokens) {
  if (tokens.size() < 3 || tokens.size() > 4)
    return {false, "usage: constrain <node> <dof> [value]"};
  const double value = tokens.size() == 4 ? to_double(tokens[3]) : 0.0;
  workspace_.model().add_constraint(to_index(tokens[1]), to_index(tokens[2]),
                                    value);
  return {true, "constrained"};
}

Response Session::cmd_load(const std::vector<std::string>& tokens) {
  if (tokens.size() != 5)
    return {false, "usage: load <set> <node> <dof> <value>"};
  workspace_.model().add_load(tokens[1], to_index(tokens[2]),
                              to_index(tokens[3]), to_double(tokens[4]));
  return {true, "load added to set '" + tokens[1] + "'"};
}

Response Session::cmd_mesh(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2)
    return {false, "usage: mesh plate|beam|truss [options]"};
  const Options opts(tokens, 2);
  if (tokens[1] == "plate") {
    fem::PlateMeshOptions po;
    po.nx = opts.index("nx", po.nx);
    po.ny = opts.index("ny", po.ny);
    po.width = opts.number("width", po.width);
    po.height = opts.number("height", po.height);
    if (opts.flag("tri")) po.element = fem::ElementType::Tri3;
    po.material.youngs_modulus = opts.number("E", po.material.youngs_modulus);
    po.material.thickness = opts.number("t", po.material.thickness);
    const double load = opts.number("load", 1.0);
    workspace_.set_model(fem::make_cantilever_plate(po, load));
    return {true, "meshed cantilever plate " + std::to_string(po.nx) + "x" +
                      std::to_string(po.ny) + " (" +
                      std::to_string(workspace_.model().total_dofs()) +
                      " dofs, load set 'tip-shear')"};
  }
  if (tokens[1] == "beam") {
    fem::FrameOptions fo;
    fo.segments = opts.index("segments", fo.segments);
    fo.length = opts.number("length", fo.length);
    const double load = opts.number("load", 1.0);
    workspace_.set_model(fem::make_cantilever_beam(fo, load));
    return {true, "meshed cantilever beam (" +
                      std::to_string(fo.segments) +
                      " segments, load set 'tip')"};
  }
  if (tokens[1] == "truss") {
    fem::TrussOptions to;
    to.bays = opts.index("bays", to.bays);
    to.bay_width = opts.number("bay-width", to.bay_width);
    to.height = opts.number("height", to.height);
    const double load = opts.number("load", 1.0);
    workspace_.set_model(fem::make_truss_bridge(to, load));
    return {true, "meshed truss bridge (" + std::to_string(to.bays) +
                      " bays, load set 'deck')"};
  }
  return {false, "unknown mesh kind '" + tokens[1] + "'"};
}

Response Session::cmd_solve(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2)
    return {false, "usage: solve <loadset> [using <solver>] [tol=...]"};
  fem::SolverOptions options;
  const std::string& load_set = tokens[1];
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i] == "using" && i + 1 < tokens.size()) {
      options.kind = solver_from_name(tokens[++i]);
    } else if (tokens[i].starts_with("tol=")) {
      options.tolerance = to_double(tokens[i].substr(4));
    } else {
      return {false, "unexpected token '" + tokens[i] + "'"};
    }
  }
  fem::AnalysisResult results = fem::analyze(workspace_.model(), load_set,
                                             options);
  std::ostringstream os;
  os << "solved '" << load_set << "' with " << results.solution.stats.method;
  if (results.solution.stats.iterations > 0)
    os << " in " << results.solution.stats.iterations << " iterations";
  os << " (residual " << results.solution.stats.residual << ")";
  if (!results.solution.stats.converged) os << " — DID NOT CONVERGE";
  const bool ok = results.solution.stats.converged;
  workspace_.set_results(std::move(results));
  return {ok, os.str()};
}

Response Session::cmd_modes(const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) return {false, "usage: modes [count]"};
  const std::size_t count = tokens.size() == 2 ? to_index(tokens[1]) : 4;
  if (count == 0) return {false, "mode count must be positive"};
  const auto modal = fem::modal_analysis(workspace_.model(), count);
  std::ostringstream os;
  os << "natural frequencies";
  if (!modal.converged) os << " (NOT fully converged)";
  os << ":";
  os.precision(4);
  for (std::size_t i = 0; i < modal.modes.size(); ++i)
    os << (i ? ", " : " ") << "f" << i + 1 << "=" << modal.modes[i].frequency
       << " Hz";
  return {modal.converged, os.str()};
}

Response Session::cmd_stresses(const std::vector<std::string>&) {
  const auto& results = workspace_.results();
  const auto& peak = results.peak;
  std::ostringstream os;
  os << "stresses on " << results.stresses.size()
     << " elements; peak von Mises " << peak.von_mises << " on element "
     << peak.element;
  return {true, os.str()};
}

Response Session::cmd_show(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2)
    return {false, "usage: show model|displacements [node]|peak"};
  std::ostringstream os;
  if (tokens[1] == "model") {
    const auto& m = workspace_.model();
    os << "model '" << m.name << "': " << m.nodes.size() << " nodes, "
       << m.elements.size() << " elements, " << m.constraints.size()
       << " constraints, " << m.load_sets.size() << " load sets, "
       << m.total_dofs() << " dofs";
    return {true, os.str()};
  }
  if (tokens[1] == "displacements") {
    const auto& u = workspace_.results().solution.displacements;
    if (tokens.size() == 3) {
      const std::size_t node = to_index(tokens[2]);
      os << "node " << node << ":";
      for (std::size_t d = 0; d < u.dofs_per_node; ++d)
        os << " " << u.at(node, d);
    } else {
      double peak = 0.0;
      std::size_t peak_node = 0;
      const std::size_t nodes = u.values.size() / u.dofs_per_node;
      for (std::size_t n = 0; n < nodes; ++n) {
        for (std::size_t d = 0; d < u.dofs_per_node; ++d) {
          if (std::abs(u.at(n, d)) > std::abs(peak)) {
            peak = u.at(n, d);
            peak_node = n;
          }
        }
      }
      os << nodes << " nodes; largest displacement " << peak << " at node "
         << peak_node;
    }
    return {true, os.str()};
  }
  if (tokens[1] == "peak") {
    const auto& peak = workspace_.results().peak;
    os << "peak von Mises " << peak.von_mises << " on element "
       << peak.element;
    return {true, os.str()};
  }
  return {false, "unknown show target '" + tokens[1] + "'"};
}

Response Session::cmd_store(const std::vector<std::string>& tokens) {
  constexpr const char* kUsage =
      "usage: store <name> [if-rev=N] | store results <name> [if-rev=N]";
  const bool results = tokens.size() >= 3 && tokens[1] == "results";
  const std::size_t name_at = results ? 2 : 1;
  if (tokens.size() <= name_at) return {false, kUsage};
  const std::string& name = tokens[name_at];
  std::uint64_t expected = Database::kAnyRevision;
  for (std::size_t i = name_at + 1; i < tokens.size(); ++i) {
    if (!tokens[i].starts_with("if-rev=")) return {false, kUsage};
    const std::string value = tokens[i].substr(7);
    // `head` resolves the revision now, at dispatch — so a retry of this
    // command compares against whatever the racing writer left behind.
    expected = value == "head" ? database_.revision(name) : to_index(value);
  }

  if (txn_) {
    if (results)
      database_.store_results(*txn_, name, workspace_.results(), expected);
    else
      database_.store_model(*txn_, name, workspace_.model(), expected);
    return {true, "store of '" + name + "' buffered in txn " +
                      std::to_string(*txn_)};
  }
  if (results) {
    const auto rev =
        database_.store_results(name, workspace_.results(), expected);
    return {true, "stored results as '" + name + "' rev " +
                      std::to_string(rev)};
  }
  const auto rev = database_.store_model(name, workspace_.model(), expected);
  return {true, "stored model as '" + name + "' rev " + std::to_string(rev)};
}

Response Session::cmd_retrieve(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2 || tokens.size() > 3)
    return {false, "usage: retrieve <name> [rev=N]"};
  const std::string& name = tokens[1];
  if (tokens.size() == 3) {
    if (!tokens[2].starts_with("rev="))
      return {false, "usage: retrieve <name> [rev=N]"};
    const std::uint64_t rev = to_index(tokens[2].substr(4));
    workspace_.set_model(database_.retrieve_model(name, rev));
    return {true, "retrieved model '" + name + "' rev " +
                      std::to_string(rev) + " into the workspace"};
  }
  if (txn_) {
    workspace_.set_model(database_.retrieve_model(*txn_, name));
    return {true, "retrieved model '" + name +
                      "' into the workspace (txn view)"};
  }
  workspace_.set_model(database_.retrieve_model(name));
  return {true, "retrieved model '" + name + "' rev " +
                    std::to_string(database_.revision(name)) +
                    " into the workspace"};
}

Response Session::cmd_list(const std::vector<std::string>&) {
  const auto entries = database_.list();
  if (entries.empty()) return {true, "database is empty"};
  std::ostringstream os;
  for (const auto& e : entries)
    os << e.kind << " '" << e.name << "' rev " << e.revision << " ("
       << e.bytes << " bytes)\n";
  std::string text = os.str();
  text.pop_back();
  return {true, text};
}

Response Session::cmd_query(const std::vector<std::string>& tokens) {
  constexpr const char* kUsage =
      "usage: query [kind=model|results] [prefix=<p>] [min-rev=N] "
      "[max-rev=N] [limit=N]";
  static constexpr std::string_view kKeys[] = {"kind", "prefix", "min-rev",
                                               "max-rev", "limit"};
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) return {false, kUsage};
    const std::string key = tokens[i].substr(0, eq);
    if (std::find(std::begin(kKeys), std::end(kKeys), key) == std::end(kKeys))
      return {false, "unknown query option '" + key + "'\n" + kUsage};
  }
  const Options opts(tokens, 1);
  db::QueryFilter filter;
  filter.kind = opts.text("kind");
  filter.name_prefix = opts.text("prefix");
  filter.min_revision = opts.index("min-rev", 0);
  filter.max_revision = opts.index("max-rev", db::kAnyRevision);
  filter.limit = opts.index("limit", 0);
  const db::QueryResult result = database_.query(filter);

  std::ostringstream os;
  for (const auto& row : result.rows)
    os << row.kind << " '" << row.name << "' rev " << row.revision << " ("
       << row.bytes << " bytes)\n";
  os << result.rows.size() << (result.rows.size() == 1 ? " row" : " rows");
  if (result.truncated) os << " (truncated by limit)";
  os << "; plan " << result.plan << ", scanned " << result.scanned;
  return {true, os.str()};
}

Response Session::cmd_remove(const std::vector<std::string>& tokens) {
  constexpr const char* kUsage = "usage: remove <name> [if-rev=N]";
  if (tokens.size() < 2 || tokens.size() > 3) return {false, kUsage};
  const std::string& name = tokens[1];
  std::uint64_t expected = Database::kAnyRevision;
  if (tokens.size() == 3) {
    if (!tokens[2].starts_with("if-rev=")) return {false, kUsage};
    const std::string value = tokens[2].substr(7);
    expected = value == "head" ? database_.revision(name) : to_index(value);
  }
  if (txn_) {
    database_.remove(*txn_, name, expected);
    return {true, "remove of '" + name + "' buffered in txn " +
                      std::to_string(*txn_)};
  }
  if (!database_.remove(name, expected))
    return {false, "database has no entry '" + name + "'"};
  return {true, "removed '" + name + "'"};
}

Response Session::cmd_begin(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) return {false, "usage: begin"};
  if (txn_)
    return {false, "transaction " + std::to_string(*txn_) +
                       " already open (commit or abort first)"};
  txn_ = database_.begin();
  return {true, "begin txn " + std::to_string(*txn_)};
}

Response Session::cmd_commit(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) return {false, "usage: commit"};
  if (!txn_) return {false, "no open transaction (begin first)"};
  const std::uint64_t txn = *txn_;
  txn_.reset();  // the engine drops the transaction either way
  try {
    const std::size_t writes = database_.commit(txn);
    return {true, "committed txn " + std::to_string(txn) + " (" +
                      std::to_string(writes) + " writes)"};
  } catch (const db::ConflictError& e) {
    return {false,
            std::string(e.what()) +
                " — transaction dropped; retrieve and retry with if-rev=" +
                std::to_string(e.actual()),
            Response::FailureKind::Conflict};
  }
}

Response Session::cmd_abort(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) return {false, "usage: abort"};
  if (!txn_) return {false, "no open transaction (begin first)"};
  database_.abort(*txn_);
  const std::uint64_t txn = *txn_;
  txn_.reset();
  return {true, "aborted txn " + std::to_string(txn)};
}

Response Session::cmd_history(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) return {false, "usage: history <name>"};
  const auto versions = database_.history(tokens[1]);
  if (versions.empty())
    return {false, "database has no history for '" + tokens[1] + "'"};
  std::ostringstream os;
  for (const auto& v : versions) {
    os << "rev " << v.revision << " ";
    if (v.deleted)
      os << "deleted";
    else
      os << v.kind << " (" << v.bytes << " bytes)";
    os << " txn " << v.txn << "\n";
  }
  std::string text = os.str();
  text.pop_back();
  return {true, text};
}

Response Session::cmd_save(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) return {false, "usage: save <file>"};
  std::ofstream out(tokens[1]);
  if (!out) return {false, "cannot write '" + tokens[1] + "'"};
  out << serialize_model(workspace_.model());
  return {true, "saved model to '" + tokens[1] + "'"};
}

Response Session::cmd_open(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) return {false, "usage: open <file>"};
  std::ifstream in(tokens[1]);
  if (!in) return {false, "cannot read '" + tokens[1] + "'"};
  std::ostringstream text;
  text << in.rdbuf();
  workspace_.set_model(parse_model(text.str()));
  return {true, "opened model '" + workspace_.model().name + "' from '" +
                    tokens[1] + "'"};
}

std::string Session::help_text() {
  return
      "commands:\n"
      "  new model <name>                     start an empty model\n"
      "  node <x> <y>                         add a node\n"
      "  material <name> [E= nu= A= I= t=]    add a material\n"
      "  element <bar|beam|tri|quad> <nodes...> [mat=i]\n"
      "  fix <node>                           constrain all dofs of a node\n"
      "  constrain <node> <dof> [value]       single-point constraint\n"
      "  load <set> <node> <dof> <value>      add a point load\n"
      "  mesh plate [nx= ny= width= height= load= tri]\n"
      "  mesh beam  [segments= length= load=]\n"
      "  mesh truss [bays= bay-width= height= load=]\n"
      "  solve <loadset> [using <solver>] [tol=...]\n"
      "  modes [count]                        natural frequencies\n"
      "  stresses                             recover element stresses\n"
      "  show model|displacements [node]|peak\n"
      "  store <name> [if-rev=N]              save model to the shared database\n"
      "  store results <name> [if-rev=N]      save results; if-rev=N commits\n"
      "                                       only if the entry is at rev N\n"
      "                                       (optimistic concurrency);\n"
      "                                       if-rev=head re-reads the current\n"
      "                                       revision on each attempt\n"
      "  retrieve <name> [rev=N]              load a model from the database\n"
      "                                       (rev=N reads an old version)\n"
      "  list / remove <name> [if-rev=N]      database operations\n"
      "  query [kind=] [prefix=] [min-rev=] [max-rev=] [limit=]\n"
      "                                       predicate search over stored\n"
      "                                       entries via secondary indexes\n"
      "  history <name>                       version chain of an entry\n"
      "  begin / commit / abort               group stores into one atomic,\n"
      "                                       durable transaction\n"
      "  save <file> / open <file>            model files on disk\n"
      "  help";
}

}  // namespace fem2::appvm
