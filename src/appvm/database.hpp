// The application user's "data base (long-term storage; shared data)":
// a named store of serialized models and analysis results, shared by all
// user sessions (multi-user access is one of the FEM-2 requirements).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fem/analysis.hpp"
#include "fem/model.hpp"

namespace fem2::appvm {

struct DatabaseEntryInfo {
  std::string name;
  std::string kind;  ///< "model" or "results"
  std::size_t bytes = 0;
  std::uint64_t revision = 0;
};

class Database {
 public:
  /// Store (serialize) a model under `name`; bumps the revision if present.
  void store_model(const std::string& name, const fem::StructureModel& model);

  /// Retrieve (parse) a stored model.  Throws support::Error if absent.
  fem::StructureModel retrieve_model(const std::string& name) const;

  void store_results(const std::string& name, fem::AnalysisResult results);
  const fem::AnalysisResult& retrieve_results(const std::string& name) const;

  bool contains(const std::string& name) const;
  bool remove(const std::string& name);
  std::vector<DatabaseEntryInfo> list() const;
  std::size_t size() const { return models_.size() + results_.size(); }

  /// Total serialized bytes held (storage accounting).
  std::size_t storage_bytes() const;

 private:
  struct ModelEntry {
    std::string text;  ///< serialized form — the database stores records,
                       ///< not live objects (a workspace copy is private)
    std::uint64_t revision = 0;
  };
  struct ResultsEntry {
    fem::AnalysisResult results;
    std::uint64_t revision = 0;
  };

  std::map<std::string, ModelEntry> models_;
  std::map<std::string, ResultsEntry> results_;
};

}  // namespace fem2::appvm
