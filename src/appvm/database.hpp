// The application user's "data base (long-term storage; shared data)":
// a named store of serialized models and analysis results, shared by all
// user sessions (multi-user access is one of the FEM-2 requirements).
//
// Since fem2-db this is a thin façade over db::Engine: entries live in one
// namespace of MVCC version chains, writes go through the write-ahead log
// (when a data directory is configured), and every store may carry an
// expected revision — two sessions racing on `store bridge` get a clean
// db::ConflictError instead of silent clobbering.  The default constructor
// keeps the historical in-memory behavior as the engine's degenerate mode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/engine.hpp"
#include "db/query.hpp"
#include "fem/analysis.hpp"
#include "fem/model.hpp"

namespace fem2::appvm {

struct DatabaseEntryInfo {
  std::string name;
  std::string kind;  ///< "model" or "results"
  std::size_t bytes = 0;
  std::uint64_t revision = 0;
};

/// One MVCC version of a database entry.
struct DatabaseVersionInfo {
  std::uint64_t revision = 0;
  std::string kind;
  std::size_t bytes = 0;
  std::uint64_t txn = 0;
  bool deleted = false;
};

class Database {
 public:
  /// Unconditional store (no optimistic-concurrency expectation).
  static constexpr std::uint64_t kAnyRevision = db::kAnyRevision;

  /// In-memory database (the engine's degenerate mode; nothing persists).
  Database();
  /// Persistent database rooted at `directory` (created if absent);
  /// recovers from snapshot + write-ahead log before returning.
  explicit Database(const std::string& directory);
  /// Full control over engine tuning (history window, compaction, fsync).
  explicit Database(db::EngineOptions options);
  /// Share an existing engine (several façades over one store).
  explicit Database(std::shared_ptr<db::Engine> engine);

  /// Store (serialize) a model under `name`.  `expected` is the optimistic
  /// check: kAnyRevision = unconditional, 0 = must not exist, N = current
  /// revision must be N (throws db::ConflictError otherwise).  Returns the
  /// new revision.
  std::uint64_t store_model(const std::string& name,
                            const fem::StructureModel& model,
                            std::uint64_t expected = kAnyRevision);

  /// Retrieve (parse) a stored model.  Throws support::Error if absent or
  /// not a model.
  fem::StructureModel retrieve_model(const std::string& name) const;
  /// MVCC read of a historical revision still in the history window.
  fem::StructureModel retrieve_model(const std::string& name,
                                     std::uint64_t revision) const;

  std::uint64_t store_results(const std::string& name,
                              const fem::AnalysisResult& results,
                              std::uint64_t expected = kAnyRevision);
  /// Returns by value: entries are shared mutable state, and a reference
  /// into the store would dangle across a concurrent store/remove.
  fem::AnalysisResult retrieve_results(const std::string& name) const;

  // --- transactions (grouped writes with one commit point) ---------------
  std::uint64_t begin();
  void store_model(std::uint64_t txn, const std::string& name,
                   const fem::StructureModel& model,
                   std::uint64_t expected = kAnyRevision);
  void store_results(std::uint64_t txn, const std::string& name,
                     const fem::AnalysisResult& results,
                     std::uint64_t expected = kAnyRevision);
  void remove(std::uint64_t txn, const std::string& name,
              std::uint64_t expected = kAnyRevision);
  /// Read-your-writes retrieve inside a transaction.
  fem::StructureModel retrieve_model(std::uint64_t txn,
                                     const std::string& name) const;
  /// Returns the number of writes applied; throws db::ConflictError (and
  /// drops the transaction) when an expected revision no longer holds.
  std::size_t commit(std::uint64_t txn);
  void abort(std::uint64_t txn);

  bool contains(const std::string& name) const;
  /// Returns false when absent; throws db::ConflictError when `expected`
  /// names a revision the entry is no longer at.
  bool remove(const std::string& name,
              std::uint64_t expected = kAnyRevision);
  std::vector<DatabaseEntryInfo> list() const;
  /// Predicate query over stored entries (kind / name prefix / revision
  /// window), served from the engine's secondary indexes.
  db::QueryResult query(const db::QueryFilter& filter) const;
  /// Version chain of an entry, oldest first (empty when never stored).
  std::vector<DatabaseVersionInfo> history(const std::string& name) const;
  /// Current revision of a live entry; 0 when absent.
  std::uint64_t revision(const std::string& name) const;
  std::size_t size() const;

  /// Total serialized bytes held (storage accounting).
  std::size_t storage_bytes() const;

  db::Engine& engine() { return *engine_; }
  const db::Engine& engine() const { return *engine_; }

 private:
  db::ObjectView fetch(const std::string& name, const char* kind) const;

  std::shared_ptr<db::Engine> engine_;
};

}  // namespace fem2::appvm
