#include "appvm/database.hpp"

#include "appvm/serialize.hpp"

namespace fem2::appvm {

void Database::store_model(const std::string& name,
                           const fem::StructureModel& model) {
  auto& entry = models_[name];
  entry.text = serialize_model(model);
  entry.revision += 1;
}

fem::StructureModel Database::retrieve_model(const std::string& name) const {
  const auto it = models_.find(name);
  if (it == models_.end())
    throw support::Error("database has no model named '" + name + "'");
  return parse_model(it->second.text);
}

void Database::store_results(const std::string& name,
                             fem::AnalysisResult results) {
  auto& entry = results_[name];
  entry.results = std::move(results);
  entry.revision += 1;
}

const fem::AnalysisResult& Database::retrieve_results(
    const std::string& name) const {
  const auto it = results_.find(name);
  if (it == results_.end())
    throw support::Error("database has no results named '" + name + "'");
  return it->second.results;
}

bool Database::contains(const std::string& name) const {
  return models_.contains(name) || results_.contains(name);
}

bool Database::remove(const std::string& name) {
  return models_.erase(name) > 0 || results_.erase(name) > 0;
}

std::vector<DatabaseEntryInfo> Database::list() const {
  std::vector<DatabaseEntryInfo> out;
  for (const auto& [name, entry] : models_)
    out.push_back({name, "model", entry.text.size(), entry.revision});
  for (const auto& [name, entry] : results_) {
    const std::size_t bytes =
        entry.results.solution.displacements.values.size() * sizeof(double) +
        entry.results.stresses.size() * sizeof(fem::ElementStress);
    out.push_back({name, "results", bytes, entry.revision});
  }
  return out;
}

std::size_t Database::storage_bytes() const {
  std::size_t bytes = 0;
  for (const auto& info : list()) bytes += info.bytes;
  return bytes;
}

}  // namespace fem2::appvm
