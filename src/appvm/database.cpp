#include "appvm/database.hpp"

#include "appvm/serialize.hpp"

namespace fem2::appvm {

namespace {

constexpr const char* kModelKind = "model";
constexpr const char* kResultsKind = "results";

}  // namespace

Database::Database() : engine_(std::make_shared<db::Engine>()) {}

Database::Database(const std::string& directory)
    : engine_(std::make_shared<db::Engine>([&directory] {
        db::EngineOptions options;
        options.directory = directory;
        return options;
      }())) {}

Database::Database(db::EngineOptions options)
    : engine_(std::make_shared<db::Engine>(std::move(options))) {}

Database::Database(std::shared_ptr<db::Engine> engine)
    : engine_(std::move(engine)) {
  FEM2_CHECK_MSG(engine_ != nullptr, "database needs an engine");
}

db::ObjectView Database::fetch(const std::string& name,
                               const char* kind) const {
  auto view = engine_->get(name);
  if (!view)
    throw support::Error("database has no " + std::string(kind) +
                         " named '" + name + "'");
  if (view->kind != kind)
    throw support::Error("database entry '" + name + "' is a " + view->kind +
                         ", not a " + kind);
  return *std::move(view);
}

std::uint64_t Database::store_model(const std::string& name,
                                    const fem::StructureModel& model,
                                    std::uint64_t expected) {
  return engine_->put(name, kModelKind, serialize_model(model), expected);
}

fem::StructureModel Database::retrieve_model(const std::string& name) const {
  return parse_model(fetch(name, kModelKind).value);
}

fem::StructureModel Database::retrieve_model(const std::string& name,
                                             std::uint64_t revision) const {
  const auto view = engine_->get_at(name, revision);
  if (!view)
    throw support::Error("database has no model named '" + name +
                         "' at revision " + std::to_string(revision));
  if (view->kind != kModelKind)
    throw support::Error("database entry '" + name + "' rev " +
                         std::to_string(revision) + " is a " + view->kind +
                         ", not a model");
  return parse_model(view->value);
}

std::uint64_t Database::store_results(const std::string& name,
                                      const fem::AnalysisResult& results,
                                      std::uint64_t expected) {
  return engine_->put(name, kResultsKind, serialize_results(results),
                      expected);
}

fem::AnalysisResult Database::retrieve_results(const std::string& name) const {
  return parse_results(fetch(name, kResultsKind).value);
}

std::uint64_t Database::begin() { return engine_->begin(); }

void Database::store_model(std::uint64_t txn, const std::string& name,
                           const fem::StructureModel& model,
                           std::uint64_t expected) {
  engine_->put(txn, name, kModelKind, serialize_model(model), expected);
}

void Database::store_results(std::uint64_t txn, const std::string& name,
                             const fem::AnalysisResult& results,
                             std::uint64_t expected) {
  engine_->put(txn, name, kResultsKind, serialize_results(results), expected);
}

void Database::remove(std::uint64_t txn, const std::string& name,
                      std::uint64_t expected) {
  engine_->erase(txn, name, expected);
}

fem::StructureModel Database::retrieve_model(std::uint64_t txn,
                                             const std::string& name) const {
  const auto view = engine_->get(txn, name);
  if (!view)
    throw support::Error("database has no model named '" + name + "'");
  if (view->kind != kModelKind)
    throw support::Error("database entry '" + name + "' is a " + view->kind +
                         ", not a model");
  return parse_model(view->value);
}

std::size_t Database::commit(std::uint64_t txn) {
  return engine_->commit(txn);
}

void Database::abort(std::uint64_t txn) { engine_->abort(txn); }

bool Database::contains(const std::string& name) const {
  return engine_->contains(name);
}

bool Database::remove(const std::string& name, std::uint64_t expected) {
  return engine_->erase(name, expected);
}

std::vector<DatabaseEntryInfo> Database::list() const {
  std::vector<DatabaseEntryInfo> out;
  for (auto& entry : engine_->list())
    out.push_back(DatabaseEntryInfo{std::move(entry.name),
                                    std::move(entry.kind), entry.bytes,
                                    entry.revision});
  return out;
}

db::QueryResult Database::query(const db::QueryFilter& filter) const {
  return engine_->query(filter);
}

std::vector<DatabaseVersionInfo> Database::history(
    const std::string& name) const {
  std::vector<DatabaseVersionInfo> out;
  for (auto& version : engine_->history(name))
    out.push_back(DatabaseVersionInfo{version.revision,
                                      std::move(version.kind), version.bytes,
                                      version.txn, version.deleted});
  return out;
}

std::uint64_t Database::revision(const std::string& name) const {
  return engine_->revision_of(name);
}

std::size_t Database::size() const { return engine_->size(); }

std::size_t Database::storage_bytes() const {
  std::size_t bytes = 0;
  for (const auto& info : engine_->list()) bytes += info.bytes;
  return bytes;
}

}  // namespace fem2::appvm
