// The numerical analyst's VM runtime: registers coroutine task bodies as
// OS code blocks, owns the array/window registry ("all data owned by a
// single task; data accessible non-locally only via windows"), provides the
// window access procedures, and the collector rendezvous used to build
// reductions on top of remote procedure calls.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "navm/task.hpp"
#include "navm/window.hpp"
#include "sysvm/os.hpp"

namespace fem2::navm {

/// Arguments of the built-in "navm.win.write" procedure.
struct WriteArgs {
  Window window;
  std::vector<double> data;
};

/// Arguments of the built-in "navm.collect" procedure.  `depositor` and
/// `token` identify the deposit so re-initiated depositors (cluster-loss
/// recovery can replay a task from its initiate parameters) cannot double
/// count: a (depositor, token) pair is accepted at most once per collector.
/// Token 0 opts out of deduplication.
struct DepositArgs {
  std::uint64_t collector = 0;
  sysvm::TaskId depositor = sysvm::kNoTask;
  std::uint64_t token = 0;
  sysvm::Payload value;
};

struct TaskOptions {
  std::size_t activation_record_bytes = 512;
  std::size_t code_bytes = 8192;
};

/// Observation interface for the navm layer (analysis tooling).  gather()
/// and scatter() are the single funnel for every array access — local
/// awaits and the remote window procedures both route through them — so
/// these hooks see all shared-memory traffic.  Collector hooks expose the
/// reduction rendezvous (the happens-before barrier of parallel phases).
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  virtual void on_array_created(ArrayId id, sysvm::TaskId owner) {
    (void)id;
    (void)owner;
  }
  virtual void on_array_read(const Window& window) { (void)window; }
  virtual void on_array_write(const Window& window) { (void)window; }

  /// A remote window operation (read or write routed to the owning
  /// cluster) completed; `wait` is the requesting task's round-trip wait
  /// in simulated cycles — the navm-level view of network latency, which
  /// varies with the machine's topology.  Local accesses do not report.
  virtual void on_remote_window_wait(const Window& window, hw::Cycles wait) {
    (void)window;
    (void)wait;
  }

  /// A deposit was accepted into a collector (post-deduplication).
  virtual void on_deposit(std::uint64_t collector, sysvm::TaskId depositor) {
    (void)collector;
    (void)depositor;
  }
  /// The owner drained a full collector (the barrier's release point).
  virtual void on_collector_take(std::uint64_t collector,
                                 sysvm::TaskId owner) {
    (void)collector;
    (void)owner;
  }
};

class Runtime {
 public:
  explicit Runtime(sysvm::Os& os);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  sysvm::Os& os() { return os_; }

  // --- task types ---------------------------------------------------------
  void define_task(const std::string& name, TaskBody body,
                   TaskOptions options = {});

  /// Start a root task from the external environment and return its id.
  sysvm::TaskId launch(const std::string& name, sysvm::Payload params = {},
                       hw::ClusterId from = hw::ClusterId{0});

  /// Run the machine to completion.
  void run() { os_.run(); }

  const sysvm::Payload& result(sysvm::TaskId task) const {
    return os_.task_result(task);
  }

  // --- arrays & windows ----------------------------------------------------
  struct ArrayInfo {
    ArrayId id = kNoArray;
    sysvm::TaskId owner = sysvm::kNoTask;
    hw::ClusterId cluster;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<double> data;  ///< row-major host mirror of simulated storage
  };

  /// Create an array owned by the calling task, in its cluster's shared
  /// memory (charged to the task's heap).  Returns the full window.
  Window create_array(TaskContext& ctx, std::size_t rows, std::size_t cols,
                      std::vector<double> init = {});

  /// Owner-alive-checked lookup ("data lifetime - lifetime of owner task").
  const ArrayInfo& array_info(ArrayId id) const;

  /// All array ids ever created (for inspection; includes dead owners).
  std::vector<ArrayId> array_ids() const;
  /// Unchecked lookup for inspection of arrays with terminated owners.
  const ArrayInfo& array_info_unchecked(ArrayId id) const;
  hw::ClusterId window_cluster(const Window& window) const;

  std::vector<double> gather(const Window& window) const;
  void scatter(const Window& window, std::span<const double> data);

  /// Report a completed remote window round trip to the observer (called
  /// by the read/write awaitables when they resume after a remote call).
  void note_remote_window_wait(const Window& window, hw::Cycles wait);

  // --- collectors -----------------------------------------------------------
  /// Rendezvous for reductions: `expected` deposits fill it, then the
  /// waiting task wakes.  Auto-resets when taken, so iterative algorithms
  /// can reuse one collector per phase.
  std::uint64_t make_collector(TaskContext& ctx, std::size_t expected);

  // Used by TaskContext::CollectAwait.
  bool collector_full(std::uint64_t id) const;
  std::vector<sysvm::Payload> collector_take(std::uint64_t id);
  void collector_arm(std::uint64_t id, sysvm::CallToken token);

  /// Attach an observer (not owned; analysis tooling).  Pass nullptr to
  /// detach.
  void set_observer(RuntimeObserver* observer) { observer_ = observer; }

  /// Collector state for deadlock analysis: an armed, underfull collector
  /// at simulation idle means its owner waits forever.
  struct CollectorInfo {
    std::uint64_t id = 0;
    sysvm::TaskId owner = sysvm::kNoTask;
    std::size_t expected = 0;
    std::size_t deposited = 0;
    bool armed = false;
  };
  std::vector<CollectorInfo> collector_infos() const;

 private:
  struct Collector {
    std::size_t expected = 0;
    sysvm::TaskId owner = sysvm::kNoTask;
    hw::ClusterId cluster;
    std::vector<sysvm::Payload> items;
    sysvm::CallToken waiting_token = 0;
    /// Deposits already accepted, across auto-resets: a re-initiated
    /// depositor replaying an old round must not fill a later round.
    std::set<std::pair<sysvm::TaskId, std::uint64_t>> seen;
  };

  void register_builtin_procedures();
  /// Task-reaper hook: drop arrays and collectors owned by a reaped task.
  void purge_owned_by(sysvm::TaskId task);
  /// Ids are striped per engine shard (id = n * shards + shard + 1) so
  /// serial and parallel runs allocate identical values.
  ArrayId make_array_id();
  std::uint64_t make_collector_id();
  sysvm::Payload procedure_window_read(sysvm::ProcedureContext& ctx,
                                       const sysvm::Payload& args);
  sysvm::Payload procedure_window_write(sysvm::ProcedureContext& ctx,
                                        const sysvm::Payload& args);
  sysvm::Payload procedure_collect(sysvm::ProcedureContext& ctx,
                                   const sysvm::Payload& args);

  sysvm::Os& os_;
  /// Guards the *structure* of arrays_ / collectors_ (insert, erase, find)
  /// during parallel phases.  Entry contents are touched only by the
  /// owning cluster's shard (window procedures are routed to the array's
  /// cluster) or stop-world recovery, so no lock is held around them.
  mutable std::shared_mutex registry_mutex_;
  std::map<ArrayId, ArrayInfo> arrays_;
  std::map<std::uint64_t, Collector> collectors_;
  std::vector<std::uint64_t> next_array_;      ///< one counter per shard
  std::vector<std::uint64_t> next_collector_;  ///< one counter per shard
  RuntimeObserver* observer_ = nullptr;
};

}  // namespace fem2::navm
