// Windows on arrays — the numerical analyst's VM data-control mechanism:
// "row, column, block descriptors, for remote access to non-local data".
//
// An Array is a 2-D row-major block of reals owned by a single task and
// resident in that task's cluster ("all data owned by a single task; data
// accessible non-locally only via windows").  A Window is a rectangular
// view descriptor: a small value that can be "transmitted as parameters,
// further partitioned, stored as values of variables".
#pragma once

#include <cstdint>
#include <vector>

#include "hw/config.hpp"
#include "support/check.hpp"

namespace fem2::navm {

using ArrayId = std::uint64_t;
inline constexpr ArrayId kNoArray = 0;

struct Window {
  ArrayId array = kNoArray;
  std::size_t row0 = 0;
  std::size_t col0 = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::size_t elements() const { return rows * cols; }
  std::size_t bytes() const { return elements() * sizeof(double); }
  bool valid() const { return array != kNoArray && rows > 0 && cols > 0; }

  /// Wire size of the descriptor itself when sent in a message.
  static constexpr std::size_t kDescriptorBytes = 40;

  // --- partitioning ("windows may be further partitioned") -----------------
  Window row(std::size_t i) const;
  Window col(std::size_t j) const;
  Window block(std::size_t r0, std::size_t c0, std::size_t nrows,
               std::size_t ncols) const;

  /// Split into k row-bands of near-equal height (first bands get the
  /// remainder), preserving column extent.
  std::vector<Window> split_rows(std::size_t k) const;
  std::vector<Window> split_cols(std::size_t k) const;

  /// Contiguous 1-D view semantics for vector-shaped (single-column) data.
  Window range(std::size_t offset, std::size_t count) const;

  friend bool operator==(const Window& a, const Window& b) = default;
};

/// Evenly partition n items into k blocks: block i covers
/// [block_begin(n,k,i), block_begin(n,k,i+1)).
std::size_t block_begin(std::size_t n, std::size_t k, std::size_t i);

}  // namespace fem2::navm
