#include "navm/parops.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fem2::navm {

// ---------------------------------------------------------------------------
// forall / pardo

void ForallAwait::await_suspend(std::coroutine_handle<>) {
  ctx.initiate(task_type, k, params_for);
  ctx.api().block_on_child_terminations(k);
}

std::vector<sysvm::Payload> ForallAwait::await_resume() {
  return ctx.take_child_results();
}

ForallAwait forall(TaskContext& ctx, std::string task_type, std::uint32_t k,
                   std::function<sysvm::Payload(std::uint32_t)> params_for) {
  return ForallAwait{ctx, std::move(task_type), k, std::move(params_for)};
}

void PardoAwait::await_suspend(std::coroutine_handle<>) {
  for (auto& spec : specs) {
    sysvm::Payload params = std::move(spec.params);
    ctx.initiate(spec.task_type, 1,
                 [&params](std::uint32_t) { return std::move(params); });
  }
  ctx.api().block_on_child_terminations(specs.size());
}

std::vector<sysvm::Payload> PardoAwait::await_resume() {
  return ctx.take_child_results();
}

PardoAwait pardo(TaskContext& ctx, std::vector<PardoSpec> specs) {
  return PardoAwait{ctx, std::move(specs)};
}

// ---------------------------------------------------------------------------
// payload builders

sysvm::Payload make_dot_params(const DotParams& p) {
  return sysvm::Payload::of(p, 2 * Window::kDescriptorBytes);
}

sysvm::Payload make_axpy_params(const AxpyParams& p) {
  return sysvm::Payload::of(p, 8 + 2 * Window::kDescriptorBytes);
}

sysvm::Payload make_matvec_params(MatvecParams p) {
  const std::size_t bytes =
      p.shard.storage_bytes() + 2 * Window::kDescriptorBytes + 16;
  return sysvm::Payload::of(std::move(p), bytes);
}

sysvm::Payload make_cg_problem(CgProblem problem) {
  const std::size_t bytes = problem.a.storage_bytes() +
                            problem.b.size() * sizeof(double) + 64;
  return sysvm::Payload::of(std::move(problem), bytes);
}

const CgResult& as_cg_result(const sysvm::Payload& p) {
  return p.as<CgResult>();
}

// ---------------------------------------------------------------------------
// internal protocol data

namespace {

struct CgWorkerParams {
  la::CsrMatrix shard;            ///< global rows [row0, row0+len), global cols
  std::vector<double> b_local;
  std::size_t row0 = 0;
  std::size_t n = 0;
  std::uint32_t index = 0;
  std::uint32_t total = 1;
  hw::ClusterId driver_cluster;
  std::uint64_t collector = 0;
  bool jacobi = false;            ///< Jacobi-precondition from the local diagonal
};

struct CgHello {
  Window p_window;
  std::size_t row0 = 0;
  std::size_t len = 0;
  double rr_local = 0.0;
  double rz_local = 0.0;  ///< == rr_local when unpreconditioned
};

/// Scalar reduction contribution, tagged with the worker index so the
/// driver can sum in index order.  Collector deposits arrive in an order
/// that depends on timing (and on faults); floating-point addition is not
/// associative, so arrival-order sums would make a faulted run diverge
/// bitwise from a fault-free one.
struct CgPart {
  std::uint32_t index = 0;
  double value = 0.0;
  double value2 = 0.0;  ///< second reduction riding the same deposit (r·z)
};

/// Index-ordered sums of (value, value2) over the deposited parts.
std::pair<double, double> sum_indexed(const std::vector<sysvm::Payload>& parts) {
  std::vector<CgPart> ps;
  ps.reserve(parts.size());
  for (const auto& part : parts) ps.push_back(part.as<CgPart>());
  std::sort(ps.begin(), ps.end(),
            [](const CgPart& a, const CgPart& b) { return a.index < b.index; });
  double sum = 0.0;
  double sum2 = 0.0;
  for (const auto& p : ps) {
    sum += p.value;
    sum2 += p.value2;
  }
  return {sum, sum2};
}

struct CgSetupDatum {
  std::vector<Window> p_windows;  ///< ordered by row0
  std::vector<std::size_t> row0;
  std::vector<std::size_t> len;
  bool done = false;  ///< b == 0: nothing to solve
};

struct CgAlphaDatum {
  double alpha = 0.0;
};

struct CgBetaDatum {
  double beta = 0.0;
  bool done = false;
};

struct CgGoDatum {};

struct CgShardResult {
  std::vector<double> x;
  std::size_t row0 = 0;
};

double local_dot(TaskContext& ctx, std::span<const double> a,
                 std::span<const double> b) {
  ctx.charge_flops(2 * a.size());
  return la::dot(a, b);
}

Coro dot_body(TaskContext& ctx) {
  const auto& p = ctx.params().as<DotParams>();
  const std::vector<double> a = co_await ctx.read(p.a);
  const std::vector<double> b = co_await ctx.read(p.b);
  FEM2_CHECK(a.size() == b.size());
  const double partial = local_dot(ctx, a, b);
  co_return payload_real(partial);
}

Coro axpy_body(TaskContext& ctx) {
  const auto& p = ctx.params().as<AxpyParams>();
  const std::vector<double> x = co_await ctx.read(p.x);
  std::vector<double> y = co_await ctx.read(p.y);
  FEM2_CHECK(x.size() == y.size());
  ctx.charge_flops(2 * x.size());
  la::axpy(p.alpha, x, y);
  co_await ctx.write(p.y, std::move(y));
  co_return sysvm::Payload{};
}

Coro matvec_body(TaskContext& ctx) {
  const auto& p = ctx.params().as<MatvecParams>();
  const std::vector<double> x = co_await ctx.read(p.x);
  std::vector<double> y(p.shard.rows(), 0.0);
  p.shard.multiply_rows(x, 0, p.shard.rows(), y);
  ctx.charge_flops(2 * p.shard.nonzeros());
  co_await ctx.write(p.y, std::move(y));
  co_return sysvm::Payload{};
}

// --- conjugate-gradient worker ------------------------------------------------
//
// Round structure (one collector on the driver, auto-resetting):
//   setup : deposit Hello{p window, rr_local}; pause -> SetupDatum
//   loop  : gather remote p segments through windows; q = A_i p
//           deposit p·q      ; pause -> alpha
//           update x, r; deposit r·r ; pause -> {beta, done}
//           if done: terminate with the x shard
//           p = r + beta p; publish p; deposit barrier; pause -> go
Coro cg_worker_body(TaskContext& ctx) {
  const auto& wp = ctx.params().as<CgWorkerParams>();
  const std::size_t len = wp.b_local.size();

  // Task-local state ("local data of a task retained over pause/resume").
  std::vector<double> x(len, 0.0);
  std::vector<double> r = wp.b_local;   // r = b - A·0
  std::vector<double> p_local = r;      // p = r
  std::vector<double> q(len, 0.0);

  // Jacobi preconditioning is worker-local: this shard owns its diagonal
  // rows, so M⁻¹ r costs one hadamard and no extra shipping.
  std::vector<double> inv_diag;
  std::vector<double> z;
  if (wp.jacobi) {
    inv_diag.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      const double d = wp.shard.value_at(i, wp.row0 + i);
      FEM2_CHECK_MSG(d != 0.0, "zero diagonal with Jacobi preconditioner");
      inv_diag[i] = 1.0 / d;
    }
    z.resize(len);
    la::hadamard(inv_diag, r, z);
    ctx.charge_flops(len);
    p_local = z;  // p = z = M⁻¹ r
  }

  // Published p shard, readable by peers through windows.
  const Window p_window = ctx.create_vector(p_local);

  // Column span this shard's matvec needs.
  std::size_t cmin = wp.row0;
  std::size_t cmax = wp.row0;
  bool any = false;
  for (const std::size_t c : wp.shard.col_idx()) {
    cmin = any ? std::min(cmin, c) : c;
    cmax = any ? std::max(cmax, c) : c;
    any = true;
  }

  // Deposits carry a per-worker monotonic token: if cluster-loss recovery
  // re-initiates this worker, replayed deposits are deduplicated by the
  // collector instead of double counting.
  std::uint64_t deposit_token = 0;

  const double rr_local = local_dot(ctx, r, r);
  const double rz_local = wp.jacobi ? local_dot(ctx, r, z) : rr_local;
  co_await ctx.deposit(
      wp.driver_cluster, wp.collector,
      sysvm::Payload::of(CgHello{p_window, wp.row0, len, rr_local, rz_local},
                         Window::kDescriptorBytes + (wp.jacobi ? 32 : 24)),
      ++deposit_token);
  const sysvm::Payload setup_payload = co_await ctx.pause();
  const auto& setup = setup_payload.as<CgSetupDatum>();

  if (setup.done) {
    co_return sysvm::Payload::of(CgShardResult{std::move(x), wp.row0},
                                 len * sizeof(double) + 16);
  }

  // Which peer shards overlap our needed column span.
  struct Overlap {
    std::size_t peer;
    std::size_t begin;  ///< within the peer's shard
    std::size_t count;
    std::size_t global_begin;
  };
  std::vector<Overlap> remote_overlaps;
  for (std::size_t j = 0; j < setup.p_windows.size(); ++j) {
    if (setup.row0[j] == wp.row0) continue;  // self
    const std::size_t lo = std::max(cmin, setup.row0[j]);
    const std::size_t hi = std::min(cmax + 1, setup.row0[j] + setup.len[j]);
    if (lo < hi)
      remote_overlaps.push_back({j, lo - setup.row0[j], hi - lo, lo});
  }

  std::vector<double> p_full(wp.n, 0.0);
  bool done = false;
  while (!done) {
    // --- gather p and run the local matvec -------------------------------
    std::copy(p_local.begin(), p_local.end(),
              p_full.begin() + static_cast<std::ptrdiff_t>(wp.row0));
    ctx.charge_words(len);
    for (const auto& ov : remote_overlaps) {
      const std::vector<double> seg = co_await ctx.read(
          setup.p_windows[ov.peer].range(ov.begin, ov.count));
      std::copy(seg.begin(), seg.end(),
                p_full.begin() + static_cast<std::ptrdiff_t>(ov.global_begin));
    }
    wp.shard.multiply_rows(p_full, 0, len, q);
    ctx.charge_flops(2 * wp.shard.nonzeros());

    // --- alpha round -------------------------------------------------------
    const double pq = local_dot(ctx, p_local, q);
    co_await ctx.deposit(wp.driver_cluster, wp.collector,
                         sysvm::Payload::of(CgPart{wp.index, pq}, 16),
                         ++deposit_token);
    const double alpha = as_real(co_await ctx.pause());

    ctx.charge_flops(4 * len);
    for (std::size_t i = 0; i < len; ++i) {
      x[i] += alpha * p_local[i];
      r[i] -= alpha * q[i];
    }

    // --- beta / convergence round -----------------------------------------
    const double rr = local_dot(ctx, r, r);
    double rz = rr;
    if (wp.jacobi) {
      la::hadamard(inv_diag, r, z);
      ctx.charge_flops(len);
      rz = local_dot(ctx, r, z);
    }
    co_await ctx.deposit(wp.driver_cluster, wp.collector,
                         sysvm::Payload::of(CgPart{wp.index, rr, rz},
                                            wp.jacobi ? 24u : 16u),
                         ++deposit_token);
    const sysvm::Payload beta_payload = co_await ctx.pause();
    const auto& control = beta_payload.as<CgBetaDatum>();
    done = control.done;
    if (done) break;

    // --- p update + publication barrier ------------------------------------
    ctx.charge_flops(2 * len);
    const std::vector<double>& direction = wp.jacobi ? z : r;
    for (std::size_t i = 0; i < len; ++i)
      p_local[i] = direction[i] + control.beta * p_local[i];
    co_await ctx.write(p_window, p_local);
    co_await ctx.deposit(wp.driver_cluster, wp.collector, sysvm::Payload{},
                         ++deposit_token);
    (void)co_await ctx.pause();  // go
  }

  co_return sysvm::Payload::of(CgShardResult{std::move(x), wp.row0},
                               len * sizeof(double) + 16);
}

// --- conjugate-gradient driver ------------------------------------------------

Coro cg_driver_body(TaskContext& ctx) {
  const auto& problem = ctx.params().as<CgProblem>();
  const std::size_t n = problem.a.rows();
  FEM2_CHECK_MSG(problem.a.cols() == n, "CG requires a square matrix");
  FEM2_CHECK_MSG(problem.b.size() == n, "rhs size mismatch");
  const std::uint32_t k =
      static_cast<std::uint32_t>(std::min<std::size_t>(problem.workers, n));
  FEM2_CHECK_MSG(k > 0, "CG needs at least one worker");

  const std::uint64_t collector = ctx.make_collector(k);

  // Partition rows into contiguous blocks and ship shards to the workers
  // ("large messages" are a designed-for property of the architecture).
  ctx.charge_words(2 * problem.a.nonzeros());
  const auto children = ctx.initiate(
      kCgWorkerTask, k, [&](std::uint32_t i) {
        const std::size_t r0 = block_begin(n, k, i);
        const std::size_t r1 = block_begin(n, k, i + 1);
        la::TripletBuilder builder(r1 - r0, n);
        for (std::size_t r = r0; r < r1; ++r) {
          std::span<const std::size_t> cols;
          std::span<const double> vals;
          problem.a.row(r, cols, vals);
          for (std::size_t idx = 0; idx < cols.size(); ++idx)
            builder.add(r - r0, cols[idx], vals[idx]);
        }
        CgWorkerParams wp;
        wp.shard = builder.build();
        wp.b_local.assign(problem.b.begin() + static_cast<std::ptrdiff_t>(r0),
                          problem.b.begin() + static_cast<std::ptrdiff_t>(r1));
        wp.row0 = r0;
        wp.n = n;
        wp.index = i;
        wp.total = k;
        wp.driver_cluster = ctx.cluster();
        wp.collector = collector;
        wp.jacobi = problem.jacobi_preconditioner;
        const std::size_t bytes = wp.shard.storage_bytes() +
                                  wp.b_local.size() * sizeof(double) + 96;
        return sysvm::Payload::of(std::move(wp), bytes);
      });

  // --- setup round ---------------------------------------------------------
  auto hellos = co_await ctx.collect(collector);
  FEM2_CHECK(hellos.size() == k);
  CgSetupDatum setup;
  {
    std::vector<CgHello> hs;
    hs.reserve(k);
    for (const auto& h : hellos) hs.push_back(h.as<CgHello>());
    std::sort(hs.begin(), hs.end(),
              [](const CgHello& a, const CgHello& b) { return a.row0 < b.row0; });
    // Sum in shard order, not arrival order (bitwise reproducibility).
    double bnorm2 = 0.0;
    double rz0 = 0.0;
    for (const auto& h : hs) bnorm2 += h.rr_local;
    for (const auto& h : hs) rz0 += h.rz_local;
    for (const auto& h : hs) {
      setup.p_windows.push_back(h.p_window);
      setup.row0.push_back(h.row0);
      setup.len.push_back(h.len);
    }
    setup.done = bnorm2 == 0.0;

    const std::size_t setup_bytes =
        k * (Window::kDescriptorBytes + 16) + 8;
    ctx.broadcast(children, sysvm::Payload::of(setup, setup_bytes));

    if (setup.done) {
      (void)co_await ctx.join(k);
      CgResult result;
      result.x.assign(n, 0.0);
      result.converged = true;
      co_return sysvm::Payload::of(std::move(result),
                                   n * sizeof(double) + 32);
    }

    // --- iterate ------------------------------------------------------------
    // alpha/beta run on r·z (== r·r unpreconditioned); convergence always
    // on ‖r‖/‖b‖ so tolerances mean the same thing either way.
    double rz = rz0;
    const double bnorm = std::sqrt(bnorm2);
    std::size_t iteration = 0;
    double residual = 1.0;
    bool done = false;
    while (!done) {
      // alpha round
      auto pq_parts = co_await ctx.collect(collector);
      const double pq = sum_indexed(pq_parts).first;
      ctx.charge_flops(k + 2);
      const double alpha = pq != 0.0 ? rz / pq : 0.0;
      ctx.broadcast(children, payload_real(alpha));

      // beta / convergence round
      auto rr_parts = co_await ctx.collect(collector);
      const auto [rr_new, rz_new] = sum_indexed(rr_parts);
      ctx.charge_flops(k + 4);
      ++iteration;
      residual = std::sqrt(rr_new) / bnorm;
      done = residual <= problem.tolerance ||
             iteration >= problem.max_iterations || pq == 0.0;
      const double beta = rz != 0.0 ? rz_new / rz : 0.0;
      rz = rz_new;
      ctx.broadcast(children,
                    sysvm::Payload::of(CgBetaDatum{beta, done}, 16));

      if (!done) {
        // publication barrier
        (void)co_await ctx.collect(collector);
        ctx.broadcast(children, sysvm::Payload::of(CgGoDatum{}, 1));
      }
    }

    // --- assemble ------------------------------------------------------------
    auto shard_results = co_await ctx.join(k);
    CgResult result;
    result.x.assign(n, 0.0);
    for (const auto& sr_payload : shard_results) {
      const auto& sr = sr_payload.as<CgShardResult>();
      std::copy(sr.x.begin(), sr.x.end(),
                result.x.begin() + static_cast<std::ptrdiff_t>(sr.row0));
    }
    ctx.charge_words(n);
    result.iterations = iteration;
    result.residual = residual;
    result.converged = residual <= problem.tolerance;
    co_return sysvm::Payload::of(std::move(result),
                                 n * sizeof(double) + 32);
  }
}

}  // namespace

void register_parallel_ops(Runtime& runtime) {
  runtime.define_task(kDotTask, dot_body, {256, 2048});
  runtime.define_task(kAxpyTask, axpy_body, {256, 2048});
  runtime.define_task(kMatvecTask, matvec_body, {512, 4096});
  runtime.define_task(kCgWorkerTask, cg_worker_body, {1024, 16384});
  runtime.define_task(kCgDriverTask, cg_driver_body, {1024, 16384});
}

}  // namespace fem2::navm
