// Parallel sequence control and distributed linear algebra for the
// numerical analyst's VM.
//
//  * forall  — "do all iterations in parallel if possible": initiate K
//    replications of a task type and join them.
//  * pardo   — "do all statements in parallel": initiate a heterogeneous
//    set of tasks and join them all.
//  * register_parallel_ops — installs the canned task types implementing
//    the paper's "linear algebra operations: inner product, vector
//    operations, etc." on distributed data, plus a full distributed
//    conjugate-gradient solver (navm.cg.driver) whose workers own vector
//    shards, exchange p-vector segments through windows, and reduce scalars
//    through collectors — the equation-level parallelism of the paper's
//    conclusion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/sparse.hpp"
#include "navm/runtime.hpp"
#include "navm/task.hpp"

namespace fem2::navm {

// --- forall / pardo ----------------------------------------------------------

struct ForallAwait {
  TaskContext& ctx;
  std::string task_type;
  std::uint32_t k;
  std::function<sysvm::Payload(std::uint32_t)> params_for;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>);
  std::vector<sysvm::Payload> await_resume();
};

/// forall i in [0, k): run `task_type`(params_for(i)) in parallel; returns
/// the children's results (arrival order).
ForallAwait forall(TaskContext& ctx, std::string task_type, std::uint32_t k,
                   std::function<sysvm::Payload(std::uint32_t)> params_for);

struct PardoSpec {
  std::string task_type;
  sysvm::Payload params;
};

struct PardoAwait {
  TaskContext& ctx;
  std::vector<PardoSpec> specs;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>);
  std::vector<sysvm::Payload> await_resume();
};

/// pardo { stmt1, stmt2, ... } end — run all branches in parallel.
PardoAwait pardo(TaskContext& ctx, std::vector<PardoSpec> specs);

// --- one-shot distributed operations -----------------------------------------

/// Parameters for "navm.op.dot": partial inner product over two windows.
struct DotParams {
  Window a;
  Window b;
};

/// Parameters for "navm.op.axpy": y ← y + alpha·x over paired windows.
struct AxpyParams {
  double alpha = 0.0;
  Window x;
  Window y;
};

/// Parameters for "navm.op.matvec": y_window ← shard · x_window, where the
/// shard covers global rows [row0, row0+shard.rows()).
struct MatvecParams {
  la::CsrMatrix shard;
  std::size_t row0 = 0;
  Window x;  ///< full x vector (may be remote)
  Window y;  ///< output rows of this shard
};

sysvm::Payload make_dot_params(const DotParams& p);
sysvm::Payload make_axpy_params(const AxpyParams& p);
sysvm::Payload make_matvec_params(MatvecParams p);

// --- distributed conjugate gradients -----------------------------------------

struct CgProblem {
  la::CsrMatrix a;          ///< symmetric positive definite, n×n
  std::vector<double> b;
  std::uint32_t workers = 4;
  double tolerance = 1e-10;
  std::size_t max_iterations = 10'000;
  /// Jacobi (diagonal) preconditioning.  Each worker extracts the inverse
  /// diagonal of its own row block locally, so the only protocol cost is
  /// one extra scalar (r·z) per reduction round.
  bool jacobi_preconditioner = false;
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

sysvm::Payload make_cg_problem(CgProblem problem);
const CgResult& as_cg_result(const sysvm::Payload& p);

/// Register all navm.op.* worker types and the navm.cg.* solver types.
/// Idempotent per-Os is NOT provided: call exactly once per Runtime.
void register_parallel_ops(Runtime& runtime);

/// Task-type names (for direct initiate/forall use).
inline constexpr const char* kDotTask = "navm.op.dot";
inline constexpr const char* kAxpyTask = "navm.op.axpy";
inline constexpr const char* kMatvecTask = "navm.op.matvec";
inline constexpr const char* kCgDriverTask = "navm.cg.driver";
inline constexpr const char* kCgWorkerTask = "navm.cg.worker";

}  // namespace fem2::navm
