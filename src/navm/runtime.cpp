#include "navm/runtime.hpp"

namespace fem2::navm {

namespace {

// Registry locks engage only during parallel engine phases; everywhere
// else a single thread owns the registries (see sysvm/os.cpp).
class OptSharedLock {
 public:
  OptSharedLock(std::shared_mutex& mutex, bool engage)
      : mutex_(engage ? &mutex : nullptr) {
    if (mutex_ != nullptr) mutex_->lock_shared();
  }
  ~OptSharedLock() {
    if (mutex_ != nullptr) mutex_->unlock_shared();
  }
  OptSharedLock(const OptSharedLock&) = delete;
  OptSharedLock& operator=(const OptSharedLock&) = delete;

 private:
  std::shared_mutex* mutex_;
};

class OptUniqueLock {
 public:
  OptUniqueLock(std::shared_mutex& mutex, bool engage)
      : mutex_(engage ? &mutex : nullptr) {
    if (mutex_ != nullptr) mutex_->lock();
  }
  ~OptUniqueLock() {
    if (mutex_ != nullptr) mutex_->unlock();
  }
  OptUniqueLock(const OptUniqueLock&) = delete;
  OptUniqueLock& operator=(const OptUniqueLock&) = delete;

 private:
  std::shared_mutex* mutex_;
};

}  // namespace

Runtime::Runtime(sysvm::Os& os) : os_(os) {
  register_builtin_procedures();
  next_array_.assign(os_.machine().engine().shard_count(), 0);
  next_collector_.assign(os_.machine().engine().shard_count(), 0);
  // Cluster-loss recovery reaps tasks before re-initiating them; their
  // arrays and collectors die with them ("data lifetime - lifetime of owner
  // task").  The re-initiated incarnation recreates what it needs.
  os_.set_task_reaper([this](sysvm::TaskId task) { purge_owned_by(task); });
}

ArrayId Runtime::make_array_id() {
  const std::size_t shard = os_.machine().engine().current_shard();
  return next_array_[shard]++ * next_array_.size() + shard + 1;
}

std::uint64_t Runtime::make_collector_id() {
  const std::size_t shard = os_.machine().engine().current_shard();
  return next_collector_[shard]++ * next_collector_.size() + shard + 1;
}

void Runtime::purge_owned_by(sysvm::TaskId task) {
  OptUniqueLock lock(registry_mutex_,
                     os_.machine().engine().in_worker_phase());
  std::erase_if(arrays_,
                [task](const auto& kv) { return kv.second.owner == task; });
  std::erase_if(collectors_,
                [task](const auto& kv) { return kv.second.owner == task; });
}

void Runtime::define_task(const std::string& name, TaskBody body,
                          TaskOptions options) {
  sysvm::CodeBlock block;
  block.name = name;
  block.code_bytes = options.code_bytes;
  block.activation_record_bytes = options.activation_record_bytes;
  block.factory = [this, body = std::move(body)](
                      sysvm::TaskApi& api,
                      sysvm::Payload params) -> std::unique_ptr<sysvm::TaskProgram> {
    return std::make_unique<CoroProgram>(api, std::move(params), this, body);
  };
  os_.register_task_type(std::move(block));
}

sysvm::TaskId Runtime::launch(const std::string& name, sysvm::Payload params,
                              hw::ClusterId from) {
  return os_.launch(name, std::move(params), from);
}

Window Runtime::create_array(TaskContext& ctx, std::size_t rows,
                             std::size_t cols, std::vector<double> init) {
  FEM2_CHECK(rows > 0 && cols > 0);
  const std::size_t n = rows * cols;
  if (init.empty()) {
    init.assign(n, 0.0);
  } else {
    FEM2_CHECK_MSG(init.size() == n, "array initializer size mismatch");
  }
  // Simulated storage: charged to the creating task's heap, freed with it.
  ctx.api().heap_allocate(n * sizeof(double));
  ctx.charge_words(n);  // initialization store
  // The array registry is global state pinned to this cluster: relocating
  // the owner alone would strand it, so the owner recovers via tree restart.
  ctx.api().mark_side_effect();

  ArrayInfo info;
  info.id = make_array_id();
  info.owner = ctx.self();
  info.cluster = ctx.cluster();
  info.rows = rows;
  info.cols = cols;
  info.data = std::move(init);
  const ArrayId id = info.id;
  {
    OptUniqueLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    arrays_.emplace(id, std::move(info));
  }
  const Window full{id, 0, 0, rows, cols};
  if (observer_ != nullptr) {
    os_.sequenced([obs = observer_, id, owner = ctx.self(), full] {
      obs->on_array_created(id, owner);
      obs->on_array_write(full);  // the initialization store
    });
  }
  return full;
}

const Runtime::ArrayInfo& Runtime::array_info(ArrayId id) const {
  const ArrayInfo* info = nullptr;
  {
    OptSharedLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    const auto it = arrays_.find(id);
    if (it != arrays_.end()) info = &it->second;
  }
  if (info == nullptr) {
    throw support::Error(
        "window refers to array " + std::to_string(id) +
        " which no longer exists (its owner task was lost with its cluster "
        "and reaped during recovery)");
  }
  FEM2_CHECK_MSG(!os_.task_finished(info->owner),
                 "window refers to an array whose owner task terminated "
                 "(data lifetime is the owner's lifetime)");
  if (!os_.machine().cluster_alive(info->cluster)) {
    throw support::Error(
        "window refers to array " + std::to_string(id) + " on cluster " +
        std::to_string(info->cluster.index) +
        ", which has failed; the data is unrecoverable");
  }
  return *info;
}

std::vector<ArrayId> Runtime::array_ids() const {
  OptSharedLock lock(registry_mutex_,
                     os_.machine().engine().in_worker_phase());
  std::vector<ArrayId> out;
  out.reserve(arrays_.size());
  for (const auto& [id, info] : arrays_) out.push_back(id);
  return out;
}

const Runtime::ArrayInfo& Runtime::array_info_unchecked(ArrayId id) const {
  OptSharedLock lock(registry_mutex_,
                     os_.machine().engine().in_worker_phase());
  const auto it = arrays_.find(id);
  FEM2_CHECK_MSG(it != arrays_.end(), "unknown array id");
  return it->second;
}

hw::ClusterId Runtime::window_cluster(const Window& window) const {
  return array_info(window.array).cluster;
}

std::vector<double> Runtime::gather(const Window& window) const {
  if (observer_ != nullptr) {
    os_.sequenced(
        [obs = observer_, window] { obs->on_array_read(window); });
  }
  const ArrayInfo& info = array_info(window.array);
  FEM2_CHECK_MSG(window.row0 + window.rows <= info.rows &&
                     window.col0 + window.cols <= info.cols,
                 "window exceeds array bounds");
  std::vector<double> out;
  out.reserve(window.elements());
  for (std::size_t r = 0; r < window.rows; ++r) {
    const std::size_t base = (window.row0 + r) * info.cols + window.col0;
    out.insert(out.end(), info.data.begin() + static_cast<std::ptrdiff_t>(base),
               info.data.begin() + static_cast<std::ptrdiff_t>(base + window.cols));
  }
  return out;
}

void Runtime::note_remote_window_wait(const Window& window, hw::Cycles wait) {
  if (observer_ == nullptr) return;
  os_.sequenced(
      [obs = observer_, window, wait] {
        obs->on_remote_window_wait(window, wait);
      });
}

void Runtime::scatter(const Window& window, std::span<const double> data) {
  if (observer_ != nullptr) {
    os_.sequenced(
        [obs = observer_, window] { obs->on_array_write(window); });
  }
  const ArrayInfo& const_info = array_info(window.array);
  auto& info = const_cast<ArrayInfo&>(const_info);
  FEM2_CHECK_MSG(data.size() == window.elements(),
                 "scatter data size does not match window");
  for (std::size_t r = 0; r < window.rows; ++r) {
    const std::size_t base = (window.row0 + r) * info.cols + window.col0;
    for (std::size_t c = 0; c < window.cols; ++c)
      info.data[base + c] = data[r * window.cols + c];
  }
}

std::uint64_t Runtime::make_collector(TaskContext& ctx, std::size_t expected) {
  FEM2_CHECK(expected > 0);
  Collector c;
  c.expected = expected;
  c.owner = ctx.self();
  c.cluster = ctx.cluster();
  const std::uint64_t id = make_collector_id();
  {
    OptUniqueLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    collectors_.emplace(id, std::move(c));
  }
  return id;
}

bool Runtime::collector_full(std::uint64_t id) const {
  OptSharedLock lock(registry_mutex_,
                     os_.machine().engine().in_worker_phase());
  const auto it = collectors_.find(id);
  FEM2_CHECK_MSG(it != collectors_.end(), "unknown collector");
  return it->second.items.size() >= it->second.expected;
}

std::vector<sysvm::Payload> Runtime::collector_take(std::uint64_t id) {
  Collector* cp = nullptr;
  {
    OptSharedLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    const auto it = collectors_.find(id);
    if (it != collectors_.end()) cp = &it->second;
  }
  FEM2_CHECK_MSG(cp != nullptr, "unknown collector");
  auto& c = *cp;
  FEM2_CHECK_MSG(c.items.size() >= c.expected, "collector not full");
  if (observer_ != nullptr) {
    os_.sequenced([obs = observer_, id, owner = c.owner] {
      obs->on_collector_take(id, owner);
    });
  }
  std::vector<sysvm::Payload> out = std::move(c.items);
  c.items.clear();  // auto-reset for the next phase
  c.waiting_token = 0;
  return out;
}

void Runtime::collector_arm(std::uint64_t id, sysvm::CallToken token) {
  Collector* cp = nullptr;
  {
    OptSharedLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    const auto it = collectors_.find(id);
    if (it != collectors_.end()) cp = &it->second;
  }
  FEM2_CHECK_MSG(cp != nullptr, "unknown collector");
  FEM2_CHECK_MSG(cp->waiting_token == 0, "collector already armed");
  cp->waiting_token = token;
}

std::vector<Runtime::CollectorInfo> Runtime::collector_infos() const {
  OptSharedLock lock(registry_mutex_,
                     os_.machine().engine().in_worker_phase());
  std::vector<CollectorInfo> out;
  out.reserve(collectors_.size());
  for (const auto& [id, c] : collectors_) {
    out.push_back(
        {id, c.owner, c.expected, c.items.size(), c.waiting_token != 0});
  }
  return out;
}

void Runtime::register_builtin_procedures() {
  os_.register_procedure(sysvm::Procedure{
      "navm.win.read", 128,
      [this](sysvm::ProcedureContext& ctx, const sysvm::Payload& args) {
        return procedure_window_read(ctx, args);
      },
      /*idempotent=*/true});
  os_.register_procedure(sysvm::Procedure{
      "navm.win.write", 128,
      [this](sysvm::ProcedureContext& ctx, const sysvm::Payload& args) {
        return procedure_window_write(ctx, args);
      }});
  os_.register_procedure(sysvm::Procedure{
      "navm.collect", 96,
      [this](sysvm::ProcedureContext& ctx, const sysvm::Payload& args) {
        return procedure_collect(ctx, args);
      }});
}

sysvm::Payload Runtime::procedure_window_read(sysvm::ProcedureContext& ctx,
                                              const sysvm::Payload& args) {
  const auto& window = args.as<Window>();
  FEM2_CHECK_MSG(window_cluster(window) == ctx.cluster,
                 "window read routed to the wrong cluster");
  ctx.charge_words(window.elements());
  return payload_reals(gather(window));
}

sysvm::Payload Runtime::procedure_window_write(sysvm::ProcedureContext& ctx,
                                               const sysvm::Payload& args) {
  const auto& wa = args.as<WriteArgs>();
  FEM2_CHECK_MSG(window_cluster(wa.window) == ctx.cluster,
                 "window write routed to the wrong cluster");
  ctx.charge_words(wa.window.elements());
  scatter(wa.window, wa.data);
  return sysvm::Payload{};
}

sysvm::Payload Runtime::procedure_collect(sysvm::ProcedureContext& ctx,
                                          const sysvm::Payload& args) {
  const auto& da = args.as<DepositArgs>();
  Collector* cp = nullptr;
  {
    OptSharedLock lock(registry_mutex_,
                       os_.machine().engine().in_worker_phase());
    const auto it = collectors_.find(da.collector);
    if (it != collectors_.end()) cp = &it->second;
  }
  if (cp == nullptr) {
    // A deposit can outlive its collector when the collector's owner was
    // reaped and restarted by cluster-loss recovery.  Dropping it (while
    // still replying to the depositor) is the correct quiet outcome: the
    // restarted owner makes a fresh collector with a fresh id.
    ctx.charge_words(1);
    return sysvm::Payload{};
  }
  auto& c = *cp;
  FEM2_CHECK_MSG(c.cluster == ctx.cluster,
                 "deposit routed to the wrong cluster");
  ctx.charge_words(4);  // bookkeeping
  if (da.token != 0 &&
      !c.seen.emplace(da.depositor, da.token).second) {
    // A re-initiated depositor replayed a deposit that was already
    // accepted from its previous incarnation; count it once.
    return sysvm::Payload{};
  }
  if (observer_ != nullptr) {
    os_.sequenced(
        [obs = observer_, collector = da.collector, depositor = da.depositor] {
          obs->on_deposit(collector, depositor);
        });
  }
  c.items.push_back(da.value);
  if (c.items.size() >= c.expected && c.waiting_token != 0) {
    // Wake the waiting task with a local remote-return.
    sysvm::MsgRemoteReturn wake;
    wake.caller = c.owner;
    wake.token = c.waiting_token;
    os_.post(ctx.cluster, os_.task_cluster(c.owner),
             sysvm::Message{std::move(wake)});
    c.waiting_token = 0;
  }
  return sysvm::Payload{};
}

}  // namespace fem2::navm
