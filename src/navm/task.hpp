// The numerical analyst's VM task model, as C++20 coroutines.
//
// A task body is a coroutine over a TaskContext.  Each co_await is one
// scheduling step on the simulated machine: the body runs on an assigned
// PE, charges compute cycles, buffers message sends, and suspends at the
// await; the OS kernel (src/sysvm) decides when it runs again.  Sequence
// control matches the paper's list: task initiate / pause / resume /
// terminate, forall and pardo (parops.hpp), and remote procedure calls
// whose destination is the cluster holding the window's data.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "navm/value.hpp"
#include "navm/window.hpp"
#include "sysvm/os.hpp"

namespace fem2::navm {

class Runtime;
class TaskContext;

/// Coroutine return object for task bodies: `Coro body(TaskContext&)`.
class Coro {
 public:
  struct promise_type {
    sysvm::Payload result;
    std::exception_ptr exception;

    Coro get_return_object() {
      return Coro(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(sysvm::Payload value) { result = std::move(value); }
    void unhandled_exception() { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit Coro(Handle handle) : handle_(handle) {}
  Coro(Coro&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  Coro& operator=(Coro&&) = delete;
  ~Coro() {
    if (handle_) handle_.destroy();
  }

  Handle handle() const { return handle_; }

 private:
  Handle handle_;
};

/// Task body signature registered with Runtime::define_task.
using TaskBody = std::function<Coro(TaskContext&)>;

enum class SuspendKind { Blocked, Yielded };

class TaskContext {
 public:
  TaskContext(sysvm::TaskApi& api, sysvm::Payload params, Runtime* runtime)
      : api_(api), params_(std::move(params)), runtime_(runtime) {}

  // --- identity & parameters ------------------------------------------------
  sysvm::TaskId self() const { return api_.self(); }
  hw::ClusterId cluster() const { return api_.cluster(); }
  /// Which replication of an `initiate K` this task is (0-based), and K.
  std::uint32_t replication_index() const { return api_.replication_index(); }
  std::uint32_t replication_count() const { return api_.replication_count(); }
  const sysvm::Payload& params() const { return params_; }
  Runtime& runtime() const;

  // --- cost accounting -------------------------------------------------------
  void charge(hw::Cycles cycles) { api_.charge(cycles); }
  void charge_flops(std::uint64_t flops) { api_.charge_flops(flops); }
  void charge_words(std::uint64_t words) { api_.charge_words(words); }

  // --- non-blocking operations ------------------------------------------------
  /// "initiate K replications of a task of type T".
  std::vector<sysvm::TaskId> initiate(
      const std::string& task_type, std::uint32_t k,
      const std::function<sysvm::Payload(std::uint32_t)>& params_for = {}) {
    return api_.initiate(task_type, k, params_for);
  }

  /// "resume a paused task", optionally with a datum.
  void resume_child(sysvm::TaskId child, sysvm::Payload datum = {}) {
    api_.resume_child(child, std::move(datum));
  }

  /// "broadcast data to a set of tasks": resume each paused child with a
  /// copy of the datum.
  void broadcast(std::span<const sysvm::TaskId> children,
                 const sysvm::Payload& datum) {
    for (const auto child : children) api_.resume_child(child, datum);
  }

  /// Children that have paused so far (drains the notification box).
  std::vector<sysvm::TaskId> take_paused_children() {
    return api_.take_paused_children();
  }

  /// Results of terminated children accumulated so far (drains the box).
  std::vector<sysvm::Payload> take_child_results() {
    return api_.take_child_results();
  }

  // --- awaitables ---------------------------------------------------------
  struct JoinAwait {
    TaskContext& ctx;
    std::size_t count;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      ctx.api_.block_on_child_terminations(count);
      ctx.suspend_kind_ = SuspendKind::Blocked;
    }
    std::vector<sysvm::Payload> await_resume() {
      return ctx.api_.take_child_results();
    }
  };
  /// Wait for `count` further child terminations; returns all accumulated
  /// child results.
  JoinAwait join(std::size_t count) { return JoinAwait{*this, count}; }

  struct CallAwait {
    TaskContext& ctx;
    hw::ClusterId destination;
    std::string procedure;
    sysvm::Payload args;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      const auto token = ctx.api_.remote_call(destination,
                                              std::move(procedure),
                                              std::move(args));
      ctx.api_.block_on_reply(token);
      ctx.suspend_kind_ = SuspendKind::Blocked;
    }
    sysvm::Payload await_resume() { return std::move(ctx.wake_); }
  };
  /// Remote procedure call to an explicit cluster; returns its result.
  CallAwait call(hw::ClusterId destination, std::string procedure,
                 sysvm::Payload args) {
    return CallAwait{*this, destination, std::move(procedure),
                     std::move(args)};
  }
  /// Remote procedure call whose "location is determined by the location of
  /// the data visible in a window".
  CallAwait call_at(const Window& window, std::string procedure,
                    sysvm::Payload args);

  struct PauseAwait {
    TaskContext& ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      ctx.api_.block_for_pause();
      ctx.suspend_kind_ = SuspendKind::Blocked;
    }
    sysvm::Payload await_resume() { return std::move(ctx.wake_); }
  };
  /// "pause and notify parent"; the returned payload is the datum the
  /// parent passed when resuming this task.
  PauseAwait pause() { return PauseAwait{*this}; }

  struct ChildPausesAwait {
    TaskContext& ctx;
    std::size_t count;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      ctx.api_.block_on_child_pauses(count);
      ctx.suspend_kind_ = SuspendKind::Blocked;
    }
    std::vector<sysvm::TaskId> await_resume() {
      return ctx.api_.take_paused_children();
    }
  };
  /// Wait for `count` further children to pause; returns the paused set.
  ChildPausesAwait child_pauses(std::size_t count) {
    return ChildPausesAwait{*this, count};
  }

  struct YieldAwait {
    TaskContext& ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      ctx.suspend_kind_ = SuspendKind::Yielded;
    }
    void await_resume() {}
  };
  /// Cooperative re-schedule (back of the ready queue).
  YieldAwait yield() { return YieldAwait{*this}; }

  // --- windows (implemented with Runtime's array registry) -----------------
  /// Create a task-owned array in this cluster's shared memory; returns the
  /// full window onto it.
  Window create_array(std::size_t rows, std::size_t cols,
                      std::vector<double> init = {});
  Window create_vector(std::vector<double> init);

  /// True if the window's data lives in this task's cluster.
  bool window_is_local(const Window& window) const;

  struct ReadAwait {
    TaskContext& ctx;
    Window window;
    std::vector<double> local;
    bool is_local = false;
    hw::Cycles issued_at = 0;  ///< remote path: virtual time at suspend
    bool await_ready();
    void await_suspend(std::coroutine_handle<>);
    std::vector<double> await_resume();
  };
  /// Read the data visible in a window.  Local windows are a shared-memory
  /// access; remote windows become a remote procedure call to the owning
  /// cluster.
  ReadAwait read(const Window& window) {
    return ReadAwait{*this, window, {}, false};
  }

  struct WriteAwait {
    TaskContext& ctx;
    Window window;
    std::vector<double> data;
    bool is_local = false;
    hw::Cycles issued_at = 0;  ///< remote path: virtual time at suspend
    bool await_ready();
    void await_suspend(std::coroutine_handle<>);
    void await_resume();
  };
  /// Assign the data visible in a window (local store or remote call).
  WriteAwait write(const Window& window, std::vector<double> data) {
    return WriteAwait{*this, window, std::move(data), false};
  }

  // --- collectors (reduction rendezvous; see Runtime) -----------------------
  struct CollectAwait {
    TaskContext& ctx;
    std::uint64_t collector;
    bool await_ready();
    void await_suspend(std::coroutine_handle<>);
    std::vector<sysvm::Payload> await_resume();
  };
  /// Create a rendezvous expecting `expected` deposits (via the
  /// "navm.collect" procedure on this task's cluster).
  std::uint64_t make_collector(std::size_t expected);
  /// Wait until the collector is full; returns the deposited payloads.
  CollectAwait collect(std::uint64_t collector) {
    return CollectAwait{*this, collector};
  }
  /// Deposit into a collector owned by a task on `destination`.  A nonzero
  /// `token` makes the deposit idempotent: the collector accepts each
  /// (depositor, token) pair once, so a depositor re-initiated by
  /// cluster-loss recovery cannot double count.
  CallAwait deposit(hw::ClusterId destination, std::uint64_t collector,
                    sysvm::Payload value, std::uint64_t token = 0);

  // --- internals (used by CoroProgram / Runtime) ---------------------------
  sysvm::TaskApi& api() { return api_; }

 private:
  friend class CoroProgram;

  sysvm::TaskApi& api_;
  sysvm::Payload params_;
  Runtime* runtime_;
  sysvm::Payload wake_;
  SuspendKind suspend_kind_ = SuspendKind::Blocked;
};

/// Adapter running a coroutine body as a sysvm TaskProgram.
class CoroProgram final : public sysvm::TaskProgram {
 public:
  CoroProgram(sysvm::TaskApi& api, sysvm::Payload params, Runtime* runtime,
              const TaskBody& body)
      : context_(api, std::move(params), runtime), coro_(body(context_)) {}

  sysvm::StepResult resume(sysvm::Payload wake) override {
    context_.wake_ = std::move(wake);
    context_.suspend_kind_ = SuspendKind::Blocked;
    coro_.handle().resume();
    sysvm::StepResult result;
    if (coro_.handle().done()) {
      if (auto e = coro_.handle().promise().exception)
        std::rethrow_exception(e);
      result.outcome = sysvm::StepResult::Outcome::Finished;
    } else {
      result.outcome = context_.suspend_kind_ == SuspendKind::Yielded
                           ? sysvm::StepResult::Outcome::Yielded
                           : sysvm::StepResult::Outcome::Blocked;
    }
    return result;
  }

  sysvm::Payload take_result() override {
    return std::move(coro_.handle().promise().result);
  }

 private:
  TaskContext context_;
  Coro coro_;
};

}  // namespace fem2::navm
