#include "navm/task.hpp"

#include "navm/runtime.hpp"

namespace fem2::navm {

Runtime& TaskContext::runtime() const {
  FEM2_CHECK_MSG(runtime_ != nullptr, "task context has no runtime");
  return *runtime_;
}

TaskContext::CallAwait TaskContext::call_at(const Window& window,
                                            std::string procedure,
                                            sysvm::Payload args) {
  return call(runtime().window_cluster(window), std::move(procedure),
              std::move(args));
}

Window TaskContext::create_array(std::size_t rows, std::size_t cols,
                                 std::vector<double> init) {
  return runtime().create_array(*this, rows, cols, std::move(init));
}

Window TaskContext::create_vector(std::vector<double> init) {
  const std::size_t n = init.size();
  return runtime().create_array(*this, n, 1, std::move(init));
}

bool TaskContext::window_is_local(const Window& window) const {
  return runtime().window_cluster(window) == cluster();
}

// --- ReadAwait --------------------------------------------------------------

bool TaskContext::ReadAwait::await_ready() {
  if (ctx.window_is_local(window)) {
    is_local = true;
    ctx.charge_words(window.elements());
    local = ctx.runtime().gather(window);
    return true;
  }
  return false;
}

void TaskContext::ReadAwait::await_suspend(std::coroutine_handle<>) {
  const auto destination = ctx.runtime().window_cluster(window);
  issued_at = ctx.runtime().os().machine().now();
  const auto token = ctx.api_.remote_call(
      destination, "navm.win.read",
      sysvm::Payload::of(window, Window::kDescriptorBytes));
  ctx.api_.block_on_reply(token);
  ctx.suspend_kind_ = SuspendKind::Blocked;
}

std::vector<double> TaskContext::ReadAwait::await_resume() {
  if (is_local) return std::move(local);
  ctx.runtime().note_remote_window_wait(
      window, ctx.runtime().os().machine().now() - issued_at);
  return as_reals(ctx.wake_);
}

// --- WriteAwait ---------------------------------------------------------------

bool TaskContext::WriteAwait::await_ready() {
  if (ctx.window_is_local(window)) {
    is_local = true;
    ctx.charge_words(window.elements());
    // A store into another task's array escapes this task's lifetime: it
    // cannot be undone by re-initiating the task, so the task is no longer
    // individually relocatable after a cluster loss.
    if (ctx.runtime().array_info(window.array).owner != ctx.self())
      ctx.api_.mark_side_effect();
    ctx.runtime().scatter(window, data);
    return true;
  }
  return false;
}

void TaskContext::WriteAwait::await_suspend(std::coroutine_handle<>) {
  const auto destination = ctx.runtime().window_cluster(window);
  issued_at = ctx.runtime().os().machine().now();
  const std::size_t bytes =
      Window::kDescriptorBytes + data.size() * sizeof(double);
  WriteArgs args{window, std::move(data)};
  const auto token = ctx.api_.remote_call(
      destination, "navm.win.write",
      sysvm::Payload::of(std::move(args), bytes));
  ctx.api_.block_on_reply(token);
  ctx.suspend_kind_ = SuspendKind::Blocked;
}

void TaskContext::WriteAwait::await_resume() {
  if (is_local) return;
  ctx.runtime().note_remote_window_wait(
      window, ctx.runtime().os().machine().now() - issued_at);
}

// --- Collectors -----------------------------------------------------------------

std::uint64_t TaskContext::make_collector(std::size_t expected) {
  return runtime().make_collector(*this, expected);
}

bool TaskContext::CollectAwait::await_ready() {
  return ctx.runtime().collector_full(collector);
}

void TaskContext::CollectAwait::await_suspend(std::coroutine_handle<>) {
  const auto token = ctx.runtime().os().allocate_call_token();
  ctx.runtime().collector_arm(collector, token);
  ctx.api_.block_on_reply(token);
  ctx.suspend_kind_ = SuspendKind::Blocked;
}

std::vector<sysvm::Payload> TaskContext::CollectAwait::await_resume() {
  return ctx.runtime().collector_take(collector);
}

TaskContext::CallAwait TaskContext::deposit(hw::ClusterId destination,
                                            std::uint64_t collector,
                                            sysvm::Payload value,
                                            std::uint64_t token) {
  const std::size_t bytes = 32 + value.bytes;
  DepositArgs args{collector, self(), token, std::move(value)};
  return call(destination, "navm.collect",
              sysvm::Payload::of(std::move(args), bytes));
}

}  // namespace fem2::navm
