#include "navm/window.hpp"

namespace fem2::navm {

Window Window::row(std::size_t i) const {
  FEM2_CHECK(i < rows);
  return Window{array, row0 + i, col0, 1, cols};
}

Window Window::col(std::size_t j) const {
  FEM2_CHECK(j < cols);
  return Window{array, row0, col0 + j, rows, 1};
}

Window Window::block(std::size_t r0, std::size_t c0, std::size_t nrows,
                     std::size_t ncols) const {
  FEM2_CHECK(r0 + nrows <= rows && c0 + ncols <= cols);
  return Window{array, row0 + r0, col0 + c0, nrows, ncols};
}

std::vector<Window> Window::split_rows(std::size_t k) const {
  FEM2_CHECK(k > 0);
  std::vector<Window> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = block_begin(rows, k, i);
    const std::size_t end = block_begin(rows, k, i + 1);
    if (end > begin) out.push_back(block(begin, 0, end - begin, cols));
  }
  return out;
}

std::vector<Window> Window::split_cols(std::size_t k) const {
  FEM2_CHECK(k > 0);
  std::vector<Window> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = block_begin(cols, k, i);
    const std::size_t end = block_begin(cols, k, i + 1);
    if (end > begin) out.push_back(block(0, begin, rows, end - begin));
  }
  return out;
}

Window Window::range(std::size_t offset, std::size_t count) const {
  FEM2_CHECK_MSG(cols == 1, "range() applies to vector-shaped windows");
  FEM2_CHECK(offset + count <= rows);
  return Window{array, row0 + offset, col0, count, 1};
}

std::size_t block_begin(std::size_t n, std::size_t k, std::size_t i) {
  FEM2_CHECK(k > 0 && i <= k);
  return i * (n / k) + std::min(i, n % k);
}

}  // namespace fem2::navm
