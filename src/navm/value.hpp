// Payload helpers for the numerical analyst's VM: wrap scalars, vectors and
// small structs with faithful wire-size accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysvm/message.hpp"

namespace fem2::navm {

using sysvm::Payload;

inline Payload payload_int(std::int64_t v) { return Payload::of(v, 8); }
inline Payload payload_real(double v) { return Payload::of(v, 8); }
inline Payload payload_string(std::string v) {
  const std::size_t n = v.size();
  return Payload::of(std::move(v), n + 8);
}
inline Payload payload_reals(std::vector<double> v) {
  const std::size_t n = v.size();
  return Payload::of(std::move(v), n * sizeof(double) + 16);
}

/// Wrap any struct; `bytes` must be supplied by the caller (wire size).
template <typename T>
Payload payload_struct(T v, std::size_t bytes) {
  return Payload::of(std::move(v), bytes);
}

inline std::int64_t as_int(const Payload& p) { return p.as<std::int64_t>(); }
inline double as_real(const Payload& p) { return p.as<double>(); }
inline const std::vector<double>& as_reals(const Payload& p) {
  return p.as<std::vector<double>>();
}

}  // namespace fem2::navm
