#include "fem/substructure.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "fem/element.hpp"
#include "la/iterative.hpp"
#include "navm/task.hpp"
#include "navm/value.hpp"

namespace fem2::fem {

namespace {

/// Free (reduced) dof indices touched by one element.
std::vector<std::size_t> element_free_dofs(const StructureModel& model
                                           [[maybe_unused]],
                                           const DofMap& map,
                                           const Element& element) {
  std::vector<std::size_t> out;
  const std::size_t edof = element_dofs_per_node(element.type);
  for (std::size_t i = 0; i < element.node_count(); ++i) {
    for (std::size_t d = 0; d < edof; ++d) {
      const std::ptrdiff_t r =
          map.full_to_reduced[map.full_index(element.nodes[i], d)];
      if (r >= 0) out.push_back(static_cast<std::size_t>(r));
    }
  }
  return out;
}

double element_centroid_x(const StructureModel& model,
                          const Element& element) {
  double x = 0.0;
  for (std::size_t i = 0; i < element.node_count(); ++i)
    x += model.nodes[element.nodes[i]].x;
  return x / static_cast<double>(element.node_count());
}

/// Condensation result sent back to the driver.
struct CondensedShard {
  la::DenseMatrix schur;           ///< local boundary × local boundary
  std::vector<double> g;           ///< condensed load on the local boundary
  std::vector<std::size_t> boundary_global;
};

/// Interior recovery result.
struct InteriorShard {
  std::vector<double> u_i;
  std::vector<std::size_t> interior_global;
};

/// The condensation math shared by the sequential path and the worker task.
/// Returns the Schur complement and condensed load; `factor` keeps the
/// interior factorization for back-substitution.
struct Condensation {
  la::DenseMatrix schur;
  std::vector<double> g;
  std::unique_ptr<la::CholeskyFactorization> factor;  ///< null if no interior
  la::DenseMatrix k_ii_inv_k_ib;  ///< interior × boundary, for back-subst.
};

Condensation condense(const SubstructureData& sub) {
  const std::size_t ni = sub.k_ii.rows();
  const std::size_t nb = sub.boundary_global.size();
  Condensation out;
  out.schur = sub.k_bb;
  out.g.assign(nb, 0.0);
  if (ni == 0) return out;

  out.factor = std::make_unique<la::CholeskyFactorization>(sub.k_ii);
  // K_ii^{-1} K_ib, column by column.
  out.k_ii_inv_k_ib = la::DenseMatrix(ni, nb);
  std::vector<double> col(ni);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t i = 0; i < ni; ++i) col[i] = sub.k_ib(i, b);
    const auto solved = out.factor->solve(col);
    for (std::size_t i = 0; i < ni; ++i) out.k_ii_inv_k_ib(i, b) = solved[i];
  }
  // Schur = K_bb - K_ibᵀ (K_ii^{-1} K_ib)
  for (std::size_t r = 0; r < nb; ++r) {
    for (std::size_t c = 0; c < nb; ++c) {
      double acc = 0.0;
      for (std::size_t i = 0; i < ni; ++i)
        acc += sub.k_ib(i, r) * out.k_ii_inv_k_ib(i, c);
      out.schur(r, c) -= acc;
    }
  }
  // g = K_ibᵀ K_ii^{-1} f_i
  const auto u_f = out.factor->solve(sub.f_i);
  for (std::size_t r = 0; r < nb; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < ni; ++i) acc += sub.k_ib(i, r) * u_f[i];
    out.g[r] = acc;
  }
  return out;
}

std::vector<double> back_substitute(const SubstructureData& sub,
                                    const Condensation& cond,
                                    std::span<const double> u_b_local) {
  const std::size_t ni = sub.k_ii.rows();
  if (ni == 0) return {};
  // u_i = K_ii^{-1} f_i - (K_ii^{-1} K_ib) u_b
  std::vector<double> u_i = cond.factor->solve(sub.f_i);
  for (std::size_t i = 0; i < ni; ++i) {
    double acc = 0.0;
    for (std::size_t b = 0; b < u_b_local.size(); ++b)
      acc += cond.k_ii_inv_k_ib(i, b) * u_b_local[b];
    u_i[i] -= acc;
  }
  return u_i;
}

std::uint64_t condensation_flops(std::size_t ni, std::size_t nb) {
  return ni * ni * ni / 3 + 2 * ni * ni * nb + ni * nb * nb + 2 * ni * ni;
}

}  // namespace

std::size_t SubstructureData::payload_bytes() const {
  return (k_ii.rows() * k_ii.cols() + k_ib.rows() * k_ib.cols() +
          k_bb.rows() * k_bb.cols() + f_i.size()) *
             sizeof(double) +
         (boundary_global.size() + interior_global.size()) *
             sizeof(std::size_t) +
         64;
}

SubstructurePartition partition_by_x(const StructureModel& model,
                                     std::size_t count) {
  FEM2_CHECK(count > 0);
  double xmin = model.nodes.empty() ? 0.0 : model.nodes[0].x;
  double xmax = xmin;
  for (const auto& n : model.nodes) {
    xmin = std::min(xmin, n.x);
    xmax = std::max(xmax, n.x);
  }
  const double span = std::max(xmax - xmin, 1e-12);

  SubstructurePartition out;
  out.element_groups.resize(count);
  for (std::size_t e = 0; e < model.elements.size(); ++e) {
    const double x = element_centroid_x(model, model.elements[e]);
    auto band = static_cast<std::size_t>((x - xmin) / span *
                                         static_cast<double>(count));
    band = std::min(band, count - 1);
    out.element_groups[band].push_back(e);
  }
  // Drop empty bands (coarse meshes with many requested substructures).
  std::erase_if(out.element_groups,
                [](const auto& group) { return group.empty(); });
  FEM2_CHECK_MSG(!out.element_groups.empty(), "empty partition");
  return out;
}

SubstructureProblem prepare_substructures(
    const StructureModel& model, const AssembledSystem& system,
    std::span<const double> rhs, const SubstructurePartition& partition) {
  const DofMap& map = system.dofs;
  const std::size_t n = map.free_dofs;
  const std::size_t s_count = partition.count();

  // Which substructures touch each reduced dof.
  std::vector<std::uint32_t> touch_count(n, 0);
  std::vector<std::uint32_t> touch_first(n, 0);
  std::vector<std::vector<std::size_t>> sub_dofs(s_count);
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t s = 0; s < s_count; ++s) {
      std::fill(seen.begin(), seen.end(), 0);
      for (const std::size_t e : partition.element_groups[s]) {
        for (const std::size_t d :
             element_free_dofs(model, map, model.elements[e])) {
          if (!seen[d]) {
            seen[d] = 1;
            sub_dofs[s].push_back(d);
            if (touch_count[d] == 0) touch_first[d] = static_cast<std::uint32_t>(s);
            touch_count[d] += 1;
          }
        }
      }
      std::sort(sub_dofs[s].begin(), sub_dofs[s].end());
    }
  }

  // Interface = dofs shared by two or more substructures.
  SubstructureProblem problem;
  std::vector<std::ptrdiff_t> interface_index(n, -1);
  for (std::size_t d = 0; d < n; ++d) {
    FEM2_CHECK_MSG(touch_count[d] > 0,
                   "free dof not covered by any substructure");
    if (touch_count[d] > 1) {
      interface_index[d] =
          static_cast<std::ptrdiff_t>(problem.interface_to_reduced.size());
      problem.interface_to_reduced.push_back(d);
    }
  }

  problem.interface_rhs.assign(problem.interface_to_reduced.size(), 0.0);
  for (std::size_t b = 0; b < problem.interface_to_reduced.size(); ++b)
    problem.interface_rhs[b] = rhs[problem.interface_to_reduced[b]];

  // Per-substructure local systems assembled from that group's elements.
  problem.subs.resize(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    auto& sub = problem.subs[s];
    std::vector<std::size_t> interior;
    std::vector<std::size_t> boundary;
    for (const std::size_t d : sub_dofs[s]) {
      if (interface_index[d] >= 0) {
        boundary.push_back(d);
      } else {
        interior.push_back(d);
      }
    }
    std::map<std::size_t, std::size_t> local_i;  // reduced dof -> interior idx
    std::map<std::size_t, std::size_t> local_b;
    for (std::size_t i = 0; i < interior.size(); ++i) local_i[interior[i]] = i;
    for (std::size_t b = 0; b < boundary.size(); ++b) local_b[boundary[b]] = b;

    sub.k_ii = la::DenseMatrix(interior.size(), interior.size());
    sub.k_ib = la::DenseMatrix(interior.size(), boundary.size());
    sub.k_bb = la::DenseMatrix(boundary.size(), boundary.size());
    sub.f_i.assign(interior.size(), 0.0);
    sub.interior_global = interior;
    sub.boundary_global.reserve(boundary.size());
    for (const std::size_t d : boundary)
      sub.boundary_global.push_back(
          static_cast<std::size_t>(interface_index[d]));

    for (const std::size_t e : partition.element_groups[s]) {
      const Element& element = model.elements[e];
      const la::DenseMatrix k = element_stiffness(model, element);
      const std::size_t edof = element_dofs_per_node(element.type);
      const std::size_t en = element.node_count() * edof;
      std::vector<std::ptrdiff_t> reduced(en, -1);
      for (std::size_t i = 0; i < element.node_count(); ++i)
        for (std::size_t d = 0; d < edof; ++d)
          reduced[i * edof + d] =
              map.full_to_reduced[map.full_index(element.nodes[i], d)];

      for (std::size_t r = 0; r < en; ++r) {
        if (reduced[r] < 0) continue;
        const std::size_t rd = static_cast<std::size_t>(reduced[r]);
        const bool r_interior = local_i.contains(rd);
        for (std::size_t c = 0; c < en; ++c) {
          if (reduced[c] < 0) continue;
          const std::size_t cd = static_cast<std::size_t>(reduced[c]);
          const bool c_interior = local_i.contains(cd);
          const double v = k(r, c);
          if (v == 0.0) continue;
          if (r_interior && c_interior) {
            sub.k_ii(local_i.at(rd), local_i.at(cd)) += v;
          } else if (r_interior && !c_interior) {
            sub.k_ib(local_i.at(rd), local_b.at(cd)) += v;
          } else if (!r_interior && !c_interior) {
            sub.k_bb(local_b.at(rd), local_b.at(cd)) += v;
          }
          // interior-row entries cover the (boundary, interior) block by
          // symmetry; it is not stored.
        }
      }
    }
    for (std::size_t i = 0; i < interior.size(); ++i)
      sub.f_i[i] = rhs[interior[i]];
  }
  return problem;
}

namespace {

StaticSolution compose_solution(const AssembledSystem& system,
                                const SubstructureProblem& problem,
                                std::span<const double> u_b,
                                const std::vector<InteriorShard>& interiors,
                                const std::string& method,
                                std::span<const double> rhs,
                                SubstructureStats* stats) {
  std::vector<double> reduced(system.dofs.free_dofs, 0.0);
  for (std::size_t b = 0; b < u_b.size(); ++b)
    reduced[problem.interface_to_reduced[b]] = u_b[b];
  for (const auto& shard : interiors)
    for (std::size_t i = 0; i < shard.u_i.size(); ++i)
      reduced[shard.interior_global[i]] = shard.u_i[i];

  StaticSolution out;
  out.displacements = system.expand(reduced);
  out.stats.method = method;
  out.stats.residual = la::relative_residual(system.stiffness, reduced, rhs);
  out.stats.converged = out.stats.residual < 1e-8;
  out.stats.matrix_storage_bytes = system.stiffness.storage_bytes();
  if (stats != nullptr) {
    stats->substructures = problem.subs.size();
    stats->interface_dofs = problem.interface_dofs();
    stats->residual = out.stats.residual;
  }
  return out;
}

std::span<const double> rhs_for(const StructureModel& model,
                                const AssembledSystem& system,
                                const std::string& load_set,
                                std::vector<double>& storage) {
  const auto it = model.load_sets.find(load_set);
  if (it == model.load_sets.end())
    throw support::Error("unknown load set: " + load_set);
  storage = system.load_vector(it->second);
  return storage;
}

}  // namespace

StaticSolution solve_substructured(const StructureModel& model,
                                   const std::string& load_set,
                                   const SubstructurePartition& partition,
                                   SubstructureStats* stats) {
  const AssembledSystem system = assemble(model);
  std::vector<double> rhs_storage;
  const auto rhs = rhs_for(model, system, load_set, rhs_storage);
  const SubstructureProblem problem =
      prepare_substructures(model, system, rhs, partition);

  const std::size_t nb = problem.interface_dofs();
  la::DenseMatrix interface(nb, nb);
  std::vector<double> interface_rhs = problem.interface_rhs;
  std::vector<Condensation> condensed;
  condensed.reserve(problem.subs.size());
  for (const auto& sub : problem.subs) {
    condensed.push_back(condense(sub));
    const auto& cond = condensed.back();
    const auto& bg = sub.boundary_global;
    for (std::size_t r = 0; r < bg.size(); ++r) {
      interface_rhs[bg[r]] -= cond.g[r];
      for (std::size_t c = 0; c < bg.size(); ++c)
        interface(bg[r], bg[c]) += cond.schur(r, c);
    }
  }

  std::vector<double> u_b;
  if (nb > 0) {
    la::CholeskyFactorization chol(interface);
    u_b = chol.solve(interface_rhs);
  }

  std::vector<InteriorShard> interiors;
  interiors.reserve(problem.subs.size());
  for (std::size_t s = 0; s < problem.subs.size(); ++s) {
    const auto& sub = problem.subs[s];
    std::vector<double> u_b_local(sub.boundary_global.size());
    for (std::size_t b = 0; b < u_b_local.size(); ++b)
      u_b_local[b] = u_b[sub.boundary_global[b]];
    interiors.push_back(
        {back_substitute(sub, condensed[s], u_b_local), sub.interior_global});
  }
  return compose_solution(system, problem, u_b, interiors,
                          "substructured-condensation", rhs, stats);
}

// ---------------------------------------------------------------------------
// Parallel variant

namespace {

struct SubWorkerParams {
  SubstructureData data;
  hw::ClusterId driver_cluster;
  std::uint64_t collector = 0;
};

/// Driver task result: everything the host needs to recompose the solution.
struct SubComposite {
  std::vector<double> u_b;
  std::vector<InteriorShard> interiors;
  std::vector<std::size_t> interface_to_reduced;
};

struct SubDriverParams {
  SubstructureProblem problem;
};

navm::Coro sub_worker_body(navm::TaskContext& ctx) {
  const auto& wp = ctx.params().as<SubWorkerParams>();
  const auto& sub = wp.data;
  const std::size_t ni = sub.k_ii.rows();
  const std::size_t nb = sub.boundary_global.size();

  // Phase 1: condense.  Interior data never leaves this task.
  ctx.charge_flops(condensation_flops(ni, nb));
  Condensation cond = condense(sub);

  CondensedShard shard{cond.schur, cond.g, sub.boundary_global};
  const std::size_t bytes = (nb * nb + nb) * sizeof(double) + 32;
  co_await ctx.deposit(wp.driver_cluster, wp.collector,
                       sysvm::Payload::of(std::move(shard), bytes));

  // Phase 2: the driver resumes us with our interface displacement slice.
  const sysvm::Payload datum = co_await ctx.pause();
  const auto& u_b_local = navm::as_reals(datum);
  ctx.charge_flops(2 * ni * nb + ni * ni);
  InteriorShard result{back_substitute(sub, cond, u_b_local),
                       sub.interior_global};
  co_return sysvm::Payload::of(std::move(result),
                               (ni + sub.interior_global.size()) * 8 + 16);
}

navm::Coro sub_driver_body(navm::TaskContext& ctx) {
  const auto& dp = ctx.params().as<SubDriverParams>();
  const auto& problem = dp.problem;
  const auto k = static_cast<std::uint32_t>(problem.subs.size());
  const std::size_t nb = problem.interface_dofs();

  const std::uint64_t collector = ctx.make_collector(k);
  const auto children =
      ctx.initiate(kSubWorkerTask, k, [&](std::uint32_t i) {
        SubWorkerParams wp{problem.subs[i], ctx.cluster(), collector};
        const std::size_t bytes = problem.subs[i].payload_bytes();
        return sysvm::Payload::of(std::move(wp), bytes);
      });

  // Assemble and solve the interface system from the deposited Schur
  // complements.
  auto deposits = co_await ctx.collect(collector);
  la::DenseMatrix interface(nb, nb);
  std::vector<double> rhs = problem.interface_rhs;
  for (const auto& d : deposits) {
    const auto& shard = d.as<CondensedShard>();
    const auto& bg = shard.boundary_global;
    for (std::size_t r = 0; r < bg.size(); ++r) {
      rhs[bg[r]] -= shard.g[r];
      for (std::size_t c = 0; c < bg.size(); ++c)
        interface(bg[r], bg[c]) += shard.schur(r, c);
    }
  }
  std::vector<double> u_b;
  if (nb > 0) {
    ctx.charge_flops(nb * nb * nb / 3 + 2 * nb * nb);
    la::CholeskyFactorization chol(interface);
    u_b = chol.solve(rhs);
  }

  // Waking each worker with its own slice is a (non-uniform) broadcast.
  (void)co_await ctx.child_pauses(k);
  const auto paused = ctx.take_paused_children();
  (void)paused;  // workers were collected via deposits; resume by identity
  for (std::size_t i = 0; i < problem.subs.size(); ++i) {
    const auto& bg = problem.subs[i].boundary_global;
    std::vector<double> slice(bg.size());
    for (std::size_t b = 0; b < bg.size(); ++b) slice[b] = u_b[bg[b]];
    ctx.resume_child(children[i], navm::payload_reals(std::move(slice)));
  }

  auto results = co_await ctx.join(k);
  SubComposite composite;
  composite.u_b = std::move(u_b);
  composite.interface_to_reduced = problem.interface_to_reduced;
  for (auto& r : results)
    composite.interiors.push_back(r.as<InteriorShard>());
  std::size_t bytes = composite.u_b.size() * 8 + 32;
  for (const auto& shard : composite.interiors)
    bytes += shard.u_i.size() * 16;
  co_return sysvm::Payload::of(std::move(composite), bytes);
}

}  // namespace

void register_substructure_tasks(navm::Runtime& runtime) {
  runtime.define_task(kSubWorkerTask, sub_worker_body, {2048, 16384});
  runtime.define_task(kSubDriverTask, sub_driver_body, {2048, 16384});
}

StaticSolution solve_substructured_parallel(
    const StructureModel& model, const std::string& load_set,
    const SubstructurePartition& partition, navm::Runtime& runtime,
    SubstructureStats* stats) {
  const AssembledSystem system = assemble(model);
  std::vector<double> rhs_storage;
  const auto rhs = rhs_for(model, system, load_set, rhs_storage);
  SubstructureProblem problem =
      prepare_substructures(model, system, rhs, partition);

  std::size_t bytes = problem.interface_rhs.size() * 8 + 64;
  for (const auto& sub : problem.subs) bytes += sub.payload_bytes();
  SubDriverParams params{std::move(problem)};
  const auto task = runtime.launch(
      kSubDriverTask, sysvm::Payload::of(std::move(params), bytes));
  runtime.run();
  FEM2_CHECK_MSG(runtime.os().task_finished(task),
                 "parallel substructure solve did not complete");

  const auto& payload = runtime.result(task);
  const auto& composite = payload.as<SubComposite>();

  // Recompose on the host (the driver returned all shards).
  const SubstructureProblem recompose_info{
      {}, {}, composite.interface_to_reduced};
  StaticSolution out =
      compose_solution(system, recompose_info, composite.u_b,
                       composite.interiors, "fem2-substructured", rhs, stats);
  if (stats != nullptr) stats->substructures = partition.count();
  return out;
}

}  // namespace fem2::fem
