// End-to-end analysis pipeline: assemble → solve → recover stresses.
// This is the engine behind the application user's "solve structure
// model/load set for displacements" and "calculate stresses" commands.
#pragma once

#include "fem/model.hpp"
#include "fem/solver.hpp"
#include "fem/stress.hpp"

namespace fem2::fem {

struct AnalysisResult {
  StaticSolution solution;
  std::vector<ElementStress> stresses;
  ElementStress peak;
};

AnalysisResult analyze(const StructureModel& model,
                       const std::string& load_set,
                       const SolverOptions& options = {});

}  // namespace fem2::fem
