// Grid generation — the application user's "generate grid" operation.
// Produces complete structural models for the workloads the paper's
// applications revolve around: frames, trusses and plane-stress sheets.
#pragma once

#include "fem/model.hpp"

namespace fem2::fem {

struct PlateMeshOptions {
  std::size_t nx = 8;           ///< elements along x
  std::size_t ny = 4;           ///< elements along y
  double width = 2.0;           ///< m
  double height = 1.0;          ///< m
  ElementType element = ElementType::Quad4;  ///< Quad4 or Tri3
  Material material = {};

  std::size_t node_count() const { return (nx + 1) * (ny + 1); }
};

/// Rectangular plane-stress sheet; node (i, j) = j*(nx+1)+i, i along x.
StructureModel make_plate(const PlateMeshOptions& options);

/// Plate fixed along its left edge with a downward shear load distributed
/// over the right edge — the canonical cantilever sheet used throughout the
/// benches ("typical large-scale application").
StructureModel make_cantilever_plate(const PlateMeshOptions& options,
                                     double total_load);

struct FrameOptions {
  std::size_t segments = 8;
  double length = 4.0;  ///< m
  Material material = {};
};

/// Horizontal cantilever of beam elements, fixed at node 0; load set
/// "tip" applies a unit transverse tip force (scale with add_load).
StructureModel make_cantilever_beam(const FrameOptions& options,
                                    double tip_load);

struct TrussOptions {
  std::size_t bays = 6;      ///< number of bays along the span
  double bay_width = 1.0;    ///< m
  double height = 1.0;       ///< m
  Material material = {};
};

/// Planar Pratt-style truss: top/bottom chords, verticals and diagonals,
/// simply supported at both ends, unit downward loads on the bottom chord.
StructureModel make_truss_bridge(const TrussOptions& options,
                                 double load_per_joint);

/// Index of the plate node at grid position (i, j).
std::size_t plate_node(const PlateMeshOptions& options, std::size_t i,
                       std::size_t j);

}  // namespace fem2::fem
