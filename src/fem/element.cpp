#include "fem/element.hpp"

#include <array>
#include <cmath>

namespace fem2::fem {

namespace {

struct Frame {
  double length;
  double c;  ///< cos of element axis angle
  double s;  ///< sin
};

Frame element_frame(const Node& a, const Node& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double length = std::hypot(dx, dy);
  FEM2_CHECK_MSG(length > 0.0, "degenerate two-node element");
  return {length, dx / length, dy / length};
}

la::DenseMatrix bar2_stiffness(const StructureModel& model,
                               const Element& e) {
  const auto& m = model.materials[e.material];
  const Frame f = element_frame(model.nodes[e.nodes[0]],
                                model.nodes[e.nodes[1]]);
  const double k = m.youngs_modulus * m.area / f.length;
  const double cc = f.c * f.c, ss = f.s * f.s, cs = f.c * f.s;
  la::DenseMatrix out(4, 4);
  const double entries[4][4] = {
      {cc, cs, -cc, -cs},
      {cs, ss, -cs, -ss},
      {-cc, -cs, cc, cs},
      {-cs, -ss, cs, ss},
  };
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out(r, c) = k * entries[r][c];
  return out;
}

la::DenseMatrix beam2_stiffness(const StructureModel& model,
                                const Element& e) {
  const auto& m = model.materials[e.material];
  const Frame f = element_frame(model.nodes[e.nodes[0]],
                                model.nodes[e.nodes[1]]);
  const double L = f.length;
  const double ea = m.youngs_modulus * m.area / L;
  const double ei = m.youngs_modulus * m.moment_of_inertia;
  const double b12 = 12.0 * ei / (L * L * L);
  const double b6 = 6.0 * ei / (L * L);
  const double b4 = 4.0 * ei / L;
  const double b2 = 2.0 * ei / L;

  la::DenseMatrix local(6, 6);
  const double entries[6][6] = {
      {ea, 0, 0, -ea, 0, 0},
      {0, b12, b6, 0, -b12, b6},
      {0, b6, b4, 0, -b6, b2},
      {-ea, 0, 0, ea, 0, 0},
      {0, -b12, -b6, 0, b12, -b6},
      {0, b6, b2, 0, -b6, b4},
  };
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) local(r, c) = entries[r][c];

  // T rotates global into local; per-node blocks [c s 0; -s c 0; 0 0 1].
  la::DenseMatrix t(6, 6);
  for (const std::size_t base : {std::size_t{0}, std::size_t{3}}) {
    t(base + 0, base + 0) = f.c;
    t(base + 0, base + 1) = f.s;
    t(base + 1, base + 0) = -f.s;
    t(base + 1, base + 1) = f.c;
    t(base + 2, base + 2) = 1.0;
  }
  return t.transpose().multiply(local).multiply(t);
}

/// CST strain-displacement matrix B (3×6) and area.
std::pair<la::DenseMatrix, double> tri3_b(const StructureModel& model,
                                          const Element& e) {
  const Node& n0 = model.nodes[e.nodes[0]];
  const Node& n1 = model.nodes[e.nodes[1]];
  const Node& n2 = model.nodes[e.nodes[2]];
  const double area = triangle_area(n0, n1, n2);
  FEM2_CHECK_MSG(std::abs(area) > 1e-300, "degenerate triangle element");

  const double b0 = n1.y - n2.y, b1 = n2.y - n0.y, b2 = n0.y - n1.y;
  const double c0 = n2.x - n1.x, c1 = n0.x - n2.x, c2 = n1.x - n0.x;
  const double inv2a = 1.0 / (2.0 * area);

  la::DenseMatrix b(3, 6);
  const double bs[3] = {b0, b1, b2};
  const double cs[3] = {c0, c1, c2};
  for (std::size_t i = 0; i < 3; ++i) {
    b(0, 2 * i) = bs[i] * inv2a;
    b(1, 2 * i + 1) = cs[i] * inv2a;
    b(2, 2 * i) = cs[i] * inv2a;
    b(2, 2 * i + 1) = bs[i] * inv2a;
  }
  return {b, area};
}

la::DenseMatrix tri3_stiffness(const StructureModel& model,
                               const Element& e) {
  const auto& m = model.materials[e.material];
  auto [b, area] = tri3_b(model, e);
  const la::DenseMatrix d = plane_stress_d(m);
  la::DenseMatrix k = b.transpose().multiply(d).multiply(b);
  const double scale = m.thickness * std::abs(area);
  la::DenseMatrix out(6, 6);
  out.add_scaled(k, scale);
  return out;
}

/// Quad4 B matrix (3×8) at natural coordinates (xi, eta) plus det(J).
std::pair<la::DenseMatrix, double> quad4_b(const StructureModel& model,
                                           const Element& e, double xi,
                                           double eta) {
  // Shape function derivatives wrt natural coordinates.
  const double dn_dxi[4] = {-(1 - eta) / 4, (1 - eta) / 4, (1 + eta) / 4,
                            -(1 + eta) / 4};
  const double dn_deta[4] = {-(1 - xi) / 4, -(1 + xi) / 4, (1 + xi) / 4,
                             (1 - xi) / 4};

  double j00 = 0, j01 = 0, j10 = 0, j11 = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Node& n = model.nodes[e.nodes[i]];
    j00 += dn_dxi[i] * n.x;
    j01 += dn_dxi[i] * n.y;
    j10 += dn_deta[i] * n.x;
    j11 += dn_deta[i] * n.y;
  }
  const double det = j00 * j11 - j01 * j10;
  FEM2_CHECK_MSG(det > 1e-300, "inverted or degenerate quad element");
  const double i00 = j11 / det, i01 = -j01 / det;
  const double i10 = -j10 / det, i11 = j00 / det;

  la::DenseMatrix b(3, 8);
  for (std::size_t i = 0; i < 4; ++i) {
    const double dndx = i00 * dn_dxi[i] + i01 * dn_deta[i];
    const double dndy = i10 * dn_dxi[i] + i11 * dn_deta[i];
    b(0, 2 * i) = dndx;
    b(1, 2 * i + 1) = dndy;
    b(2, 2 * i) = dndy;
    b(2, 2 * i + 1) = dndx;
  }
  return {b, det};
}

la::DenseMatrix quad4_stiffness(const StructureModel& model,
                                const Element& e) {
  const auto& m = model.materials[e.material];
  const la::DenseMatrix d = plane_stress_d(m);
  la::DenseMatrix k(8, 8);
  const double g = 1.0 / std::sqrt(3.0);
  for (const double xi : {-g, g}) {
    for (const double eta : {-g, g}) {
      auto [b, det] = quad4_b(model, e, xi, eta);
      const la::DenseMatrix kb = b.transpose().multiply(d).multiply(b);
      k.add_scaled(kb, m.thickness * det);  // unit Gauss weights
    }
  }
  return k;
}

/// Element displacement vector in the element's own dof layout, extracted
/// from the model-wide displacement vector.
std::vector<double> element_displacements(const StructureModel& model
                                          [[maybe_unused]],
                                          const Element& e,
                                          const Displacements& u) {
  const std::size_t edof = element_dofs_per_node(e.type);
  std::vector<double> out;
  out.reserve(e.node_count() * edof);
  for (std::size_t i = 0; i < e.node_count(); ++i)
    for (std::size_t d = 0; d < edof; ++d)
      out.push_back(u.at(e.nodes[i], d));
  return out;
}

}  // namespace

double triangle_area(const Node& a, const Node& b, const Node& c) {
  return 0.5 * ((b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y));
}

la::DenseMatrix plane_stress_d(const Material& m) {
  const double e = m.youngs_modulus;
  const double nu = m.poisson_ratio;
  FEM2_CHECK_MSG(nu > -1.0 && nu < 0.5, "invalid Poisson ratio");
  const double f = e / (1.0 - nu * nu);
  la::DenseMatrix d(3, 3);
  d(0, 0) = f;
  d(0, 1) = f * nu;
  d(1, 0) = f * nu;
  d(1, 1) = f;
  d(2, 2) = f * (1.0 - nu) / 2.0;
  return d;
}

la::DenseMatrix element_stiffness(const StructureModel& model,
                                  const Element& element) {
  switch (element.type) {
    case ElementType::Bar2: return bar2_stiffness(model, element);
    case ElementType::Beam2: return beam2_stiffness(model, element);
    case ElementType::Tri3: return tri3_stiffness(model, element);
    case ElementType::Quad4: return quad4_stiffness(model, element);
  }
  FEM2_UNREACHABLE("bad ElementType");
}

double von_mises_plane(double sxx, double syy, double txy) {
  return std::sqrt(sxx * sxx - sxx * syy + syy * syy + 3.0 * txy * txy);
}

ElementStress element_stress(const StructureModel& model,
                             std::size_t element_index,
                             const Displacements& u) {
  FEM2_CHECK(element_index < model.elements.size());
  const Element& e = model.elements[element_index];
  const Material& m = model.materials[e.material];

  ElementStress out;
  out.element = element_index;

  switch (e.type) {
    case ElementType::Bar2:
    case ElementType::Beam2: {
      const Frame f = element_frame(model.nodes[e.nodes[0]],
                                    model.nodes[e.nodes[1]]);
      const double du = u.at(e.nodes[1], 0) - u.at(e.nodes[0], 0);
      const double dv = u.at(e.nodes[1], 1) - u.at(e.nodes[0], 1);
      const double strain = (du * f.c + dv * f.s) / f.length;
      out.sigma_xx = m.youngs_modulus * strain;
      out.von_mises = std::abs(out.sigma_xx);
      return out;
    }
    case ElementType::Tri3: {
      auto [b, area] = tri3_b(model, e);
      (void)area;
      const la::DenseMatrix d = plane_stress_d(m);
      const auto ue = element_displacements(model, e, u);
      const auto strain = b.multiply(ue);
      const auto sigma = d.multiply(strain);
      out.sigma_xx = sigma[0];
      out.sigma_yy = sigma[1];
      out.tau_xy = sigma[2];
      out.von_mises = von_mises_plane(sigma[0], sigma[1], sigma[2]);
      return out;
    }
    case ElementType::Quad4: {
      auto [b, det] = quad4_b(model, e, 0.0, 0.0);  // centroid
      (void)det;
      const la::DenseMatrix d = plane_stress_d(m);
      const auto ue = element_displacements(model, e, u);
      const auto strain = b.multiply(ue);
      const auto sigma = d.multiply(strain);
      out.sigma_xx = sigma[0];
      out.sigma_yy = sigma[1];
      out.tau_xy = sigma[2];
      out.von_mises = von_mises_plane(sigma[0], sigma[1], sigma[2]);
      return out;
    }
  }
  FEM2_UNREACHABLE("bad ElementType");
}

}  // namespace fem2::fem
