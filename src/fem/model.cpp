#include "fem/model.hpp"

#include <cmath>

namespace fem2::fem {

std::string_view element_type_name(ElementType t) {
  switch (t) {
    case ElementType::Bar2: return "bar2";
    case ElementType::Beam2: return "beam2";
    case ElementType::Tri3: return "tri3";
    case ElementType::Quad4: return "quad4";
  }
  FEM2_UNREACHABLE("bad ElementType");
}

std::size_t element_node_count(ElementType t) {
  switch (t) {
    case ElementType::Bar2:
    case ElementType::Beam2:
      return 2;
    case ElementType::Tri3:
      return 3;
    case ElementType::Quad4:
      return 4;
  }
  FEM2_UNREACHABLE("bad ElementType");
}

std::size_t element_dofs_per_node(ElementType t) {
  return t == ElementType::Beam2 ? 3 : 2;
}

std::size_t StructureModel::add_node(double x, double y) {
  nodes.push_back({x, y});
  return nodes.size() - 1;
}

std::size_t StructureModel::add_material(Material material) {
  materials.push_back(std::move(material));
  return materials.size() - 1;
}

std::size_t StructureModel::add_element(
    ElementType type, std::initializer_list<std::size_t> element_nodes,
    std::size_t material) {
  FEM2_CHECK_MSG(element_nodes.size() == element_node_count(type),
                 "wrong node count for element type");
  Element e;
  e.type = type;
  e.material = material;
  std::size_t i = 0;
  for (const std::size_t n : element_nodes) e.nodes[i++] = n;
  elements.push_back(e);
  return elements.size() - 1;
}

void StructureModel::fix_node(std::size_t node) {
  for (std::size_t dof = 0; dof < dofs_per_node(); ++dof)
    add_constraint(node, dof, 0.0);
}

void StructureModel::add_constraint(std::size_t node, std::size_t dof,
                                    double value) {
  constraints.push_back({node, dof, value});
}

LoadSet& StructureModel::load_set(const std::string& set_name) {
  auto [it, inserted] = load_sets.try_emplace(set_name);
  if (inserted) it->second.name = set_name;
  return it->second;
}

void StructureModel::add_load(const std::string& set, std::size_t node,
                              std::size_t dof, double value) {
  load_set(set).loads.push_back({node, dof, value});
}

std::size_t StructureModel::dofs_per_node() const {
  for (const auto& e : elements)
    if (e.type == ElementType::Beam2) return 3;
  return 2;
}

void StructureModel::validate() const {
  if (nodes.empty()) throw support::Error("model has no nodes");
  if (elements.empty()) throw support::Error("model has no elements");
  if (materials.empty()) throw support::Error("model has no materials");

  const std::size_t ndof = dofs_per_node();
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const auto& e = elements[i];
    if (e.material >= materials.size()) {
      throw support::Error("element " + std::to_string(i) +
                           " references missing material");
    }
    for (std::size_t k = 0; k < e.node_count(); ++k) {
      if (e.nodes[k] >= nodes.size()) {
        throw support::Error("element " + std::to_string(i) +
                             " references missing node");
      }
      for (std::size_t j = k + 1; j < e.node_count(); ++j) {
        if (e.nodes[k] == e.nodes[j]) {
          throw support::Error("element " + std::to_string(i) +
                               " has repeated nodes");
        }
      }
    }
    // Two-node elements must have nonzero length.
    if (e.node_count() == 2) {
      const auto& a = nodes[e.nodes[0]];
      const auto& b = nodes[e.nodes[1]];
      const double len = std::hypot(b.x - a.x, b.y - a.y);
      if (len <= 0.0) {
        throw support::Error("element " + std::to_string(i) +
                             " has zero length");
      }
    }
  }
  for (const auto& c : constraints) {
    if (c.node >= nodes.size() || c.dof >= ndof) {
      throw support::Error("constraint references missing node or dof");
    }
  }
  for (const auto& [set_name, set] : load_sets) {
    for (const auto& load : set.loads) {
      if (load.node >= nodes.size() || load.dof >= ndof) {
        throw support::Error("load set '" + set_name +
                             "' references missing node or dof");
      }
    }
  }
}

std::size_t StructureModel::storage_bytes() const {
  std::size_t bytes = nodes.size() * sizeof(Node) +
                      elements.size() * sizeof(Element) +
                      materials.size() * sizeof(Material) +
                      constraints.size() * sizeof(Constraint);
  for (const auto& [set_name, set] : load_sets)
    bytes += set_name.size() + set.loads.size() * sizeof(PointLoad);
  return bytes;
}

}  // namespace fem2::fem
