#include "fem/stress.hpp"

#include "fem/element.hpp"

namespace fem2::fem {

std::vector<ElementStress> compute_stresses(const StructureModel& model,
                                            const Displacements& u) {
  std::vector<ElementStress> out;
  out.reserve(model.elements.size());
  for (std::size_t i = 0; i < model.elements.size(); ++i)
    out.push_back(element_stress(model, i, u));
  return out;
}

ElementStress peak_stress(const std::vector<ElementStress>& stresses) {
  FEM2_CHECK_MSG(!stresses.empty(), "no stresses computed");
  const ElementStress* best = &stresses.front();
  for (const auto& s : stresses)
    if (s.von_mises > best->von_mises) best = &s;
  return *best;
}

std::uint64_t stress_flops(const StructureModel& model) {
  std::uint64_t flops = 0;
  for (const auto& element : model.elements) {
    const std::size_t n =
        element.node_count() * element_dofs_per_node(element.type);
    flops += 2 * 3 * n + 20;  // sigma = D B u_e plus invariants
  }
  return flops;
}

}  // namespace fem2::fem
