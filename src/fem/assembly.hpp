// Global system assembly: dof numbering, element merge, constraint
// elimination, and load-set vectors.
//
// Assembly is split symbolic/numeric (MiniFE-style): build_assembly_plan
// walks the mesh once to produce the reduced sparsity pattern and flat
// per-element scatter maps; assemble_numeric then fills values through
// the plan with no searching or reallocation.  Re-assembling on the same
// mesh (load stepping, material updates) reuses the plan.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fem/model.hpp"
#include "la/sparse.hpp"

namespace fem2::fem {

/// Mapping between the full nodal dof space and the reduced (free) space
/// after single-point constraints are eliminated.
struct DofMap {
  std::size_t dofs_per_node = 2;
  std::size_t full_dofs = 0;
  std::size_t free_dofs = 0;
  std::vector<std::ptrdiff_t> full_to_reduced;  ///< -1 for constrained dofs
  std::vector<std::size_t> reduced_to_full;
  std::vector<double> prescribed;  ///< full-length prescribed values

  std::size_t full_index(std::size_t node, std::size_t dof) const {
    return node * dofs_per_node + dof;
  }
  bool is_free(std::size_t full) const {
    return full_to_reduced[full] >= 0;
  }
};

/// Builds the full↔reduced dof mapping.  Duplicate constraints on the
/// same (node, dof) are deduplicated; duplicates that prescribe
/// *different* values throw support::Error (a silently-last-wins merge
/// used to let one of two conflicting scenes win by file order).
DofMap build_dof_map(const StructureModel& model);

/// Reduced stiffness system K_ff plus the K_fc·u_c correction needed when
/// constraints prescribe nonzero values.
struct AssembledSystem {
  DofMap dofs;
  la::CsrMatrix stiffness;              ///< free × free
  std::vector<double> rhs_correction;   ///< subtracted from every load vector

  /// Reduced right-hand side for a load set.
  std::vector<double> load_vector(const LoadSet& loads) const;

  /// Expand a reduced solution into full nodal displacements (prescribed
  /// dofs take their constraint values).
  Displacements expand(std::span<const double> reduced) const;
};

/// Symbolic half of assembly: reduced sparsity pattern from element
/// connectivity (structural nonzeros; exact numeric zeros are kept so the
/// pattern is value-independent).
std::shared_ptr<const la::SparsityPattern> build_sparsity_pattern(
    const StructureModel& model, const DofMap& dofs);

/// Precomputed scatter maps: where each element-matrix entry lands in the
/// CSR value array (or, for constrained columns, which rhs row it corrects
/// and with what prescribed value).
struct AssemblyPlan {
  DofMap dofs;
  std::shared_ptr<const la::SparsityPattern> pattern;

  struct MatrixScatter {
    std::uint32_t local;  ///< r * n + c into the element matrix (row-major)
    std::size_t offset;   ///< destination in the CSR value array
  };
  struct RhsScatter {
    std::uint32_t local;
    std::size_t row;      ///< reduced rhs row
    double coeff;         ///< prescribed value u_c of the constrained column
  };
  std::vector<std::size_t> matrix_begin;  ///< per element, size elements + 1
  std::vector<MatrixScatter> matrix;
  std::vector<std::size_t> rhs_begin;     ///< per element, size elements + 1
  std::vector<RhsScatter> rhs;
};

AssemblyPlan build_assembly_plan(const StructureModel& model);

/// Numeric half: element stiffnesses scattered through the plan.  The
/// result shares the plan's pattern (no index copies).
AssembledSystem assemble_numeric(const StructureModel& model,
                                 const AssemblyPlan& plan);

/// One-shot assembly: symbolic plan + numeric fill.
AssembledSystem assemble(const StructureModel& model);

/// Assembly cost model used by the simulated parallel pipeline: floating
/// point work to form and merge all element matrices.
std::uint64_t assembly_flops(const StructureModel& model);

}  // namespace fem2::fem
