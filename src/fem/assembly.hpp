// Global system assembly: dof numbering, element merge, constraint
// elimination, and load-set vectors.
#pragma once

#include <span>
#include <vector>

#include "fem/model.hpp"
#include "la/sparse.hpp"

namespace fem2::fem {

/// Mapping between the full nodal dof space and the reduced (free) space
/// after single-point constraints are eliminated.
struct DofMap {
  std::size_t dofs_per_node = 2;
  std::size_t full_dofs = 0;
  std::size_t free_dofs = 0;
  std::vector<std::ptrdiff_t> full_to_reduced;  ///< -1 for constrained dofs
  std::vector<std::size_t> reduced_to_full;
  std::vector<double> prescribed;  ///< full-length prescribed values

  std::size_t full_index(std::size_t node, std::size_t dof) const {
    return node * dofs_per_node + dof;
  }
  bool is_free(std::size_t full) const {
    return full_to_reduced[full] >= 0;
  }
};

DofMap build_dof_map(const StructureModel& model);

/// Reduced stiffness system K_ff plus the K_fc·u_c correction needed when
/// constraints prescribe nonzero values.
struct AssembledSystem {
  DofMap dofs;
  la::CsrMatrix stiffness;              ///< free × free
  std::vector<double> rhs_correction;   ///< subtracted from every load vector

  /// Reduced right-hand side for a load set.
  std::vector<double> load_vector(const LoadSet& loads) const;

  /// Expand a reduced solution into full nodal displacements (prescribed
  /// dofs take their constraint values).
  Displacements expand(std::span<const double> reduced) const;
};

AssembledSystem assemble(const StructureModel& model);

/// Assembly cost model used by the simulated parallel pipeline: floating
/// point work to form and merge all element matrices.
std::uint64_t assembly_flops(const StructureModel& model);

}  // namespace fem2::fem
