// Element stiffness matrices and stress recovery kernels.
#pragma once

#include <span>

#include "fem/model.hpp"
#include "la/dense.hpp"

namespace fem2::fem {

/// Element stiffness in global coordinates.  Size is
/// node_count * element_dofs_per_node(type); the assembly layer maps entries
/// into the model-wide dof numbering.
la::DenseMatrix element_stiffness(const StructureModel& model,
                                  const Element& element);

/// Plane-stress constitutive matrix D (3×3) for a material.
la::DenseMatrix plane_stress_d(const Material& material);

/// Recover the stress of one element from its global displacement vector
/// (ordered per the model's dofs_per_node numbering).
ElementStress element_stress(const StructureModel& model,
                             std::size_t element_index,
                             const Displacements& displacements);

/// von Mises equivalent stress for a plane-stress state.
double von_mises_plane(double sxx, double syy, double txy);

/// Area of a Tri3 element (signed; positive for counter-clockwise nodes).
double triangle_area(const Node& a, const Node& b, const Node& c);

}  // namespace fem2::fem
