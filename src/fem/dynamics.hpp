// Structural dynamics: mass matrices, natural frequencies/mode shapes, and
// Newmark-β transient response — the vibration side of the structural
// engineer's application package.
#pragma once

#include <functional>

#include "fem/assembly.hpp"
#include "fem/model.hpp"
#include "la/eigen.hpp"

namespace fem2::fem {

/// Lumped (diagonal) mass matrix in the reduced dof space: element mass
/// split equally over its nodes; rotational dofs of beams get the
/// rotary inertia of the tributary segment.
la::CsrMatrix lumped_mass_matrix(const StructureModel& model,
                                 const DofMap& dofs);

/// Total translational mass of the model (sanity checks / tests).
double total_mass(const StructureModel& model);

struct Mode {
  double omega = 0.0;      ///< natural circular frequency [rad/s]
  double frequency = 0.0;  ///< f = ω / 2π [Hz]
  Displacements shape;     ///< M-normalized, expanded to full dofs
};

struct ModalResult {
  std::vector<Mode> modes;  ///< ascending frequency
  bool converged = false;
  std::size_t iterations = 0;
};

/// Lowest natural frequencies and mode shapes of the constrained model.
ModalResult modal_analysis(const StructureModel& model,
                           std::size_t mode_count = 4,
                           const la::EigenOptions& options = {});

struct NewmarkOptions {
  double dt = 1e-3;
  std::size_t steps = 1000;
  double beta = 0.25;    ///< average-acceleration (unconditionally stable)
  double gamma = 0.5;
  /// Mass-proportional (Rayleigh) damping C = alpha_m M.
  double alpha_m = 0.0;
};

struct TransientSample {
  double time = 0.0;
  std::vector<double> displacement;  ///< reduced dofs
};

struct TransientResult {
  std::vector<TransientSample> samples;  ///< one per step (plus t = 0)
  double peak_abs_displacement = 0.0;
};

/// Newmark-β integration of M ü + C u̇ + K u = f(t) from rest, with the
/// force given per reduced dof as a function of time.
TransientResult newmark_transient(
    const StructureModel& model,
    const std::function<std::vector<double>(double time)>& force,
    const NewmarkOptions& options = {});

}  // namespace fem2::fem
