#include "fem/solver.hpp"

#include <algorithm>
#include <memory>

#include "la/skyline.hpp"
#include "navm/parops.hpp"

namespace fem2::fem {

std::string_view solver_kind_name(SolverKind k) {
  switch (k) {
    case SolverKind::SkylineDirect: return "skyline-cholesky";
    case SolverKind::DenseCholesky: return "dense-cholesky";
    case SolverKind::ConjugateGradient: return "cg";
    case SolverKind::PreconditionedCg: return "pcg-jacobi";
    case SolverKind::TwoLevelCg: return "pcg-two-level";
    case SolverKind::GaussSeidel: return "gauss-seidel";
    case SolverKind::Sor: return "sor";
    case SolverKind::Jacobi: return "jacobi";
  }
  FEM2_UNREACHABLE("bad SolverKind");
}

StaticSolution solve_reduced(const AssembledSystem& system,
                             std::span<const double> rhs,
                             const SolverOptions& options) {
  const la::CsrMatrix& k = system.stiffness;
  FEM2_CHECK(rhs.size() == k.rows());

  StaticSolution out;
  out.stats.method = std::string(solver_kind_name(options.kind));
  out.stats.matrix_storage_bytes = k.storage_bytes();

  la::SolveOptions iter;
  iter.tolerance = options.tolerance;
  iter.max_iterations = options.max_iterations;
  iter.sor_omega = options.sor_omega;

  std::vector<double> reduced;
  switch (options.kind) {
    case SolverKind::SkylineDirect: {
      la::SkylineMatrix sky = la::SkylineMatrix::from_csr(k);
      out.stats.matrix_storage_bytes = sky.storage_bytes();
      sky.factorize();
      reduced = sky.solve(rhs);
      out.stats.residual = la::relative_residual(k, reduced, rhs);
      break;
    }
    case SolverKind::DenseCholesky: {
      const la::DenseMatrix dense = k.to_dense();
      out.stats.matrix_storage_bytes =
          dense.rows() * dense.cols() * sizeof(double);
      la::CholeskyFactorization chol(dense);
      reduced = chol.solve(rhs);
      out.stats.residual = la::relative_residual(k, reduced, rhs);
      break;
    }
    case SolverKind::ConjugateGradient:
    case SolverKind::PreconditionedCg:
    case SolverKind::TwoLevelCg: {
      iter.jacobi_preconditioner =
          options.kind == SolverKind::PreconditionedCg;
      std::unique_ptr<la::TwoLevelPreconditioner> two_level;
      if (options.kind == SolverKind::TwoLevelCg) {
        la::TwoLevelOptions tl = options.two_level;
        if (tl.aggregate_of.empty()) {
          // Mesh-aware aggregation: contiguous node blocks with one
          // aggregate per displacement component, so the coarse space
          // spans per-block translations in every direction.  Mixing
          // components in one aggregate (plain index blocks) cancels
          // opposite-signed x/y residuals and weakens the coarse solve.
          const std::size_t ndof = system.dofs.dofs_per_node;
          const std::size_t nodes = system.dofs.full_dofs / ndof;
          const std::size_t blocks = std::max<std::size_t>(
              1, tl.coarse_dofs / std::max<std::size_t>(1, ndof));
          const std::size_t block_nodes = (nodes + blocks - 1) / blocks;
          tl.aggregate_of.resize(k.rows());
          for (std::size_t r = 0; r < k.rows(); ++r) {
            const std::size_t full = system.dofs.reduced_to_full[r];
            tl.aggregate_of[r] =
                (full / ndof / block_nodes) * ndof + full % ndof;
          }
        }
        two_level = std::make_unique<la::TwoLevelPreconditioner>(k, tl);
        iter.preconditioner = two_level.get();
      }
      auto result = la::conjugate_gradient(k, rhs, iter);
      reduced = std::move(result.x);
      out.stats.converged = result.report.converged;
      out.stats.iterations = result.report.iterations;
      out.stats.residual = result.report.residual_norm;
      break;
    }
    case SolverKind::GaussSeidel:
    case SolverKind::Sor: {
      if (options.kind == SolverKind::GaussSeidel) iter.sor_omega = 1.0;
      auto result = la::sor(k, rhs, iter);
      reduced = std::move(result.x);
      out.stats.converged = result.report.converged;
      out.stats.iterations = result.report.iterations;
      out.stats.residual = result.report.residual_norm;
      break;
    }
    case SolverKind::Jacobi: {
      auto result = la::jacobi(k, rhs, iter);
      reduced = std::move(result.x);
      out.stats.converged = result.report.converged;
      out.stats.iterations = result.report.iterations;
      out.stats.residual = result.report.residual_norm;
      break;
    }
  }

  out.displacements = system.expand(reduced);
  return out;
}

StaticSolution solve_static(const StructureModel& model,
                            const std::string& load_set,
                            const SolverOptions& options) {
  const auto it = model.load_sets.find(load_set);
  if (it == model.load_sets.end())
    throw support::Error("unknown load set: " + load_set);
  const AssembledSystem system = assemble(model);
  const auto rhs = system.load_vector(it->second);
  return solve_reduced(system, rhs, options);
}

std::map<std::string, StaticSolution> solve_static_all_load_sets(
    const StructureModel& model, const SolverOptions& options) {
  if (model.load_sets.empty())
    throw support::Error("model has no load sets");
  const AssembledSystem system = assemble(model);
  std::map<std::string, StaticSolution> out;

  if (options.kind == SolverKind::SkylineDirect) {
    // Factor once, back-substitute per load set.
    la::SkylineMatrix sky = la::SkylineMatrix::from_csr(system.stiffness);
    sky.factorize();
    for (const auto& [name, loads] : model.load_sets) {
      const auto rhs = system.load_vector(loads);
      StaticSolution solution;
      solution.stats.method = "skyline-cholesky (shared factorization)";
      solution.stats.matrix_storage_bytes = sky.storage_bytes();
      const auto reduced = sky.solve(rhs);
      solution.stats.residual =
          la::relative_residual(system.stiffness, reduced, rhs);
      solution.displacements = system.expand(reduced);
      out.emplace(name, std::move(solution));
    }
    return out;
  }
  if (options.kind == SolverKind::DenseCholesky) {
    la::CholeskyFactorization chol(system.stiffness.to_dense());
    for (const auto& [name, loads] : model.load_sets) {
      const auto rhs = system.load_vector(loads);
      StaticSolution solution;
      solution.stats.method = "dense-cholesky (shared factorization)";
      const auto reduced = chol.solve(rhs);
      solution.stats.residual =
          la::relative_residual(system.stiffness, reduced, rhs);
      solution.displacements = system.expand(reduced);
      out.emplace(name, std::move(solution));
    }
    return out;
  }
  // Iterative methods re-solve per load set (assembly still shared).
  for (const auto& [name, loads] : model.load_sets) {
    const auto rhs = system.load_vector(loads);
    out.emplace(name, solve_reduced(system, rhs, options));
  }
  return out;
}

StaticSolution solve_static_parallel(const StructureModel& model,
                                     const std::string& load_set,
                                     navm::Runtime& runtime,
                                     const ParallelSolveOptions& options) {
  const auto it = model.load_sets.find(load_set);
  if (it == model.load_sets.end())
    throw support::Error("unknown load set: " + load_set);

  const AssembledSystem system = assemble(model);

  navm::CgProblem problem;
  problem.a = system.stiffness;
  problem.b = system.load_vector(it->second);
  problem.workers = options.workers;
  problem.tolerance = options.tolerance;
  problem.max_iterations = options.max_iterations;
  problem.jacobi_preconditioner = options.jacobi_preconditioner;

  const auto task = runtime.launch(navm::kCgDriverTask,
                                   navm::make_cg_problem(std::move(problem)));
  runtime.run();
  FEM2_CHECK_MSG(runtime.os().task_finished(task),
                 "parallel solve did not complete");
  const auto& result = navm::as_cg_result(runtime.result(task));

  StaticSolution out;
  out.displacements = system.expand(result.x);
  out.stats.method = options.jacobi_preconditioner
                         ? "fem2-distributed-pcg-jacobi"
                         : "fem2-distributed-cg";
  out.stats.converged = result.converged;
  out.stats.iterations = result.iterations;
  out.stats.residual = result.residual;
  out.stats.matrix_storage_bytes = system.stiffness.storage_bytes();
  return out;
}

}  // namespace fem2::fem
