// Substructure analysis by static condensation — the second of the paper's
// three parallelism levels: "parallelism in the substructure analysis of a
// larger structure".
//
// The model's elements are partitioned into substructures; each
// substructure eliminates its interior dofs (a dense Schur complement),
// the condensed interface system is solved, and interiors are recovered by
// back-substitution.  The parallel variant runs each condensation and
// back-substitution as a FEM-2 task; interiors never leave their task
// ("all data owned by a single task"), only Schur complements and interface
// displacements travel.
#pragma once

#include <vector>

#include "fem/assembly.hpp"
#include "fem/model.hpp"
#include "fem/solver.hpp"
#include "la/dense.hpp"
#include "navm/runtime.hpp"

namespace fem2::fem {

struct SubstructurePartition {
  /// Element indices per substructure; every element in exactly one group.
  std::vector<std::vector<std::size_t>> element_groups;

  std::size_t count() const { return element_groups.size(); }
};

/// Partition elements into `count` vertical bands by element centroid x.
SubstructurePartition partition_by_x(const StructureModel& model,
                                     std::size_t count);

/// Per-substructure condensation input (also the payload shipped to the
/// parallel workers).
struct SubstructureData {
  la::DenseMatrix k_ii;  ///< interior × interior
  la::DenseMatrix k_ib;  ///< interior × local boundary
  la::DenseMatrix k_bb;  ///< local boundary × local boundary
  std::vector<double> f_i;
  std::vector<std::size_t> boundary_global;  ///< local boundary → interface idx
  std::vector<std::size_t> interior_global;  ///< local interior → reduced dof

  std::size_t payload_bytes() const;
};

struct SubstructureProblem {
  std::vector<SubstructureData> subs;
  std::vector<double> interface_rhs;  ///< loads at interface dofs
  std::vector<std::size_t> interface_to_reduced;

  std::size_t interface_dofs() const { return interface_to_reduced.size(); }
};

/// Build the condensation problem from an assembled system and a reduced
/// right-hand side.
SubstructureProblem prepare_substructures(const StructureModel& model,
                                          const AssembledSystem& system,
                                          std::span<const double> rhs,
                                          const SubstructurePartition& partition);

struct SubstructureStats {
  std::size_t substructures = 0;
  std::size_t interface_dofs = 0;
  double residual = 0.0;  ///< relative residual of the recomposed solution
};

/// Sequential condensation solve (reference implementation).
StaticSolution solve_substructured(const StructureModel& model,
                                   const std::string& load_set,
                                   const SubstructurePartition& partition,
                                   SubstructureStats* stats = nullptr);

/// Register the fem.sub.* task types on a runtime (call once).
void register_substructure_tasks(navm::Runtime& runtime);

/// Parallel condensation on the simulated FEM-2 machine: one task per
/// substructure, interface solve in the driver task.
StaticSolution solve_substructured_parallel(
    const StructureModel& model, const std::string& load_set,
    const SubstructurePartition& partition, navm::Runtime& runtime,
    SubstructureStats* stats = nullptr);

/// Task-type names registered by register_substructure_tasks.
inline constexpr const char* kSubDriverTask = "fem.sub.driver";
inline constexpr const char* kSubWorkerTask = "fem.sub.worker";

}  // namespace fem2::fem
