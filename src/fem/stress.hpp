// Stress recovery — the application user's "calculate stresses" operation.
#pragma once

#include <vector>

#include "fem/model.hpp"

namespace fem2::fem {

/// Stresses for every element of the model.
std::vector<ElementStress> compute_stresses(const StructureModel& model,
                                            const Displacements& u);

/// Largest von Mises stress and the element carrying it.
ElementStress peak_stress(const std::vector<ElementStress>& stresses);

/// Floating-point cost model for stress recovery (simulated pipeline).
std::uint64_t stress_flops(const StructureModel& model);

}  // namespace fem2::fem
