#include "fem/assembly.hpp"

#include <sstream>
#include <utility>

#include "fem/element.hpp"

namespace fem2::fem {

DofMap build_dof_map(const StructureModel& model) {
  DofMap map;
  map.dofs_per_node = model.dofs_per_node();
  map.full_dofs = model.total_dofs();
  map.full_to_reduced.assign(map.full_dofs, 0);
  map.prescribed.assign(map.full_dofs, 0.0);

  std::vector<bool> constrained(map.full_dofs, false);
  for (const auto& c : model.constraints) {
    const std::size_t idx = map.full_index(c.node, c.dof);
    if (constrained[idx] && map.prescribed[idx] != c.value) {
      std::ostringstream os;
      os << "conflicting constraints on node " << c.node << " dof " << c.dof
         << ": " << map.prescribed[idx] << " vs " << c.value;
      throw support::Error(os.str());
    }
    constrained[idx] = true;
    map.prescribed[idx] = c.value;
  }

  map.reduced_to_full.reserve(map.full_dofs);
  for (std::size_t i = 0; i < map.full_dofs; ++i) {
    if (constrained[i]) {
      map.full_to_reduced[i] = -1;
    } else {
      map.full_to_reduced[i] =
          static_cast<std::ptrdiff_t>(map.reduced_to_full.size());
      map.reduced_to_full.push_back(i);
    }
  }
  map.free_dofs = map.reduced_to_full.size();
  return map;
}

namespace {

/// Global full-dof indices of one element's local dofs.
void element_global_dofs(const Element& element, const DofMap& map,
                         std::vector<std::size_t>& global) {
  const std::size_t edof = element_dofs_per_node(element.type);
  global.resize(element.node_count() * edof);
  for (std::size_t i = 0; i < element.node_count(); ++i)
    for (std::size_t d = 0; d < edof; ++d)
      global[i * edof + d] = map.full_index(element.nodes[i], d);
}

}  // namespace

std::shared_ptr<const la::SparsityPattern> build_sparsity_pattern(
    const StructureModel& model, const DofMap& dofs) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> global;
  for (const auto& element : model.elements) {
    element_global_dofs(element, dofs, global);
    for (const std::size_t gr : global) {
      const std::ptrdiff_t rr = dofs.full_to_reduced[gr];
      if (rr < 0) continue;
      for (const std::size_t gc : global) {
        const std::ptrdiff_t rc = dofs.full_to_reduced[gc];
        if (rc >= 0)
          pairs.emplace_back(static_cast<std::size_t>(rr),
                             static_cast<std::size_t>(rc));
      }
    }
  }
  return std::make_shared<la::SparsityPattern>(la::SparsityPattern::from_pairs(
      dofs.free_dofs, dofs.free_dofs, std::move(pairs)));
}

AssemblyPlan build_assembly_plan(const StructureModel& model) {
  model.validate();
  AssemblyPlan plan;
  plan.dofs = build_dof_map(model);
  FEM2_CHECK_MSG(plan.dofs.free_dofs > 0, "model is fully constrained");
  plan.pattern = build_sparsity_pattern(model, plan.dofs);

  const DofMap& map = plan.dofs;
  plan.matrix_begin.reserve(model.elements.size() + 1);
  plan.rhs_begin.reserve(model.elements.size() + 1);
  std::vector<std::size_t> global;
  for (const auto& element : model.elements) {
    plan.matrix_begin.push_back(plan.matrix.size());
    plan.rhs_begin.push_back(plan.rhs.size());
    element_global_dofs(element, map, global);
    const std::size_t n = global.size();
    for (std::size_t r = 0; r < n; ++r) {
      const std::ptrdiff_t rr = map.full_to_reduced[global[r]];
      if (rr < 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        const auto local = static_cast<std::uint32_t>(r * n + c);
        const std::ptrdiff_t rc = map.full_to_reduced[global[c]];
        if (rc >= 0) {
          const std::size_t offset = plan.pattern->find(
              static_cast<std::size_t>(rr), static_cast<std::size_t>(rc));
          FEM2_CHECK(offset != la::SparsityPattern::npos);
          plan.matrix.push_back({local, offset});
        } else {
          // Constrained column: moves to the right-hand side.
          const double uc = map.prescribed[global[c]];
          if (uc != 0.0)
            plan.rhs.push_back({local, static_cast<std::size_t>(rr), uc});
        }
      }
    }
  }
  plan.matrix_begin.push_back(plan.matrix.size());
  plan.rhs_begin.push_back(plan.rhs.size());
  return plan;
}

AssembledSystem assemble_numeric(const StructureModel& model,
                                 const AssemblyPlan& plan) {
  FEM2_CHECK(plan.matrix_begin.size() == model.elements.size() + 1);
  AssembledSystem system;
  system.dofs = plan.dofs;
  system.rhs_correction.assign(plan.dofs.free_dofs, 0.0);

  std::vector<double> values(plan.pattern->nonzeros(), 0.0);
  for (std::size_t e = 0; e < model.elements.size(); ++e) {
    const la::DenseMatrix k = element_stiffness(model, model.elements[e]);
    const std::span<const double> kd = k.data();
    for (std::size_t s = plan.matrix_begin[e]; s < plan.matrix_begin[e + 1];
         ++s) {
      const auto& scatter = plan.matrix[s];
      values[scatter.offset] += kd[scatter.local];
    }
    for (std::size_t s = plan.rhs_begin[e]; s < plan.rhs_begin[e + 1]; ++s) {
      const auto& scatter = plan.rhs[s];
      system.rhs_correction[scatter.row] += kd[scatter.local] * scatter.coeff;
    }
  }
  system.stiffness = la::CsrMatrix(plan.pattern, std::move(values));
  return system;
}

AssembledSystem assemble(const StructureModel& model) {
  return assemble_numeric(model, build_assembly_plan(model));
}

std::vector<double> AssembledSystem::load_vector(const LoadSet& loads) const {
  std::vector<double> f(dofs.free_dofs, 0.0);
  for (const auto& load : loads.loads) {
    const std::size_t full = dofs.full_index(load.node, load.dof);
    const std::ptrdiff_t reduced = dofs.full_to_reduced[full];
    if (reduced >= 0) f[static_cast<std::size_t>(reduced)] += load.value;
  }
  for (std::size_t i = 0; i < f.size(); ++i) f[i] -= rhs_correction[i];
  return f;
}

Displacements AssembledSystem::expand(std::span<const double> reduced) const {
  FEM2_CHECK(reduced.size() == dofs.free_dofs);
  Displacements out;
  out.dofs_per_node = dofs.dofs_per_node;
  out.values = dofs.prescribed;  // constrained dofs take prescribed values
  for (std::size_t i = 0; i < reduced.size(); ++i)
    out.values[dofs.reduced_to_full[i]] = reduced[i];
  return out;
}

std::uint64_t assembly_flops(const StructureModel& model) {
  std::uint64_t flops = 0;
  for (const auto& element : model.elements) {
    const std::size_t n =
        element.node_count() * element_dofs_per_node(element.type);
    // Forming B'DB-style products plus the merge: ~3 n^3 + n^2.
    flops += 3 * n * n * n + n * n;
  }
  return flops;
}

}  // namespace fem2::fem
