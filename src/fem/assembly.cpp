#include "fem/assembly.hpp"

#include "fem/element.hpp"

namespace fem2::fem {

DofMap build_dof_map(const StructureModel& model) {
  DofMap map;
  map.dofs_per_node = model.dofs_per_node();
  map.full_dofs = model.total_dofs();
  map.full_to_reduced.assign(map.full_dofs, 0);
  map.prescribed.assign(map.full_dofs, 0.0);

  std::vector<bool> constrained(map.full_dofs, false);
  for (const auto& c : model.constraints) {
    const std::size_t idx = map.full_index(c.node, c.dof);
    constrained[idx] = true;
    map.prescribed[idx] = c.value;
  }

  map.reduced_to_full.reserve(map.full_dofs);
  for (std::size_t i = 0; i < map.full_dofs; ++i) {
    if (constrained[i]) {
      map.full_to_reduced[i] = -1;
    } else {
      map.full_to_reduced[i] =
          static_cast<std::ptrdiff_t>(map.reduced_to_full.size());
      map.reduced_to_full.push_back(i);
    }
  }
  map.free_dofs = map.reduced_to_full.size();
  return map;
}

AssembledSystem assemble(const StructureModel& model) {
  model.validate();
  AssembledSystem system;
  system.dofs = build_dof_map(model);
  const DofMap& map = system.dofs;
  FEM2_CHECK_MSG(map.free_dofs > 0, "model is fully constrained");

  la::TripletBuilder builder(map.free_dofs, map.free_dofs);
  system.rhs_correction.assign(map.free_dofs, 0.0);

  std::vector<std::size_t> global(12);
  for (const auto& element : model.elements) {
    const la::DenseMatrix k = element_stiffness(model, element);
    const std::size_t edof = element_dofs_per_node(element.type);
    const std::size_t n = element.node_count() * edof;
    global.resize(n);
    for (std::size_t i = 0; i < element.node_count(); ++i)
      for (std::size_t d = 0; d < edof; ++d)
        global[i * edof + d] = map.full_index(element.nodes[i], d);

    for (std::size_t r = 0; r < n; ++r) {
      const std::ptrdiff_t rr = map.full_to_reduced[global[r]];
      if (rr < 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        const std::ptrdiff_t rc = map.full_to_reduced[global[c]];
        if (rc >= 0) {
          builder.add(static_cast<std::size_t>(rr),
                      static_cast<std::size_t>(rc), k(r, c));
        } else {
          // Constrained column: moves to the right-hand side.
          const double uc = map.prescribed[global[c]];
          if (uc != 0.0)
            system.rhs_correction[static_cast<std::size_t>(rr)] += k(r, c) * uc;
        }
      }
    }
  }
  system.stiffness = builder.build();
  return system;
}

std::vector<double> AssembledSystem::load_vector(const LoadSet& loads) const {
  std::vector<double> f(dofs.free_dofs, 0.0);
  for (const auto& load : loads.loads) {
    const std::size_t full = dofs.full_index(load.node, load.dof);
    const std::ptrdiff_t reduced = dofs.full_to_reduced[full];
    if (reduced >= 0) f[static_cast<std::size_t>(reduced)] += load.value;
  }
  for (std::size_t i = 0; i < f.size(); ++i) f[i] -= rhs_correction[i];
  return f;
}

Displacements AssembledSystem::expand(std::span<const double> reduced) const {
  FEM2_CHECK(reduced.size() == dofs.free_dofs);
  Displacements out;
  out.dofs_per_node = dofs.dofs_per_node;
  out.values = dofs.prescribed;  // constrained dofs take prescribed values
  for (std::size_t i = 0; i < reduced.size(); ++i)
    out.values[dofs.reduced_to_full[i]] = reduced[i];
  return out;
}

std::uint64_t assembly_flops(const StructureModel& model) {
  std::uint64_t flops = 0;
  for (const auto& element : model.elements) {
    const std::size_t n =
        element.node_count() * element_dofs_per_node(element.type);
    // Forming B'DB-style products plus the merge: ~3 n^3 + n^2.
    flops += 3 * n * n * n + n * n;
  }
  return flops;
}

}  // namespace fem2::fem
