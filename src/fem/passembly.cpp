#include "fem/passembly.hpp"

#include <algorithm>

#include "fem/element.hpp"
#include "navm/parops.hpp"
#include "navm/task.hpp"
#include "navm/value.hpp"

namespace fem2::fem {

namespace {

struct AssembleWorkerParams {
  // The model is shipped whole (node coordinates and materials are needed
  // by every element); element ranges partition the work.
  StructureModel model;
  std::size_t element_begin = 0;
  std::size_t element_end = 0;
};

struct AssembleDriverParams {
  StructureModel model;
  std::uint32_t workers = 1;
};

/// Worker result: raw triplets in *full* dof numbering (the driver applies
/// the constraint elimination so workers stay independent of the DofMap).
/// `element_begin` orders shards in the merge: child results arrive in a
/// timing-dependent order (faults perturb it), and the downstream
/// constraint elimination sums floating-point contributions in merge order.
struct TripletShard {
  std::size_t element_begin = 0;
  std::vector<la::Triplet> triplets;
};

struct AssembledPayload {
  std::vector<la::Triplet> triplets;  ///< full-dof triplets, merged
  std::uint64_t flops = 0;
};

navm::Coro assemble_worker_body(navm::TaskContext& ctx) {
  const auto& p = ctx.params().as<AssembleWorkerParams>();
  const std::size_t ndof = p.model.dofs_per_node();

  TripletShard shard;
  shard.element_begin = p.element_begin;
  std::uint64_t flops = 0;
  for (std::size_t e = p.element_begin; e < p.element_end; ++e) {
    const Element& element = p.model.elements[e];
    const la::DenseMatrix k = element_stiffness(p.model, element);
    const std::size_t edof = element_dofs_per_node(element.type);
    const std::size_t n = element.node_count() * edof;
    flops += 3 * n * n * n + n * n;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t gr =
          element.nodes[r / edof] * ndof + (r % edof);
      for (std::size_t c = 0; c < n; ++c) {
        const double v = k(r, c);
        if (v == 0.0) continue;
        const std::size_t gc =
            element.nodes[c / edof] * ndof + (c % edof);
        shard.triplets.push_back({gr, gc, v});
      }
    }
  }
  ctx.charge_flops(flops);
  ctx.charge_words(shard.triplets.size() * 3);
  const std::size_t bytes = shard.triplets.size() * sizeof(la::Triplet) + 16;
  co_return sysvm::Payload::of(std::move(shard), bytes);
}

navm::Coro assemble_driver_body(navm::TaskContext& ctx) {
  const auto& p = ctx.params().as<AssembleDriverParams>();
  const auto k = static_cast<std::uint32_t>(std::min<std::size_t>(
      p.workers, std::max<std::size_t>(p.model.elements.size(), 1)));

  const auto results = co_await navm::forall(
      ctx, kAssembleWorkerTask, k, [&](std::uint32_t i) {
        AssembleWorkerParams wp;
        wp.model = p.model;
        wp.element_begin = navm::block_begin(p.model.elements.size(), k, i);
        wp.element_end = navm::block_begin(p.model.elements.size(), k, i + 1);
        return sysvm::Payload::of(std::move(wp),
                                  p.model.storage_bytes() + 32);
      });

  // Merge in element order, not child-arrival order, so the assembled
  // triplet stream (and every floating-point sum built from it) is
  // identical however worker terminations interleave.
  std::vector<const TripletShard*> shards;
  shards.reserve(results.size());
  for (const auto& r : results) shards.push_back(&r.as<TripletShard>());
  std::sort(shards.begin(), shards.end(),
            [](const TripletShard* a, const TripletShard* b) {
              return a->element_begin < b->element_begin;
            });
  AssembledPayload merged;
  for (const TripletShard* shard : shards) {
    merged.triplets.insert(merged.triplets.end(), shard->triplets.begin(),
                           shard->triplets.end());
  }
  ctx.charge_words(merged.triplets.size() * 3);  // the merge pass
  const std::size_t bytes =
      merged.triplets.size() * sizeof(la::Triplet) + 32;
  co_return sysvm::Payload::of(std::move(merged), bytes);
}

struct StressWorkerParams {
  StructureModel model;
  Displacements displacements;
  std::size_t element_begin = 0;
  std::size_t element_end = 0;
};

struct StressDriverParams {
  StructureModel model;
  Displacements displacements;
  std::uint32_t workers = 1;
};

struct StressShard {
  std::vector<ElementStress> stresses;
};

navm::Coro stress_worker_body(navm::TaskContext& ctx) {
  const auto& p = ctx.params().as<StressWorkerParams>();
  StressShard shard;
  shard.stresses.reserve(p.element_end - p.element_begin);
  std::uint64_t flops = 0;
  for (std::size_t e = p.element_begin; e < p.element_end; ++e) {
    shard.stresses.push_back(element_stress(p.model, e, p.displacements));
    const Element& element = p.model.elements[e];
    const std::size_t n =
        element.node_count() * element_dofs_per_node(element.type);
    flops += 2 * 3 * n + 20;
  }
  ctx.charge_flops(flops);
  const std::size_t bytes =
      shard.stresses.size() * sizeof(ElementStress) + 16;
  co_return sysvm::Payload::of(std::move(shard), bytes);
}

navm::Coro stress_driver_body(navm::TaskContext& ctx) {
  const auto& p = ctx.params().as<StressDriverParams>();
  const auto k = static_cast<std::uint32_t>(std::min<std::size_t>(
      p.workers, std::max<std::size_t>(p.model.elements.size(), 1)));

  const auto results = co_await navm::forall(
      ctx, kStressWorkerTask, k, [&](std::uint32_t i) {
        StressWorkerParams wp;
        wp.model = p.model;
        wp.displacements = p.displacements;
        wp.element_begin = navm::block_begin(p.model.elements.size(), k, i);
        wp.element_end = navm::block_begin(p.model.elements.size(), k, i + 1);
        const std::size_t bytes =
            p.model.storage_bytes() +
            p.displacements.values.size() * sizeof(double) + 32;
        return sysvm::Payload::of(std::move(wp), bytes);
      });

  // Merge shards back into element order.
  StressShard merged;
  merged.stresses.resize(p.model.elements.size());
  for (const auto& r : results) {
    const auto& shard = r.as<StressShard>();
    for (const auto& s : shard.stresses) merged.stresses[s.element] = s;
  }
  ctx.charge_words(merged.stresses.size());
  const std::size_t bytes =
      merged.stresses.size() * sizeof(ElementStress) + 16;
  co_return sysvm::Payload::of(std::move(merged), bytes);
}

}  // namespace

void register_stress_tasks(navm::Runtime& runtime) {
  runtime.define_task(kStressWorkerTask, stress_worker_body, {1024, 8192});
  runtime.define_task(kStressDriverTask, stress_driver_body, {1024, 8192});
}

std::vector<ElementStress> compute_stresses_parallel(
    const StructureModel& model, const Displacements& u,
    navm::Runtime& runtime, std::uint32_t workers,
    ParallelStressStats* stats) {
  const hw::Cycles start = runtime.os().now();
  StressDriverParams params;
  params.model = model;
  params.displacements = u;
  params.workers = workers;
  const std::size_t bytes =
      model.storage_bytes() + u.values.size() * sizeof(double) + 32;
  const auto task = runtime.launch(
      kStressDriverTask, sysvm::Payload::of(std::move(params), bytes));
  runtime.run();
  FEM2_CHECK_MSG(runtime.os().task_finished(task),
                 "parallel stress recovery did not complete");
  auto stresses = runtime.result(task).as<StressShard>().stresses;
  if (stats != nullptr) {
    stats->workers = workers;
    stats->elapsed = runtime.os().now() - start;
  }
  return stresses;
}

void register_assembly_tasks(navm::Runtime& runtime) {
  runtime.define_task(kAssembleWorkerTask, assemble_worker_body,
                      {1024, 8192});
  runtime.define_task(kAssembleDriverTask, assemble_driver_body,
                      {1024, 8192});
}

AssembledSystem assemble_parallel(const StructureModel& model,
                                  navm::Runtime& runtime,
                                  std::uint32_t workers,
                                  ParallelAssemblyStats* stats) {
  model.validate();
  const hw::Cycles start = runtime.os().now();

  AssembleDriverParams params;
  params.model = model;
  params.workers = workers;
  const auto task = runtime.launch(
      kAssembleDriverTask,
      sysvm::Payload::of(std::move(params), model.storage_bytes() + 32));
  runtime.run();
  FEM2_CHECK_MSG(runtime.os().task_finished(task),
                 "parallel assembly did not complete");
  const auto& merged = runtime.result(task).as<AssembledPayload>();

  // Constraint elimination on the host, filling through the symbolic
  // pattern (identical to fem::assemble: same accumulation order, so the
  // result is bitwise equal to the serial path — workers only skip exact
  // zeros, which cannot change a sum).
  AssembledSystem system;
  system.dofs = build_dof_map(model);
  const DofMap& map = system.dofs;
  const auto pattern = build_sparsity_pattern(model, map);
  std::vector<double> values(pattern->nonzeros(), 0.0);
  system.rhs_correction.assign(map.free_dofs, 0.0);
  for (const auto& t : merged.triplets) {
    const std::ptrdiff_t rr = map.full_to_reduced[t.row];
    if (rr < 0) continue;
    const std::ptrdiff_t rc = map.full_to_reduced[t.col];
    if (rc >= 0) {
      const std::size_t k = pattern->find(static_cast<std::size_t>(rr),
                                          static_cast<std::size_t>(rc));
      FEM2_CHECK(k != la::SparsityPattern::npos);
      values[k] += t.value;
    } else {
      const double uc = map.prescribed[t.col];
      if (uc != 0.0)
        system.rhs_correction[static_cast<std::size_t>(rr)] += t.value * uc;
    }
  }
  system.stiffness = la::CsrMatrix(std::move(pattern), std::move(values));

  if (stats != nullptr) {
    stats->workers = workers;
    stats->elapsed = runtime.os().now() - start;
    stats->triplets = merged.triplets.size();
  }
  return system;
}

}  // namespace fem2::fem
