// Static solution of assembled systems: direct (skyline / dense Cholesky),
// iterative (CG / Gauss-Seidel / SOR / Jacobi) and the distributed solve on
// the simulated FEM-2 machine.
#pragma once

#include <map>
#include <string>

#include "fem/assembly.hpp"
#include "fem/model.hpp"
#include "la/iterative.hpp"
#include "la/precond.hpp"
#include "navm/runtime.hpp"

namespace fem2::fem {

enum class SolverKind {
  SkylineDirect,   ///< profile Cholesky (the classic 1980s FEM solver)
  DenseCholesky,
  ConjugateGradient,
  PreconditionedCg,  ///< Jacobi-preconditioned CG
  TwoLevelCg,        ///< CG with the two-level (coarse-grid) preconditioner
  GaussSeidel,
  Sor,
  Jacobi,
};

std::string_view solver_kind_name(SolverKind k);

struct SolverOptions {
  SolverKind kind = SolverKind::ConjugateGradient;
  double tolerance = 1e-10;
  std::size_t max_iterations = 20'000;
  double sor_omega = 1.5;
  la::TwoLevelOptions two_level{};  ///< used by SolverKind::TwoLevelCg
};

struct SolveStats {
  std::string method;
  bool converged = true;
  std::size_t iterations = 0;   ///< 0 for direct methods
  double residual = 0.0;        ///< final relative residual
  std::size_t matrix_storage_bytes = 0;
};

struct StaticSolution {
  Displacements displacements;
  SolveStats stats;
};

/// Solve the reduced system K u = f with the selected method.
StaticSolution solve_reduced(const AssembledSystem& system,
                             std::span<const double> rhs,
                             const SolverOptions& options);

/// Assemble and solve `model` under the named load set.
StaticSolution solve_static(const StructureModel& model,
                            const std::string& load_set,
                            const SolverOptions& options = {});

/// Solve several load sets against one structure, factoring the stiffness
/// matrix once (direct methods) — the "solve structure model/load set"
/// workflow for many load cases.  Results keyed by load-set name.
std::map<std::string, StaticSolution> solve_static_all_load_sets(
    const StructureModel& model, const SolverOptions& options = {});

struct ParallelSolveOptions {
  std::uint32_t workers = 4;
  double tolerance = 1e-10;
  std::size_t max_iterations = 20'000;
  /// Jacobi-precondition the distributed CG (each worker scales its own
  /// residual shard by the local inverse diagonal; no extra shipping).
  bool jacobi_preconditioner = false;
};

/// Solve on the simulated FEM-2 machine: launches the distributed CG driver
/// (navm.cg.driver) as a root task and runs the machine to completion.
/// register_parallel_ops must already have been called on the runtime.
/// Simulation metrics accumulate in the runtime's Os/Machine.
StaticSolution solve_static_parallel(const StructureModel& model,
                                     const std::string& load_set,
                                     navm::Runtime& runtime,
                                     const ParallelSolveOptions& options = {});

}  // namespace fem2::fem
