#include "fem/dynamics.hpp"

#include <cmath>
#include <numbers>

#include "fem/element.hpp"
#include "la/dense.hpp"
#include "la/vec_ops.hpp"

namespace fem2::fem {

namespace {

/// Mass of one element (translational).
double element_mass(const StructureModel& model, const Element& e) {
  const Material& m = model.materials[e.material];
  switch (e.type) {
    case ElementType::Bar2:
    case ElementType::Beam2: {
      const Node& a = model.nodes[e.nodes[0]];
      const Node& b = model.nodes[e.nodes[1]];
      const double length = std::hypot(b.x - a.x, b.y - a.y);
      return m.density * m.area * length;
    }
    case ElementType::Tri3: {
      const double area = std::abs(triangle_area(model.nodes[e.nodes[0]],
                                                 model.nodes[e.nodes[1]],
                                                 model.nodes[e.nodes[2]]));
      return m.density * m.thickness * area;
    }
    case ElementType::Quad4: {
      // Split the quad into two triangles for its area.
      const double a1 = triangle_area(model.nodes[e.nodes[0]],
                                      model.nodes[e.nodes[1]],
                                      model.nodes[e.nodes[2]]);
      const double a2 = triangle_area(model.nodes[e.nodes[0]],
                                      model.nodes[e.nodes[2]],
                                      model.nodes[e.nodes[3]]);
      return m.density * m.thickness * (std::abs(a1) + std::abs(a2));
    }
  }
  FEM2_UNREACHABLE("bad ElementType");
}

}  // namespace

double total_mass(const StructureModel& model) {
  double mass = 0.0;
  for (const auto& e : model.elements) mass += element_mass(model, e);
  return mass;
}

la::CsrMatrix lumped_mass_matrix(const StructureModel& model,
                                 const DofMap& dofs) {
  std::vector<double> nodal_mass(model.nodes.size(), 0.0);
  std::vector<double> nodal_inertia(model.nodes.size(), 0.0);

  for (const auto& e : model.elements) {
    const double share =
        element_mass(model, e) / static_cast<double>(e.node_count());
    for (std::size_t i = 0; i < e.node_count(); ++i)
      nodal_mass[e.nodes[i]] += share;
    if (e.type == ElementType::Beam2) {
      // Rotary inertia of the tributary half-segment: m L² / 24 per end
      // (lumped-beam convention).
      const Node& a = model.nodes[e.nodes[0]];
      const Node& b = model.nodes[e.nodes[1]];
      const double length = std::hypot(b.x - a.x, b.y - a.y);
      const double inertia = element_mass(model, e) * length * length / 24.0;
      nodal_inertia[e.nodes[0]] += inertia / 2.0;
      nodal_inertia[e.nodes[1]] += inertia / 2.0;
    }
  }

  la::TripletBuilder builder(dofs.free_dofs, dofs.free_dofs);
  for (std::size_t node = 0; node < model.nodes.size(); ++node) {
    for (std::size_t d = 0; d < dofs.dofs_per_node; ++d) {
      const std::ptrdiff_t reduced =
          dofs.full_to_reduced[dofs.full_index(node, d)];
      if (reduced < 0) continue;
      const double value = d < 2 ? nodal_mass[node] : nodal_inertia[node];
      // Keep the matrix nonsingular even for massless rotational dofs.
      builder.add(static_cast<std::size_t>(reduced),
                  static_cast<std::size_t>(reduced),
                  std::max(value, 1e-12));
    }
  }
  return builder.build();
}

ModalResult modal_analysis(const StructureModel& model,
                           std::size_t mode_count,
                           const la::EigenOptions& options) {
  const AssembledSystem system = assemble(model);
  const la::CsrMatrix mass = lumped_mass_matrix(model, system.dofs);

  la::EigenOptions eig = options;
  eig.modes = mode_count;
  const auto eigen = la::lowest_eigenpairs(system.stiffness, mass, eig);

  ModalResult result;
  result.converged = eigen.converged;
  result.iterations = eigen.iterations;
  result.modes.reserve(eigen.pairs.size());
  for (const auto& pair : eigen.pairs) {
    Mode mode;
    mode.omega = std::sqrt(std::max(pair.value, 0.0));
    mode.frequency = mode.omega / (2.0 * std::numbers::pi);
    mode.shape = system.expand(pair.vector);
    result.modes.push_back(std::move(mode));
  }
  return result;
}

TransientResult newmark_transient(
    const StructureModel& model,
    const std::function<std::vector<double>(double time)>& force,
    const NewmarkOptions& options) {
  FEM2_CHECK(options.dt > 0.0);
  FEM2_CHECK(options.beta > 0.0 && options.gamma >= 0.5);

  const AssembledSystem system = assemble(model);
  const la::CsrMatrix& k = system.stiffness;
  const la::CsrMatrix m = lumped_mass_matrix(model, system.dofs);
  const std::size_t n = k.rows();
  const double dt = options.dt;
  const double beta = options.beta;
  const double gamma = options.gamma;

  // Effective stiffness K* = K + γ/(βΔt) C + 1/(βΔt²) M, with C = α_m M.
  const double mass_coeff =
      1.0 / (beta * dt * dt) + options.alpha_m * gamma / (beta * dt);
  la::DenseMatrix k_eff = k.to_dense();
  const auto m_diag = m.diagonal();
  for (std::size_t i = 0; i < n; ++i)
    k_eff(i, i) += mass_coeff * m_diag[i];
  la::CholeskyFactorization chol(k_eff);

  std::vector<double> u(n, 0.0), v(n, 0.0), a(n, 0.0);
  {
    // Initial acceleration from the t = 0 equilibrium: M a0 = f(0) - K·0.
    const auto f0 = force(0.0);
    FEM2_CHECK(f0.size() == n);
    for (std::size_t i = 0; i < n; ++i) a[i] = f0[i] / m_diag[i];
  }

  TransientResult result;
  result.samples.reserve(options.steps + 1);
  result.samples.push_back({0.0, u});

  for (std::size_t step = 1; step <= options.steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    const auto f = force(t);
    FEM2_CHECK(f.size() == n);

    // Newmark predictors.
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double u_pred =
          u[i] / (beta * dt * dt) + v[i] / (beta * dt) +
          (1.0 / (2.0 * beta) - 1.0) * a[i];
      const double v_pred =
          options.alpha_m *
          (gamma / (beta * dt) * u[i] + (gamma / beta - 1.0) * v[i] +
           dt * (gamma / (2.0 * beta) - 1.0) * a[i]);
      rhs[i] = f[i] + m_diag[i] * (u_pred + v_pred);
    }
    const auto u_next = chol.solve(rhs);

    for (std::size_t i = 0; i < n; ++i) {
      const double a_next = (u_next[i] - u[i]) / (beta * dt * dt) -
                            v[i] / (beta * dt) -
                            (1.0 / (2.0 * beta) - 1.0) * a[i];
      const double v_next =
          v[i] + dt * ((1.0 - gamma) * a[i] + gamma * a_next);
      u[i] = u_next[i];
      v[i] = v_next;
      a[i] = a_next;
    }
    result.samples.push_back({t, u});
    result.peak_abs_displacement =
        std::max(result.peak_abs_displacement, la::norm_inf(u));
  }
  return result;
}

}  // namespace fem2::fem
