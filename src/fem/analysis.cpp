#include "fem/analysis.hpp"

namespace fem2::fem {

AnalysisResult analyze(const StructureModel& model,
                       const std::string& load_set,
                       const SolverOptions& options) {
  AnalysisResult out;
  out.solution = solve_static(model, load_set, options);
  out.stresses = compute_stresses(model, out.solution.displacements);
  out.peak = peak_stress(out.stresses);
  return out;
}

}  // namespace fem2::fem
