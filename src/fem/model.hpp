// Structural model data objects — the application user's VM data layer:
// "structure/substructure model, grid description, node/element
// description, load set, displacements of nodes, stresses on elements".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace fem2::fem {

struct Node {
  double x = 0.0;
  double y = 0.0;
};

enum class ElementType : std::uint8_t {
  Bar2,   ///< 2-node axial truss bar (2 dof/node)
  Beam2,  ///< 2-node Euler-Bernoulli frame element (3 dof/node)
  Tri3,   ///< 3-node constant-strain triangle, plane stress (2 dof/node)
  Quad4,  ///< 4-node bilinear quadrilateral, plane stress (2 dof/node)
};

std::string_view element_type_name(ElementType t);
std::size_t element_node_count(ElementType t);
/// Degrees of freedom per node this element type requires.
std::size_t element_dofs_per_node(ElementType t);

struct Element {
  ElementType type = ElementType::Bar2;
  std::array<std::size_t, 4> nodes{};  ///< first element_node_count() used
  std::size_t material = 0;

  std::size_t node_count() const { return element_node_count(type); }
};

struct Material {
  std::string name = "steel";
  double youngs_modulus = 200e9;   ///< E  [Pa]
  double poisson_ratio = 0.3;      ///< ν
  double area = 1e-3;              ///< A  [m²]   (bars, beams)
  double moment_of_inertia = 1e-6; ///< I  [m⁴]   (beams)
  double thickness = 1e-2;         ///< t  [m]    (plane-stress elements)
  double density = 7850.0;         ///< ρ  [kg/m³] (dynamics)
};

/// Single-point constraint: prescribe one nodal dof (usually to zero).
struct Constraint {
  std::size_t node = 0;
  std::size_t dof = 0;  ///< 0 = x, 1 = y, 2 = rotation
  double value = 0.0;
};

struct PointLoad {
  std::size_t node = 0;
  std::size_t dof = 0;
  double value = 0.0;
};

/// "Load set" — a named collection of loads applied together.
struct LoadSet {
  std::string name = "default";
  std::vector<PointLoad> loads;
};

class StructureModel {
 public:
  std::string name = "structure";

  std::vector<Node> nodes;
  std::vector<Element> elements;
  std::vector<Material> materials;
  std::vector<Constraint> constraints;
  std::map<std::string, LoadSet> load_sets;

  std::size_t add_node(double x, double y);
  std::size_t add_material(Material material);
  std::size_t add_element(ElementType type,
                          std::initializer_list<std::size_t> nodes,
                          std::size_t material = 0);
  void fix_node(std::size_t node);  ///< constrain every dof of the node
  void add_constraint(std::size_t node, std::size_t dof, double value = 0.0);
  LoadSet& load_set(const std::string& name);  ///< creates if absent
  void add_load(const std::string& set, std::size_t node, std::size_t dof,
                double value);

  /// Degrees of freedom per node for the whole model (3 when any beam
  /// element is present, else 2).
  std::size_t dofs_per_node() const;
  std::size_t total_dofs() const { return nodes.size() * dofs_per_node(); }

  /// Structural validation: indices in range, materials present, elements
  /// non-degenerate.  Throws support::Error with a description on failure.
  void validate() const;

  /// Approximate storage footprint of the model description (bytes).
  std::size_t storage_bytes() const;
};

/// Displacement results: full dof vector plus lookup helpers.
struct Displacements {
  std::size_t dofs_per_node = 2;
  std::vector<double> values;  ///< length nodes*dofs_per_node

  double at(std::size_t node, std::size_t dof) const {
    FEM2_CHECK(node * dofs_per_node + dof < values.size());
    return values[node * dofs_per_node + dof];
  }
};

/// Per-element stress results ("stresses on elements").
struct ElementStress {
  std::size_t element = 0;
  /// Bars/beams: axial stress in sigma_xx; plane elements: full tensor.
  double sigma_xx = 0.0;
  double sigma_yy = 0.0;
  double tau_xy = 0.0;
  double von_mises = 0.0;
};

}  // namespace fem2::fem
