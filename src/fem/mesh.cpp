#include "fem/mesh.hpp"

namespace fem2::fem {

std::size_t plate_node(const PlateMeshOptions& options, std::size_t i,
                       std::size_t j) {
  FEM2_CHECK(i <= options.nx && j <= options.ny);
  return j * (options.nx + 1) + i;
}

StructureModel make_plate(const PlateMeshOptions& options) {
  FEM2_CHECK(options.nx > 0 && options.ny > 0);
  FEM2_CHECK_MSG(options.element == ElementType::Quad4 ||
                     options.element == ElementType::Tri3,
                 "plates are meshed with Quad4 or Tri3 elements");
  StructureModel model;
  model.name = "plate";
  const std::size_t mat = model.add_material(options.material);

  const double dx = options.width / static_cast<double>(options.nx);
  const double dy = options.height / static_cast<double>(options.ny);
  for (std::size_t j = 0; j <= options.ny; ++j)
    for (std::size_t i = 0; i <= options.nx; ++i)
      model.add_node(static_cast<double>(i) * dx,
                     static_cast<double>(j) * dy);

  for (std::size_t j = 0; j < options.ny; ++j) {
    for (std::size_t i = 0; i < options.nx; ++i) {
      const std::size_t n00 = plate_node(options, i, j);
      const std::size_t n10 = plate_node(options, i + 1, j);
      const std::size_t n11 = plate_node(options, i + 1, j + 1);
      const std::size_t n01 = plate_node(options, i, j + 1);
      if (options.element == ElementType::Quad4) {
        model.add_element(ElementType::Quad4, {n00, n10, n11, n01}, mat);
      } else {
        // Split each cell into two CCW triangles.
        model.add_element(ElementType::Tri3, {n00, n10, n11}, mat);
        model.add_element(ElementType::Tri3, {n00, n11, n01}, mat);
      }
    }
  }
  return model;
}

StructureModel make_cantilever_plate(const PlateMeshOptions& options,
                                     double total_load) {
  StructureModel model = make_plate(options);
  model.name = "cantilever-plate";
  for (std::size_t j = 0; j <= options.ny; ++j)
    model.fix_node(plate_node(options, 0, j));

  // Distribute the shear over the right edge (half weight at the corners).
  const std::size_t edge_nodes = options.ny + 1;
  const double per_interior =
      total_load / static_cast<double>(edge_nodes - 1);
  for (std::size_t j = 0; j <= options.ny; ++j) {
    const bool corner = j == 0 || j == options.ny;
    model.add_load("tip-shear", plate_node(options, options.nx, j), 1,
                   corner ? -per_interior / 2.0 : -per_interior);
  }
  return model;
}

StructureModel make_cantilever_beam(const FrameOptions& options,
                                    double tip_load) {
  FEM2_CHECK(options.segments > 0);
  StructureModel model;
  model.name = "cantilever-beam";
  const std::size_t mat = model.add_material(options.material);
  const double dx = options.length / static_cast<double>(options.segments);
  for (std::size_t i = 0; i <= options.segments; ++i)
    model.add_node(static_cast<double>(i) * dx, 0.0);
  for (std::size_t i = 0; i < options.segments; ++i)
    model.add_element(ElementType::Beam2, {i, i + 1}, mat);
  model.fix_node(0);
  model.add_load("tip", options.segments, 1, -tip_load);
  return model;
}

StructureModel make_truss_bridge(const TrussOptions& options,
                                 double load_per_joint) {
  FEM2_CHECK(options.bays >= 2);
  StructureModel model;
  model.name = "truss-bridge";
  const std::size_t mat = model.add_material(options.material);

  // Bottom chord nodes 0..bays, top chord nodes bays+1 .. 2*bays-... one
  // top node per interior panel point plus ends.
  std::vector<std::size_t> bottom(options.bays + 1);
  std::vector<std::size_t> top(options.bays + 1);
  for (std::size_t i = 0; i <= options.bays; ++i)
    bottom[i] = model.add_node(static_cast<double>(i) * options.bay_width, 0.0);
  for (std::size_t i = 0; i <= options.bays; ++i)
    top[i] = model.add_node(static_cast<double>(i) * options.bay_width,
                            options.height);

  for (std::size_t i = 0; i < options.bays; ++i) {
    model.add_element(ElementType::Bar2, {bottom[i], bottom[i + 1]}, mat);
    model.add_element(ElementType::Bar2, {top[i], top[i + 1]}, mat);
  }
  for (std::size_t i = 0; i <= options.bays; ++i)
    model.add_element(ElementType::Bar2, {bottom[i], top[i]}, mat);
  // Pratt diagonals leaning toward midspan.
  for (std::size_t i = 0; i < options.bays; ++i) {
    if (i < options.bays / 2) {
      model.add_element(ElementType::Bar2, {top[i], bottom[i + 1]}, mat);
    } else {
      model.add_element(ElementType::Bar2, {bottom[i], top[i + 1]}, mat);
    }
  }

  // Simple supports: pin at the left (both dofs), roller at the right.
  model.add_constraint(bottom[0], 0);
  model.add_constraint(bottom[0], 1);
  model.add_constraint(bottom[options.bays], 1);

  for (std::size_t i = 1; i < options.bays; ++i)
    model.add_load("deck", bottom[i], 1, -load_per_joint);
  return model;
}

}  // namespace fem2::fem
