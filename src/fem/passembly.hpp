// Parallel assembly on the simulated FEM-2 machine: element stiffness
// formation fanned out across tasks ("forall elements"), merged by the
// driver.  Completes the on-machine pipeline: assemble → solve → stresses.
#pragma once

#include "fem/assembly.hpp"
#include "navm/runtime.hpp"

namespace fem2::fem {

/// Register the fem.assemble.* task types (call once per runtime).
void register_assembly_tasks(navm::Runtime& runtime);

struct ParallelAssemblyStats {
  std::size_t workers = 0;
  hw::Cycles elapsed = 0;       ///< machine time of the assembly run
  std::uint64_t triplets = 0;   ///< element-matrix entries merged
};

/// Assemble `model` with `workers` element-range tasks on the machine.
/// Produces the same AssembledSystem as fem::assemble (tested); machine
/// metrics accumulate in the runtime's Os/Machine.
AssembledSystem assemble_parallel(const StructureModel& model,
                                  navm::Runtime& runtime,
                                  std::uint32_t workers,
                                  ParallelAssemblyStats* stats = nullptr);

inline constexpr const char* kAssembleDriverTask = "fem.assemble.driver";
inline constexpr const char* kAssembleWorkerTask = "fem.assemble.worker";

/// Register the fem.stress.* task types (call once per runtime).
void register_stress_tasks(navm::Runtime& runtime);

struct ParallelStressStats {
  std::size_t workers = 0;
  hw::Cycles elapsed = 0;
};

/// Recover all element stresses with `workers` element-range tasks on the
/// machine; identical results to fem::compute_stresses (tested).
std::vector<ElementStress> compute_stresses_parallel(
    const StructureModel& model, const Displacements& u,
    navm::Runtime& runtime, std::uint32_t workers,
    ParallelStressStats* stats = nullptr);

inline constexpr const char* kStressDriverTask = "fem.stress.driver";
inline constexpr const char* kStressWorkerTask = "fem.stress.worker";

}  // namespace fem2::fem
