// The common defect record emitted by every analysis pass (ISSUE: "a common
// structured Finding record (layer, severity, entity, clock evidence)
// consumable by tests and the bench harness").
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fem2::analyze {

/// Which pass produced the finding.
enum class Pass {
  GrammarLint,
  Conformance,
  Race,
  Deadlock,
  Verification,  ///< static spec verification (verify.hpp)
  ModelCheck,    ///< bounded protocol model checking (model_check.hpp)
};
std::string_view pass_name(Pass p);

enum class Severity { Info, Warning, Error };
std::string_view severity_name(Severity s);

/// Which VM layer the finding is about (matches src/spec/layers.hpp).
enum class Layer { Appvm, Db, Navm, Sysvm, Hw, None };
std::string_view layer_name(Layer l);

struct Finding {
  Pass pass = Pass::GrammarLint;
  Severity severity = Severity::Warning;
  Layer layer = Layer::None;
  /// Short machine-readable category, e.g. "unreachable-nonterminal",
  /// "write-write-race", "wait-cycle".
  std::string rule;
  /// What the finding is about: a nonterminal, "task 7", "array 3", ...
  std::string entity;
  /// Human-readable description of the defect.
  std::string message;
  /// Supporting detail: grammar source location, vector-clock epochs of the
  /// two unordered accesses, the wait-for cycle, recent-activity trail.
  std::string evidence;

  std::string to_string() const;
};

/// Findings of at least `min` severity.
std::size_t count_at_least(const std::vector<Finding>& findings, Severity min);

}  // namespace fem2::analyze
