// Continuous spec-conformance checking (pass 2 of fem2_analyze): at event-
// engine quiescent points, project live implementation state into H-graphs
// (spec/reflect) and check each against its layer grammar (spec/layers).
// The first violating snapshot is attributed to the recent task steps and
// messages that produced it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/finding.hpp"
#include "hgraph/grammar.hpp"
#include "navm/runtime.hpp"
#include "sysvm/os.hpp"

namespace fem2::analyze {

struct ConformanceOptions {
  /// Snapshot every Nth quiescent point (1 = every point).  Message checks
  /// are independent of the stride.
  std::size_t snapshot_stride = 64;
  /// Check decoded sysvm messages against the `message` production.
  bool check_messages = true;
  /// Messages of the same type are structurally near-identical, so after
  /// the first `message_warmup` of a type, only every `message_stride`-th
  /// is checked — systematic malformations are still caught.
  std::size_t message_warmup = 16;
  std::size_t message_stride = 64;
};

class ConformanceChecker {
 public:
  ConformanceChecker(sysvm::Os& os, navm::Runtime* runtime,
                     ConformanceOptions options, std::vector<Finding>& sink);

  /// Replace a layer's grammar (tests seed violations with a stricter
  /// grammar; Layer::Appvm is reserved — app state isn't snapshotted here).
  void set_grammar(Layer layer, hgraph::Grammar grammar);

  /// Called at every engine quiescent point; snapshots on the stride.
  void quiescent_point();
  /// Snapshot and check all layers now.
  void snapshot();
  /// Check one decoded message against the sysvm `message` production.
  void check_message(const sysvm::Message& message);
  /// Attribution trail: note what just happened (task step, message).
  void note_activity(std::string what);

  std::uint64_t snapshots_taken() const { return snapshots_; }
  std::uint64_t messages_checked() const { return messages_; }
  std::uint64_t graphs_checked() const { return graphs_; }

 private:
  void check_graph(Layer layer, const hgraph::HGraph& graph,
                   hgraph::NodeId root, std::string_view nonterminal,
                   std::string entity);
  const hgraph::Grammar& grammar_for(Layer layer) const;
  std::string recent_activity() const;

  sysvm::Os& os_;
  navm::Runtime* runtime_;
  ConformanceOptions options_;
  std::vector<Finding>& sink_;

  hgraph::Grammar navm_grammar_;
  hgraph::Grammar sysvm_grammar_;
  hgraph::Grammar hw_grammar_;

  std::size_t quiescent_counter_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t graphs_ = 0;
  std::uint64_t messages_seen_[sysvm::kMessageTypeCount] = {};
  std::deque<std::string> activity_;  ///< ring of recent events
  std::set<std::string> reported_;    ///< dedup per (layer, error)
};

}  // namespace fem2::analyze
