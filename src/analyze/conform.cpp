#include "analyze/conform.hpp"

#include <utility>

#include "hgraph/hgraph.hpp"
#include "spec/layers.hpp"
#include "spec/reflect.hpp"

namespace fem2::analyze {

namespace {
constexpr std::size_t kActivityRing = 8;
}  // namespace

ConformanceChecker::ConformanceChecker(sysvm::Os& os, navm::Runtime* runtime,
                                       ConformanceOptions options,
                                       std::vector<Finding>& sink)
    : os_(os),
      runtime_(runtime),
      options_(options),
      sink_(sink),
      navm_grammar_(spec::navm_grammar()),
      sysvm_grammar_(spec::sysvm_grammar()),
      hw_grammar_(spec::hw_grammar()) {
  if (options_.snapshot_stride == 0) options_.snapshot_stride = 1;
}

void ConformanceChecker::set_grammar(Layer layer, hgraph::Grammar grammar) {
  switch (layer) {
    case Layer::Navm:
      navm_grammar_ = std::move(grammar);
      break;
    case Layer::Sysvm:
      sysvm_grammar_ = std::move(grammar);
      break;
    case Layer::Hw:
      hw_grammar_ = std::move(grammar);
      break;
    case Layer::Appvm:
    case Layer::Db:
    case Layer::None:
      break;
  }
}

const hgraph::Grammar& ConformanceChecker::grammar_for(Layer layer) const {
  switch (layer) {
    case Layer::Navm:
      return navm_grammar_;
    case Layer::Hw:
      return hw_grammar_;
    default:
      return sysvm_grammar_;
  }
}

void ConformanceChecker::note_activity(std::string what) {
  activity_.push_back(std::move(what));
  if (activity_.size() > kActivityRing) activity_.pop_front();
}

std::string ConformanceChecker::recent_activity() const {
  if (activity_.empty()) return "no activity observed since last snapshot";
  std::string out = "recent activity (oldest first): ";
  bool first = true;
  for (const auto& entry : activity_) {
    if (!first) out += "; ";
    out += entry;
    first = false;
  }
  return out;
}

void ConformanceChecker::quiescent_point() {
  ++quiescent_counter_;
  if (quiescent_counter_ % options_.snapshot_stride != 0) return;
  snapshot();
}

void ConformanceChecker::check_graph(Layer layer, const hgraph::HGraph& graph,
                                     hgraph::NodeId root,
                                     std::string_view nonterminal,
                                     std::string entity) {
  ++graphs_;
  const auto result = grammar_for(layer).conforms(graph, root, nonterminal);
  if (result.ok) return;
  const std::string key = std::string(layer_name(layer)) + "/" + result.error;
  if (!reported_.insert(key).second) return;
  Finding f;
  f.pass = Pass::Conformance;
  f.severity = Severity::Error;
  f.layer = layer;
  f.rule = std::string(nonterminal);
  f.entity = std::move(entity);
  f.message = "snapshot violates layer grammar: " + result.error;
  f.evidence = recent_activity();
  sink_.push_back(std::move(f));
}

void ConformanceChecker::snapshot() {
  ++snapshots_;

  if (runtime_ != nullptr) {
    hgraph::HGraph g;
    const auto root = spec::reflect_task_system(g, os_, *runtime_);
    check_graph(Layer::Navm, g, root, "tasksystem", "task system");
  }

  const auto& machine = os_.machine();
  for (std::uint32_t c = 0; c < machine.cluster_count(); ++c) {
    const hw::ClusterId cluster{c};
    if (!machine.cluster_alive(cluster)) continue;
    hgraph::HGraph g;
    const auto root = spec::reflect_kernel(g, os_, cluster);
    check_graph(Layer::Sysvm, g, root, "kernel",
                "kernel of cluster " + std::to_string(c));
  }

  {
    hgraph::HGraph g;
    const auto root = spec::reflect_machine(g, machine);
    check_graph(Layer::Hw, g, root, "machine", "machine");
  }

  // A clean snapshot clears the attribution trail: the next violation is
  // attributed to activity after this known-good point.
  activity_.clear();
}

void ConformanceChecker::check_message(const sysvm::Message& message) {
  if (!options_.check_messages) return;
  const auto type = static_cast<std::size_t>(sysvm::message_type(message));
  const std::uint64_t seen = messages_seen_[type]++;
  if (seen >= options_.message_warmup &&
      (options_.message_stride == 0 ||
       seen % options_.message_stride != 0))
    return;
  ++messages_;
  hgraph::HGraph g;
  const auto root = spec::reflect_message(g, message);
  check_graph(Layer::Sysvm, g, root, "message",
              "message " + std::string(sysvm::message_type_name(
                               sysvm::message_type(message))));
}

}  // namespace fem2::analyze
