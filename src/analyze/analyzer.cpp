#include "analyze/analyzer.hpp"

#include <string>
#include <utility>

#include "spec/layers.hpp"

namespace fem2::analyze {

Analyzer::Analyzer(navm::Runtime& runtime, AnalyzerOptions options)
    : runtime_(runtime),
      os_(runtime.os()),
      options_(options),
      conformance_(os_, &runtime_,
                   ConformanceOptions{options.snapshot_stride,
                                      options.check_messages},
                   findings_),
      race_(RaceOptions{options.race_history_limit}, findings_),
      deadlock_(os_, &runtime_, findings_) {
  os_.set_observer(this);
  runtime_.set_observer(this);
  auto& engine = os_.machine().engine();
  engine.set_quiescent_hook([this] {
    ++quiescent_points_;
    if (options_.conformance) conformance_.quiescent_point();
  });
  engine.set_idle_hook([this] {
    if (options_.deadlock_detection) deadlock_.scan();
    if (options_.conformance) conformance_.snapshot();
  });
}

Analyzer::~Analyzer() {
  auto& engine = os_.machine().engine();
  engine.set_quiescent_hook({});
  engine.set_idle_hook({});
  runtime_.set_observer(nullptr);
  os_.set_observer(nullptr);
}

std::vector<Finding> Analyzer::lint_layer_grammars() {
  std::vector<Finding> all;
  const auto run = [&all](const hgraph::Grammar& grammar, const char* name,
                          Layer layer, std::vector<std::string> roots) {
    LintOptions options;
    options.layer = layer;
    options.roots = std::move(roots);
    auto found = lint_grammar(grammar, name, options);
    all.insert(all.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  };
  run(spec::appvm_grammar(), "appvm", Layer::Appvm,
      {"workspace", "database"});
  run(spec::db_grammar(), "db", Layer::Db, {"dbengine"});
  run(spec::navm_grammar(), "navm", Layer::Navm, {"window", "tasksystem"});
  run(spec::sysvm_grammar(), "sysvm", Layer::Sysvm,
      {"codeblock", "message", "activation", "kernel"});
  run(spec::hw_grammar(), "hw", Layer::Hw, {"machine"});
  return all;
}

void Analyzer::set_layer_grammar(Layer layer, hgraph::Grammar grammar) {
  conformance_.set_grammar(layer, std::move(grammar));
}

void Analyzer::check_now() {
  if (options_.conformance) conformance_.snapshot();
  if (options_.deadlock_detection) deadlock_.scan();
}

AnalyzerStats Analyzer::stats() const {
  AnalyzerStats s;
  s.quiescent_points = quiescent_points_;
  s.snapshots = conformance_.snapshots_taken();
  s.graphs_checked = conformance_.graphs_checked();
  s.messages_checked = conformance_.messages_checked();
  s.accesses_tracked = race_.accesses_tracked();
  s.steps_observed = steps_observed_;
  return s;
}

// --- sysvm::OsObserver ----------------------------------------------------

void Analyzer::on_task_created(sysvm::TaskId task, sysvm::TaskId parent) {
  if (options_.race_detection) race_.task_created(task, parent);
  if (options_.conformance) {
    conformance_.note_activity("task " + std::to_string(task) +
                               " created by task " + std::to_string(parent));
  }
}

void Analyzer::on_task_finished(sysvm::TaskId task) {
  if (options_.conformance) {
    conformance_.note_activity("task " + std::to_string(task) + " finished");
  }
}

void Analyzer::on_step_begin(sysvm::TaskId task) {
  ++steps_observed_;
  if (options_.race_detection) race_.step_begin(task);
  if (options_.conformance) {
    conformance_.note_activity("step of task " + std::to_string(task));
  }
}

void Analyzer::on_step_end(sysvm::TaskId task) {
  if (options_.race_detection) race_.step_end(task);
}

void Analyzer::on_task_send(sysvm::TaskId from, hw::ClusterId to,
                            const sysvm::Message& message) {
  (void)to;
  if (options_.race_detection) race_.task_send(from, message);
}

void Analyzer::on_message(hw::ClusterId cluster,
                          const sysvm::Message& message) {
  if (options_.race_detection) race_.message_delivered(message);
  if (options_.conformance) {
    conformance_.check_message(message);
    conformance_.note_activity(
        "cluster " + std::to_string(cluster.index) + " decoded " +
        std::string(sysvm::message_type_name(sysvm::message_type(message))));
  }
}

void Analyzer::on_procedure_begin(const sysvm::MsgRemoteCall& call,
                                  hw::ClusterId cluster) {
  (void)cluster;
  if (options_.race_detection) race_.procedure_begin(call);
  if (options_.conformance) {
    conformance_.note_activity("procedure " + call.procedure + " for task " +
                               std::to_string(call.caller));
  }
}

void Analyzer::on_procedure_end(const sysvm::MsgRemoteCall& call,
                                hw::ClusterId cluster) {
  (void)cluster;
  if (options_.race_detection) race_.procedure_end(call);
}

// --- navm::RuntimeObserver ------------------------------------------------

void Analyzer::on_array_read(const navm::Window& window) {
  if (options_.race_detection) race_.array_read(window);
}

void Analyzer::on_array_write(const navm::Window& window) {
  if (options_.race_detection) race_.array_write(window);
}

void Analyzer::on_deposit(std::uint64_t collector, sysvm::TaskId depositor) {
  if (options_.race_detection) race_.deposit(collector, depositor);
}

void Analyzer::on_collector_take(std::uint64_t collector,
                                 sysvm::TaskId owner) {
  if (options_.race_detection) race_.collector_take(collector, owner);
}

}  // namespace fem2::analyze
