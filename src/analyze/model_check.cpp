#include "analyze/model_check.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "db/health.hpp"
#include "hw/channel.hpp"
#include "support/check.hpp"

namespace fem2::analyze {

std::string ModelCheckResult::trace_to_string() const {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) out += " -> ";
    out += trace[i];
  }
  return out;
}

namespace {

/// Shared BFS bookkeeping: visited set keyed by canonical state encoding,
/// parent pointers for counterexample reconstruction.
class Frontier {
 public:
  /// Returns true when the encoded state is new (and records its parent).
  bool admit(const std::string& key, const std::string& parent,
             const std::string& label) {
    const auto [it, inserted] = parents_.emplace(key,
                                                 std::make_pair(parent, label));
    (void)it;
    return inserted;
  }

  std::vector<std::string> trace_to(const std::string& key) const {
    std::vector<std::string> out;
    std::string cursor = key;
    while (true) {
      const auto it = parents_.find(cursor);
      FEM2_CHECK(it != parents_.end());
      if (it->second.second.empty()) break;  // initial state
      out.push_back(it->second.second);
      cursor = it->second.first;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  std::size_t size() const { return parents_.size(); }

 private:
  /// child key -> (parent key, event label); initial state has empty label.
  std::map<std::string, std::pair<std::string, std::string>> parents_;
};

// ---------------------------------------------------------------------------
// Protocol 1: the reliable inter-cluster channel (hw/channel.hpp)

/// A frame in flight.  Data frames carry no explicit payload: the protocol
/// sends payload seq+1, so the wire state is just (kind, seq).
struct WireFrame {
  bool ack = false;
  std::uint64_t seq = 0;

  auto operator<=>(const WireFrame&) const = default;
};

struct MsgState {
  hw::ReliableSender<std::uint8_t> sender;
  hw::ReliableReceiver<std::uint8_t> receiver;
  std::vector<WireFrame> network;  ///< kept sorted (multiset semantics)
  std::uint8_t sent = 0;       ///< messages handed to the channel so far
  std::uint8_t delivered = 0;  ///< in-order deliveries observed
  bool unreachable = false;    ///< sender declared the peer unreachable

  std::string encode() const {
    std::string k;
    k += static_cast<char>('0' + sent);
    k += static_cast<char>('0' + delivered);
    k += unreachable ? 'U' : '-';
    k += '|';
    for (const auto& [seq, frame] : sender.unacked) {
      k += 's';
      k += static_cast<char>('0' + seq);
      k += static_cast<char>('0' + frame.attempts);
    }
    k += '|';
    k += static_cast<char>('0' + receiver.next_expected);
    for (const auto& [seq, payload] : receiver.held) {
      k += 'h';
      k += static_cast<char>('0' + seq);
    }
    k += '|';
    for (const auto& f : network) {
      k += f.ack ? 'a' : 'd';
      k += static_cast<char>('0' + f.seq);
    }
    return k;
  }
};

void wire_insert(MsgState& s, WireFrame f) {
  s.network.insert(std::upper_bound(s.network.begin(), s.network.end(), f),
                   f);
}

/// Payload for sequence number `seq` (messages are numbered from 1).
std::uint8_t payload_of(std::uint64_t seq) {
  return static_cast<std::uint8_t>(seq + 1);
}

}  // namespace

ModelCheckResult check_messaging(const MessagingModelOptions& options) {
  ModelCheckResult result;
  result.property =
      "reliable channel delivers each message exactly once, in order";

  MsgState initial;
  initial.receiver.dedup = options.dedup;

  Frontier frontier;
  std::deque<std::pair<MsgState, std::size_t>> queue;  // state, depth
  frontier.admit(initial.encode(), "", "");
  queue.emplace_back(std::move(initial), 0);

  // Explores a successor: dedups, checks the delivery invariant, enqueues.
  // Returns false when a violation ends the search.
  const auto visit = [&](const MsgState& parent, MsgState child,
                         std::string label, std::size_t depth,
                         const std::vector<std::uint8_t>& releases) -> bool {
    result.transitions += 1;
    for (const std::uint8_t p : releases) {
      if (p != child.delivered + 1) {
        const std::string key = child.encode() + "!violation";
        frontier.admit(key, parent.encode(), label);
        result.violation =
            p <= child.delivered
                ? "message " + std::to_string(p) + " delivered twice"
                : "message " + std::to_string(p) +
                      " delivered before message " +
                      std::to_string(child.delivered + 1);
        result.trace = frontier.trace_to(key);
        return false;
      }
      child.delivered += 1;
    }
    const std::string key = child.encode();
    if (!frontier.admit(key, parent.encode(), std::move(label))) return true;
    result.depth = std::max(result.depth, depth + 1);
    if (options.max_states == 0 || frontier.size() < options.max_states) {
      queue.emplace_back(std::move(child), depth + 1);
    } else {
      result.bounded_out = true;
    }
    return true;
  };

  while (!queue.empty()) {
    const auto [state, depth] = std::move(queue.front());
    queue.pop_front();
    result.states += 1;
    if (state.unreachable) continue;  // terminal: the runtime throws here

    // Application hands the channel its next message.
    if (state.sent < options.messages &&
        state.network.size() < options.network_capacity) {
      MsgState next = state;
      const std::uint64_t seq = next.sender.send(payload_of(next.sent));
      next.sent += 1;
      wire_insert(next, WireFrame{false, seq});
      if (!visit(state, std::move(next), "send(m" + std::to_string(seq + 1) + ")",
                 depth, {}))
        return result;
    }

    // Each in-flight frame can arrive, be lost, or be duplicated.
    for (std::size_t i = 0; i < state.network.size(); ++i) {
      const WireFrame frame = state.network[i];
      const std::string fname = (frame.ack ? "ack" : "m") +
                                std::to_string(frame.seq + (frame.ack ? 0 : 1));

      {  // arrive
        MsgState next = state;
        next.network.erase(next.network.begin() +
                           static_cast<std::ptrdiff_t>(i));
        std::vector<std::uint8_t> releases;
        if (frame.ack) {
          next.sender.acknowledge(frame.seq);
        } else {
          auto admission =
              next.receiver.admit(frame.seq, payload_of(frame.seq));
          releases = std::move(admission.delivered);
          // Ack everything that arrives (duplicates included); a full
          // network drops the ack, which is equivalent to losing it.
          if (next.network.size() < options.network_capacity)
            wire_insert(next, WireFrame{true, frame.seq});
        }
        if (!visit(state, std::move(next), "deliver(" + fname + ")", depth,
                   releases))
          return result;
      }
      {  // lost
        MsgState next = state;
        next.network.erase(next.network.begin() +
                           static_cast<std::ptrdiff_t>(i));
        if (!visit(state, std::move(next), "lose(" + fname + ")", depth, {}))
          return result;
      }
      if (state.network.size() < options.network_capacity) {  // duplicated
        MsgState next = state;
        wire_insert(next, frame);
        if (!visit(state, std::move(next), "dup(" + fname + ")", depth, {}))
          return result;
      }
    }

    // A retransmit timer fires for any unacknowledged frame.
    for (const auto& [seq, unacked] : state.sender.unacked) {
      MsgState next = state;
      const auto decision =
          next.sender.on_timer(seq, options.max_retransmits);
      std::string label = "timeout(m" + std::to_string(seq + 1) + ")";
      switch (decision) {
        case hw::RetransmitDecision::AlreadyAcked:
          continue;
        case hw::RetransmitDecision::Exhausted:
          next.unreachable = true;
          label += ":unreachable";
          break;
        case hw::RetransmitDecision::Resend:
          // A full network loses the retransmission (the attempt still
          // counted).
          if (next.network.size() < options.network_capacity)
            wire_insert(next, WireFrame{false, seq});
          break;
      }
      if (!visit(state, std::move(next), std::move(label), depth, {}))
        return result;
    }
  }

  result.ok = true;
  return result;
}

// ---------------------------------------------------------------------------
// Protocol 2: the db engine health/durability lifecycle (db/health.hpp)

namespace {

struct WalEntry {
  std::uint8_t txn = 0;
  bool suspect = false;  ///< appended while the log was untrustworthy

  auto operator<=>(const WalEntry&) const = default;
};

struct DbState {
  db::HealthModel health;  ///< carries the sticky knob
  bool torn = false;       ///< log content untrustworthy beyond durability
  std::vector<WalEntry> wal;
  std::uint8_t durable_prefix = 0;  ///< wal entries covered by fsync
  std::uint16_t acked = 0;          ///< bitmask of acknowledged commits
  std::uint16_t snapshot = 0;       ///< bitmask durable via checkpoint
  std::uint8_t next_txn = 1;
  std::uint8_t checkpoints = 0;

  explicit DbState(bool sticky) : health(sticky) {}

  std::string encode() const {
    std::string k;
    k += health.degraded() ? 'D' : '-';
    k += torn ? 'T' : '-';
    k += static_cast<char>('0' + next_txn);
    k += static_cast<char>('0' + checkpoints);
    k += static_cast<char>('0' + durable_prefix);
    k += '|';
    for (const auto& e : wal) {
      k += static_cast<char>('0' + e.txn);
      k += e.suspect ? '!' : '.';
    }
    k += '|';
    k += std::to_string(acked);
    k += ',';
    k += std::to_string(snapshot);
    return k;
  }

  /// The committed transactions a post-crash replay reconstructs: the
  /// snapshot plus the trustworthy durable log prefix.
  std::uint16_t recovered() const {
    std::uint16_t mask = snapshot;
    for (std::uint8_t i = 0; i < durable_prefix; ++i)
      if (!wal[i].suspect) mask |= static_cast<std::uint16_t>(1u << wal[i].txn);
    return mask;
  }
};

std::uint16_t bit(std::uint8_t txn) {
  return static_cast<std::uint16_t>(1u << txn);
}

}  // namespace

ModelCheckResult check_db_health(const HealthModelOptions& options) {
  ModelCheckResult result;
  result.property =
      "no acknowledged commit lost; degraded mode sticky until recover()";

  DbState initial(options.sticky);
  Frontier frontier;
  std::deque<std::pair<DbState, std::size_t>> queue;
  frontier.admit(initial.encode(), "", "");
  queue.emplace_back(std::move(initial), 0);

  // Record a violating successor and cut the search.
  const auto violate = [&](const DbState& parent, const DbState& child,
                           const std::string& label, std::string what) {
    const std::string key = child.encode() + "!violation";
    frontier.admit(key, parent.encode(), label);
    result.violation = std::move(what);
    result.trace = frontier.trace_to(key);
  };

  const auto visit = [&](const DbState& parent, DbState child,
                         std::string label, std::size_t depth) -> bool {
    result.transitions += 1;
    // Stickiness: leaving degraded mode is only legitimate on recover().
    if (parent.health.degraded() && !child.health.degraded() &&
        !label.starts_with("recover")) {
      violate(parent, child, label,
              "degraded mode exited by '" + label + "' without recover()");
      return false;
    }
    const std::string key = child.encode();
    if (!frontier.admit(key, parent.encode(), std::move(label))) return true;
    result.depth = std::max(result.depth, depth + 1);
    if (options.max_states == 0 || frontier.size() < options.max_states) {
      queue.emplace_back(std::move(child), depth + 1);
    } else {
      result.bounded_out = true;
    }
    return true;
  };

  while (!queue.empty()) {
    const auto [state, depth] = std::move(queue.front());
    queue.pop_front();
    result.states += 1;

    const bool can_commit = state.next_txn <= options.commits &&
                            !state.health.degraded();
    const std::uint8_t txn = state.next_txn;
    const std::string tname = "t" + std::to_string(txn);

    if (can_commit) {
      {  // records logged, fsync durable, client acknowledged
        DbState next = state;
        next.wal.push_back(WalEntry{txn, next.torn});
        next.durable_prefix = static_cast<std::uint8_t>(next.wal.size());
        next.acked |= bit(txn);
        next.next_txn += 1;
        next.health.on_success();
        if (!visit(state, std::move(next), "commit-ok(" + tname + ")", depth))
          return result;
      }
      {  // append failed, rollback restored the log: clean failure
        DbState next = state;
        next.next_txn += 1;
        next.health.on_failure(db::FailureSite::AppendRollbackOk, tname);
        if (!visit(state, std::move(next),
                   "append-fail-rollback-ok(" + tname + ")", depth))
          return result;
      }
      {  // append failed AND rollback failed: torn frame in the log
        DbState next = state;
        next.torn = true;
        next.next_txn += 1;
        next.health.on_failure(db::FailureSite::AppendRollbackFailed, tname);
        if (!visit(state, std::move(next),
                   "append-fail-rollback-fail(" + tname + ")", depth))
          return result;
      }
      {  // commit fsync failed; the scrub removed the records
        DbState next = state;
        next.next_txn += 1;
        next.health.on_failure(db::FailureSite::CommitFsyncFailed, tname);
        if (!visit(state, std::move(next),
                   "fsync-fail-scrub-ok(" + tname + ")", depth))
          return result;
      }
      {  // commit fsync failed and the scrub failed too: undurable
         // records of a failed commit sit in the file (fsync-gate hazard)
        DbState next = state;
        next.wal.push_back(WalEntry{txn, true});
        next.torn = true;
        next.next_txn += 1;
        next.health.on_failure(db::FailureSite::CommitFsyncFailed, tname);
        if (!visit(state, std::move(next),
                   "fsync-fail-scrub-fail(" + tname + ")", depth))
          return result;
      }
    }

    if (state.checkpoints < options.checkpoints &&
        !state.health.degraded()) {
      {  // snapshot published, log reset
        DbState next = state;
        next.snapshot |= next.acked;
        next.wal.clear();
        next.durable_prefix = 0;
        next.torn = false;  // the untrusted log content is gone
        next.checkpoints += 1;
        next.health.on_success();
        if (!visit(state, std::move(next), "checkpoint-ok", depth))
          return result;
      }
      {  // snapshot write failed: nothing published, log intact
        DbState next = state;
        next.checkpoints += 1;
        next.health.on_failure(db::FailureSite::CheckpointSnapshotWriteFailed,
                               "checkpoint");
        if (!visit(state, std::move(next), "checkpoint-snapshot-fail", depth))
          return result;
      }
      {  // snapshot published but the log could not be truncated
        DbState next = state;
        next.snapshot |= next.acked;
        next.torn = true;
        next.checkpoints += 1;
        next.health.on_failure(db::FailureSite::CheckpointLogResetFailed,
                               "checkpoint");
        if (!visit(state, std::move(next), "checkpoint-reset-fail", depth))
          return result;
      }
    }

    // The OS flushes the page cache behind the engine's back: everything
    // in the file becomes durable whether or not fsync succeeded.
    if (state.durable_prefix < state.wal.size()) {
      DbState next = state;
      next.durable_prefix = static_cast<std::uint8_t>(next.wal.size());
      if (!visit(state, std::move(next), "os-flush", depth)) return result;
    }

    // A successful read while degraded: must not change health.  (The
    // non-sticky defect clears degraded mode here; the stickiness check
    // in visit() catches it with a minimal trace.)
    if (state.health.degraded()) {
      DbState next = state;
      next.health.on_success();
      if (!visit(state, std::move(next), "read-ok", depth)) return result;
    }

    // Crash (any time) or explicit recover() (the legitimate exit from
    // degraded mode): replay from durable state, then check that every
    // acknowledged commit survived.
    {
      DbState next = state;
      const std::uint16_t survivors = next.recovered();
      if ((state.acked & ~survivors) != 0) {
        std::uint8_t lost = 0;
        for (std::uint8_t t = 1; t <= options.commits; ++t)
          if ((state.acked & bit(t)) && !(survivors & bit(t))) lost = t;
        DbState bad = state;
        violate(state, bad, "crash-recover",
                "acknowledged commit t" + std::to_string(lost) +
                    " lost at recovery");
        return result;
      }
      next.snapshot = survivors;
      next.wal.clear();
      next.durable_prefix = 0;
      next.torn = false;
      next.health.on_recover();
      if (!visit(state, std::move(next), "recover", depth)) return result;
    }
  }

  result.ok = true;
  return result;
}

}  // namespace fem2::analyze
