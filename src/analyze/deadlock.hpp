// Deadlock detection (pass 3b of fem2_analyze): wait-for-graph cycle
// detection over blocked tasks, plus idle-time starvation reports for
// waits nothing can ever satisfy (stranded replies, underfull collectors,
// unacknowledged reliable-transport frames).
//
// Scans run when the event engine goes idle: at that point every pending
// wait is definitely permanent, so reports carry no false positives.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/finding.hpp"
#include "navm/runtime.hpp"
#include "sysvm/os.hpp"

namespace fem2::analyze {

class DeadlockDetector {
 public:
  DeadlockDetector(sysvm::Os& os, navm::Runtime* runtime,
                   std::vector<Finding>& sink)
      : os_(os), runtime_(runtime), sink_(sink) {}

  /// Scan for wait cycles and permanently stuck tasks.  Call when the
  /// engine is idle (or from Analyzer::check_now).  Repeated scans dedup.
  void scan();

 private:
  void emit(Severity severity, std::string rule, std::string entity,
            std::string message, std::string evidence);

  sysvm::Os& os_;
  navm::Runtime* runtime_;
  std::vector<Finding>& sink_;
  std::set<std::string> reported_;
};

}  // namespace fem2::analyze
