// Static analysis of H-graph grammars themselves (pass 1 of fem2_analyze):
// undefined references, unreachable and unproductive nonterminals,
// duplicate productions, conflicting arc patterns, subsumed atom
// alternatives.  Findings carry the grammar source location recorded by
// grammar_parser.
#pragma once

#include <string_view>
#include <vector>

#include "analyze/finding.hpp"
#include "hgraph/grammar.hpp"

namespace fem2::analyze {

struct LintOptions {
  /// Entry points of the grammar.  Empty = infer: every nonterminal that no
  /// *other* rule references is a root (self-references don't count).
  std::vector<std::string> roots;
  /// Which VM layer to stamp on findings (display only).
  Layer layer = Layer::None;
};

/// Lint one grammar.  `grammar_name` labels findings ("navm", "sysvm", ...).
std::vector<Finding> lint_grammar(const hgraph::Grammar& grammar,
                                  std::string_view grammar_name,
                                  const LintOptions& options = {});

}  // namespace fem2::analyze
