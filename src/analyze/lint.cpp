#include "analyze/lint.hpp"

#include <deque>
#include <map>
#include <set>
#include <string>

namespace fem2::analyze {

namespace {

using hgraph::Alternative;
using hgraph::ArcPattern;
using hgraph::AtomKind;
using hgraph::Composite;
using hgraph::Grammar;
using hgraph::Multiplicity;
using hgraph::NonterminalRef;
using hgraph::Rule;
using hgraph::SourceLoc;

/// Nonterminals an alternative references (arc targets and aliases).
void collect_references(const Alternative& alt,
                        std::set<std::string>& out) {
  if (const auto* ref = std::get_if<NonterminalRef>(&alt)) {
    out.insert(ref->name);
    return;
  }
  if (const auto* comp = std::get_if<Composite>(&alt)) {
    for (const auto& pat : comp->arcs) out.insert(pat.nonterminal);
  }
}

bool alternatives_equal(const Alternative& a, const Alternative& b) {
  if (a.index() != b.index()) return false;
  if (const auto* ka = std::get_if<AtomKind>(&a))
    return *ka == *std::get_if<AtomKind>(&b);
  if (const auto* ra = std::get_if<NonterminalRef>(&a))
    return ra->name == std::get_if<NonterminalRef>(&b)->name;
  const auto& ca = *std::get_if<Composite>(&a);
  const auto& cb = *std::get_if<Composite>(&b);
  if (ca.own_atom != cb.own_atom || ca.open != cb.open ||
      ca.arcs.size() != cb.arcs.size())
    return false;
  for (std::size_t i = 0; i < ca.arcs.size(); ++i) {
    if (ca.arcs[i].label != cb.arcs[i].label ||
        ca.arcs[i].multiplicity != cb.arcs[i].multiplicity ||
        ca.arcs[i].nonterminal != cb.arcs[i].nonterminal)
      return false;
  }
  return true;
}

/// matches(a) is a subset of matches(b) for leaf atom alternatives.
bool atom_subsumed_by(AtomKind a, AtomKind b) {
  if (a == b) return true;
  if (b == AtomKind::Any) return true;
  return a == AtomKind::Int && b == AtomKind::Real;
}

class Linter {
 public:
  Linter(const Grammar& grammar, std::string_view grammar_name,
         const LintOptions& options)
      : grammar_(grammar), name_(grammar_name), options_(options) {}

  std::vector<Finding> run() {
    check_undefined();
    check_unreachable();
    check_unproductive();
    check_duplicate_productions();
    check_arc_conflicts();
    check_atom_conflicts();
    return std::move(findings_);
  }

 private:
  void emit(Severity severity, std::string rule, std::string entity,
            std::string message, const SourceLoc& loc) {
    Finding f;
    f.pass = Pass::GrammarLint;
    f.severity = severity;
    f.layer = options_.layer;
    f.rule = std::move(rule);
    f.entity = std::string(name_) + ":" + std::move(entity);
    f.message = std::move(message);
    f.evidence = "grammar source " + loc.to_string();
    findings_.push_back(std::move(f));
  }

  void check_undefined() {
    for (const auto& [name, rules] : grammar_.rules()) {
      for (const auto& rule : rules) {
        if (const auto* ref =
                std::get_if<NonterminalRef>(&rule.alternative)) {
          if (!grammar_.has_rule(ref->name)) {
            emit(Severity::Error, "undefined-nonterminal", name,
                 "alternative refers to undefined nonterminal '" + ref->name +
                     "'",
                 rule.loc);
          }
          continue;
        }
        const auto* comp = std::get_if<Composite>(&rule.alternative);
        if (comp == nullptr) continue;
        for (const auto& pat : comp->arcs) {
          if (!grammar_.has_rule(pat.nonterminal)) {
            emit(Severity::Error, "undefined-nonterminal", name,
                 "arc '" + pat.label + "' targets undefined nonterminal '" +
                     pat.nonterminal + "'",
                 pat.loc.known() ? pat.loc : rule.loc);
          }
        }
      }
    }
  }

  void check_unreachable() {
    // Roots: configured, or inferred as "referenced by no other rule".
    std::set<std::string> referenced_by_others;
    for (const auto& [name, rules] : grammar_.rules()) {
      std::set<std::string> refs;
      for (const auto& rule : rules) collect_references(rule.alternative, refs);
      refs.erase(name);  // self-recursion doesn't anchor reachability
      referenced_by_others.insert(refs.begin(), refs.end());
    }
    std::deque<std::string> frontier;
    if (!options_.roots.empty()) {
      for (const auto& r : options_.roots) frontier.push_back(r);
    } else {
      for (const auto& [name, rules] : grammar_.rules())
        if (!referenced_by_others.contains(name)) frontier.push_back(name);
    }
    if (frontier.empty()) {
      // Fully self-referential grammar: every nonterminal is referenced
      // by another, so no root can be inferred.  One explicit finding
      // beats flagging every nonterminal unreachable (or saying nothing).
      if (!grammar_.rules().empty()) {
        emit(Severity::Warning, "no-root", "",
             "no root nonterminal could be inferred (every nonterminal is "
             "referenced by another); pass explicit roots to lint "
             "reachability",
             grammar_.rules().begin()->second.empty()
                 ? SourceLoc{}
                 : grammar_.rules().begin()->second.front().loc);
      }
      return;
    }

    std::set<std::string> reached(frontier.begin(), frontier.end());
    while (!frontier.empty()) {
      const std::string name = std::move(frontier.front());
      frontier.pop_front();
      const auto it = grammar_.rules().find(name);
      if (it == grammar_.rules().end()) continue;
      std::set<std::string> refs;
      for (const auto& rule : it->second)
        collect_references(rule.alternative, refs);
      for (const auto& ref : refs) {
        if (Grammar::is_builtin(ref)) continue;
        if (reached.insert(ref).second) frontier.push_back(ref);
      }
    }
    for (const auto& [name, rules] : grammar_.rules()) {
      if (reached.contains(name)) continue;
      emit(Severity::Warning, "unreachable-nonterminal", name,
           "not reachable from any grammar root",
           rules.empty() ? SourceLoc{} : rules.front().loc);
    }
  }

  void check_unproductive() {
    // Least fixpoint: a nonterminal is productive if some alternative can
    // derive a finite object.  Atoms and aliases to builtins are the base;
    // a composite needs every mandatory (One-multiplicity) arc target
    // productive — Optional/Star/IndexedFamily arcs admit zero arcs, so
    // they never block productivity.
    std::set<std::string> productive;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, rules] : grammar_.rules()) {
        if (productive.contains(name)) continue;
        for (const auto& rule : rules) {
          if (alternative_productive(rule.alternative, productive)) {
            productive.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
    for (const auto& [name, rules] : grammar_.rules()) {
      if (productive.contains(name)) continue;
      emit(Severity::Warning, "unproductive-nonterminal", name,
           "derives no finite object (every alternative loops through a "
           "mandatory occurrence of an unproductive nonterminal)",
           rules.empty() ? SourceLoc{} : rules.front().loc);
    }
  }

  static bool alternative_productive(const Alternative& alt,
                                     const std::set<std::string>& productive) {
    if (std::holds_alternative<AtomKind>(alt)) return true;
    if (const auto* ref = std::get_if<NonterminalRef>(&alt)) {
      return Grammar::is_builtin(ref->name) || productive.contains(ref->name);
    }
    const auto& comp = std::get<Composite>(alt);
    for (const auto& pat : comp.arcs) {
      if (pat.multiplicity != Multiplicity::One) continue;
      if (Grammar::is_builtin(pat.nonterminal)) continue;
      if (!productive.contains(pat.nonterminal)) return false;
    }
    return true;
  }

  void check_duplicate_productions() {
    for (const auto& [name, rules] : grammar_.rules()) {
      for (std::size_t i = 0; i < rules.size(); ++i) {
        for (std::size_t j = i + 1; j < rules.size(); ++j) {
          if (alternatives_equal(rules[i].alternative,
                                 rules[j].alternative)) {
            emit(Severity::Warning, "duplicate-production", name,
                 "alternative " + std::to_string(j + 1) +
                     " repeats alternative " + std::to_string(i + 1) +
                     " (first defined at " + rules[i].loc.to_string() + ")",
                 rules[j].loc);
          }
        }
      }
    }
  }

  void check_arc_conflicts() {
    // Two patterns with the same label inside one composite are ambiguous:
    // matching is first-pattern-wins, so the second can never bind an arc
    // the first already claimed, and an indexed family plus a plain label
    // of the same name fight over `label[i]` vs `label`.
    for (const auto& [name, rules] : grammar_.rules()) {
      for (const auto& rule : rules) {
        const auto* comp = std::get_if<Composite>(&rule.alternative);
        if (comp == nullptr) continue;
        std::map<std::string, const ArcPattern*> seen;
        for (const auto& pat : comp->arcs) {
          const auto [it, inserted] = seen.emplace(pat.label, &pat);
          if (!inserted) {
            emit(Severity::Error, "conflicting-arc-pattern", name,
                 "arc label '" + pat.label +
                     "' appears twice in one composite (first at " +
                     (it->second->loc.known() ? it->second->loc : rule.loc)
                         .to_string() +
                     ")",
                 pat.loc.known() ? pat.loc : rule.loc);
          }
        }
      }
    }
  }

  void check_atom_conflicts() {
    // Leaf-atom alternatives: if an earlier-or-later alternative accepts a
    // superset of another's atoms, the narrower one is dead weight (REAL
    // accepts INT; ANY accepts everything).
    for (const auto& [name, rules] : grammar_.rules()) {
      for (std::size_t i = 0; i < rules.size(); ++i) {
        const auto* ka = std::get_if<AtomKind>(&rules[i].alternative);
        if (ka == nullptr) continue;
        for (std::size_t j = 0; j < rules.size(); ++j) {
          if (i == j) continue;
          const auto* kb = std::get_if<AtomKind>(&rules[j].alternative);
          if (kb == nullptr || *ka == *kb) continue;
          if (atom_subsumed_by(*ka, *kb)) {
            emit(Severity::Warning, "atom-conflict", name,
                 std::string("alternative ") +
                     std::string(atom_kind_name(*ka)) + " is subsumed by " +
                     std::string(atom_kind_name(*kb)) + " (defined at " +
                     rules[j].loc.to_string() + ")",
                 rules[i].loc);
          }
        }
      }
    }
  }

  const Grammar& grammar_;
  std::string_view name_;
  const LintOptions& options_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_grammar(const hgraph::Grammar& grammar,
                                  std::string_view grammar_name,
                                  const LintOptions& options) {
  return Linter(grammar, grammar_name, options).run();
}

}  // namespace fem2::analyze
