// Static spec verification (fem2_analyze --verify): three passes that
// check the repo's own formal specifications without running the system.
//
//   1. Grammar language algorithms (hgraph/grammar_algorithms.hpp):
//      emptiness/productivity per nonterminal, a minimal finite witness
//      H-graph per productive nonterminal (checked back against the
//      conformance recognizer, so generator and recognizer validate each
//      other), and the refinement obligation that the db engine grammar
//      refines the abstract storage fragment of the appvm grammar.
//
//   2. Transformation-rule type preservation: each registered transform's
//      declarative RuleSpec (hgraph/rulespec.hpp) is abstractly
//      interpreted over grammar nonterminals, proving that the rule maps
//      grammar-conforming inputs to grammar-conforming outputs.  A rule
//      that can break its layer's grammar becomes a Finding carrying the
//      rule's registration SourceLoc.
//
//   3. Bounded protocol model checking (analyze/model_check.hpp) of the
//      reliable messaging protocol and the db health lifecycle.
//
// All three emit the common Finding record; a clean spec produces zero
// findings.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "analyze/finding.hpp"
#include "analyze/model_check.hpp"
#include "hgraph/grammar.hpp"
#include "hgraph/transform.hpp"

namespace fem2::analyze {

struct VerifyOptions {
  bool grammar_language = true;
  bool type_preservation = true;
  bool protocols = true;
  MessagingModelOptions messaging;
  HealthModelOptions db_health;
};

struct VerifyStats {
  std::size_t grammars = 0;
  std::size_t nonterminals = 0;
  std::size_t witnesses = 0;
  std::size_t refinement_pairs = 0;
  std::size_t rules = 0;
  std::size_t paths = 0;
  std::size_t protocol_states = 0;
  std::size_t protocol_transitions = 0;
};

/// Pass 1 on one grammar: well-formedness, productivity of every
/// nonterminal, and witness generation cross-checked against conforms().
std::vector<Finding> verify_grammar(const hgraph::Grammar& grammar,
                                    Layer layer,
                                    VerifyStats* stats = nullptr);

/// Pass 1 refinement obligation: L_impl(impl_root) within L_spec(spec_root).
std::vector<Finding> verify_refinement(const hgraph::Grammar& impl,
                                       std::string_view impl_root,
                                       Layer impl_layer,
                                       const hgraph::Grammar& spec,
                                       std::string_view spec_root,
                                       VerifyStats* stats = nullptr);

/// Pass 2 on one transform registry: abstract interpretation of every
/// registered rule's RuleSpec against the registry's grammar.
std::vector<Finding> verify_transforms(
    const hgraph::TransformRegistry& registry, Layer layer,
    VerifyStats* stats = nullptr);

/// Everything --verify runs: passes 1 and 2 over the repo's layer
/// grammars and transform registry, pass 3 over the two protocols.
struct VerifyReport {
  std::vector<Finding> findings;
  VerifyStats stats;
  ModelCheckResult messaging;
  ModelCheckResult db_health;
};

VerifyReport verify_specs(const VerifyOptions& options = {});

}  // namespace fem2::analyze
