#include "analyze/finding.hpp"

#include "support/check.hpp"

namespace fem2::analyze {

std::string_view pass_name(Pass p) {
  switch (p) {
    case Pass::GrammarLint: return "grammar-lint";
    case Pass::Conformance: return "conformance";
    case Pass::Race: return "race";
    case Pass::Deadlock: return "deadlock";
    case Pass::Verification: return "verify";
    case Pass::ModelCheck: return "model-check";
  }
  FEM2_UNREACHABLE("bad Pass");
}

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  FEM2_UNREACHABLE("bad Severity");
}

std::string_view layer_name(Layer l) {
  switch (l) {
    case Layer::Appvm: return "appvm";
    case Layer::Db: return "db";
    case Layer::Navm: return "navm";
    case Layer::Sysvm: return "sysvm";
    case Layer::Hw: return "hw";
    case Layer::None: return "-";
  }
  FEM2_UNREACHABLE("bad Layer");
}

std::string Finding::to_string() const {
  std::string out;
  out += severity_name(severity);
  out += " [";
  out += pass_name(pass);
  out += "/";
  out += layer_name(layer);
  out += "] ";
  out += rule;
  if (!entity.empty()) {
    out += " (";
    out += entity;
    out += ")";
  }
  out += ": ";
  out += message;
  if (!evidence.empty()) {
    out += "\n    evidence: ";
    out += evidence;
  }
  return out;
}

std::size_t count_at_least(const std::vector<Finding>& findings,
                           Severity min) {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.severity >= min) ++n;
  return n;
}

}  // namespace fem2::analyze
