// Happens-before race detection (pass 3a of fem2_analyze).
//
// Actors are sysvm tasks.  Each task carries a vector clock, ticked at the
// start of every executed step.  Happens-before edges are induced by the
// seven-message protocol:
//
//   initiate          sender's clock at send  -> child's initial clock
//   resume-child      sender's clock          -> child on delivery
//   pause-notify      child's clock           -> parent on delivery
//   terminate-notify  child's final clock     -> parent on delivery
//   remote-call       caller's clock          -> procedure execution
//   remote-return     procedure's clock       -> caller on delivery
//   collector         deposit clocks joined   -> owner on collector_take
//
// Window reads/writes (the only shared-memory accesses the navm layer
// admits) are recorded as FastTrack-style epochs against per-array access
// histories; two accesses to overlapping rectangles where at least one is
// a write and neither epoch is ordered before the other's clock race.
//
// Clock stamps are taken when a buffered send is applied (the step that
// produced it has fully executed), and merged when the kernel decodes the
// message — an over-approximation of the true HB order that can miss
// exotic races but reports no false positives on protocol-disciplined
// programs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/clock.hpp"
#include "analyze/finding.hpp"
#include "navm/window.hpp"
#include "sysvm/message.hpp"

namespace fem2::analyze {

struct RaceOptions {
  /// Access records kept per array (FIFO eviction).
  std::size_t history_limit = 512;
};

class RaceDetector {
 public:
  explicit RaceDetector(RaceOptions options, std::vector<Finding>& sink)
      : options_(options), sink_(sink) {}

  // --- OS-side events -----------------------------------------------------
  void task_created(sysvm::TaskId task, sysvm::TaskId parent);
  void step_begin(sysvm::TaskId task);
  void step_end(sysvm::TaskId task);
  void task_send(sysvm::TaskId from, const sysvm::Message& message);
  void message_delivered(const sysvm::Message& message);
  void procedure_begin(const sysvm::MsgRemoteCall& call);
  void procedure_end(const sysvm::MsgRemoteCall& call);

  // --- navm-side events ---------------------------------------------------
  void array_read(const navm::Window& window);
  void array_write(const navm::Window& window);
  void deposit(std::uint64_t collector, sysvm::TaskId depositor);
  void collector_take(std::uint64_t collector, sysvm::TaskId owner);

  std::uint64_t accesses_tracked() const { return accesses_tracked_; }

 private:
  struct Access {
    Epoch epoch;          ///< actor + its clock at access time
    navm::Window window;  ///< rectangle touched
    bool write = false;
  };
  struct ArrayHistory {
    std::deque<Access> accesses;
  };
  /// Who is executing host code right now: a task step (clock lives in
  /// clocks_) or a remote procedure (clock snapshotted from the call stamp).
  struct ExecContext {
    sysvm::TaskId actor = sysvm::kNoTask;
    bool is_procedure = false;
    VectorClock proc_clock;  ///< only for procedures
  };

  const VectorClock& current_clock();
  void record_access(const navm::Window& window, bool write);
  void report_race(const Access& prev, const Access& now, bool now_write,
                   navm::ArrayId array);

  RaceOptions options_;
  std::vector<Finding>& sink_;

  std::map<sysvm::TaskId, VectorClock> clocks_;
  std::optional<ExecContext> exec_;

  // Send-time stamps, keyed by how the receiver will identify the edge.
  std::map<sysvm::TaskId, VectorClock> init_stamps_;    ///< by child id
  std::map<sysvm::TaskId, std::deque<VectorClock>> resume_stamps_;
  std::map<sysvm::TaskId, VectorClock> pause_stamps_;   ///< by child id
  std::map<sysvm::TaskId, VectorClock> term_stamps_;    ///< by child id
  std::map<sysvm::CallToken, VectorClock> call_stamps_;
  std::map<sysvm::CallToken, VectorClock> return_stamps_;
  std::map<std::uint64_t, VectorClock> collector_clocks_;

  std::map<navm::ArrayId, ArrayHistory> histories_;
  std::set<std::string> reported_;  ///< dedup key per (array, actor pair)
  std::uint64_t accesses_tracked_ = 0;
};

}  // namespace fem2::analyze
