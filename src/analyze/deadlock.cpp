#include "analyze/deadlock.hpp"

#include <algorithm>
#include <map>

namespace fem2::analyze {

namespace {

std::string task_label(const sysvm::Os& os, sysvm::TaskId id) {
  std::string out = "task " + std::to_string(id);
  if (os.task_known(id)) {
    out += " (" + os.task_info(id).type + ")";
  }
  return out;
}

std::string wait_description(const sysvm::Os::WaitInfo& info) {
  using Kind = sysvm::Os::WaitInfo::Kind;
  switch (info.kind) {
    case Kind::None:
      return "not waiting";
    case Kind::Reply:
      return "blocked on reply to call token " + std::to_string(info.token);
    case Kind::ChildTerminations:
      return "blocked for " + std::to_string(info.count) +
             " child termination(s), " + std::to_string(info.satisfied) +
             " banked";
    case Kind::ChildPauses:
      return "blocked for " + std::to_string(info.count) +
             " child pause(s), " + std::to_string(info.satisfied) + " banked";
    case Kind::Pause:
      return "paused, waiting for a resume";
  }
  return "unknown wait";
}

}  // namespace

void DeadlockDetector::emit(Severity severity, std::string rule,
                            std::string entity, std::string message,
                            std::string evidence) {
  const std::string key = rule + "/" + entity + "/" + message;
  if (!reported_.insert(key).second) return;
  Finding f;
  f.pass = Pass::Deadlock;
  f.severity = severity;
  f.layer = Layer::Sysvm;
  f.rule = std::move(rule);
  f.entity = std::move(entity);
  f.message = std::move(message);
  f.evidence = std::move(evidence);
  sink_.push_back(std::move(f));
}

void DeadlockDetector::scan() {
  using Kind = sysvm::Os::WaitInfo::Kind;

  // Group unfinished tasks and parent->children once.
  std::vector<sysvm::TaskId> live;
  std::map<sysvm::TaskId, std::vector<sysvm::TaskId>> children;
  for (const sysvm::TaskId id : os_.task_ids()) {
    const auto info = os_.task_info(id);
    if (info.state == sysvm::TaskState::Finished) continue;
    live.push_back(id);
    if (info.parent != sysvm::kNoTask) children[info.parent].push_back(id);
  }
  if (live.empty()) return;

  // Wait-for edges.  A child-termination (or child-pause) waiter waits on
  // every unfinished (unpaused) child; a paused task waits on its parent,
  // the only principal that resumes it in the task-tree protocol.
  std::map<sysvm::TaskId, std::vector<sysvm::TaskId>> edges;
  std::map<sysvm::TaskId, sysvm::Os::WaitInfo> waits;
  for (const sysvm::TaskId id : live) {
    const auto info = os_.task_info(id);
    const auto wait = os_.wait_info(id);
    waits[id] = wait;
    switch (wait.kind) {
      case Kind::ChildTerminations:
        for (const sysvm::TaskId c : children[id]) edges[id].push_back(c);
        break;
      case Kind::ChildPauses:
        for (const sysvm::TaskId c : children[id]) {
          if (os_.task_state(c) != sysvm::TaskState::Paused)
            edges[id].push_back(c);
        }
        break;
      case Kind::Pause:
        if (info.parent != sysvm::kNoTask && os_.task_known(info.parent) &&
            !os_.task_finished(info.parent))
          edges[id].push_back(info.parent);
        break;
      case Kind::Reply:
      case Kind::None:
        break;
    }
  }

  // Cycle detection: iterative DFS with colors.
  std::map<sysvm::TaskId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<sysvm::TaskId> stack;
  for (const sysvm::TaskId root : live) {
    if (color[root] != 0) continue;
    std::vector<std::pair<sysvm::TaskId, std::size_t>> dfs{{root, 0}};
    stack.clear();
    color[root] = 1;
    stack.push_back(root);
    while (!dfs.empty()) {
      auto& [node, next] = dfs.back();
      const auto& out = edges[node];
      if (next >= out.size()) {
        color[node] = 2;
        stack.pop_back();
        dfs.pop_back();
        continue;
      }
      const sysvm::TaskId target = out[next++];
      if (color[target] == 1) {
        // Found a cycle: the suffix of `stack` from `target`.
        const auto begin =
            std::find(stack.begin(), stack.end(), target);
        std::vector<sysvm::TaskId> cycle(begin, stack.end());
        // Canonicalize: rotate the smallest id first so dedup is stable.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        std::string names;
        std::string detail;
        for (const sysvm::TaskId id : cycle) {
          if (!names.empty()) names += " -> ";
          names += std::to_string(id);
          if (!detail.empty()) detail += "; ";
          detail += task_label(os_, id) + " " + wait_description(waits[id]);
        }
        names += " -> " + std::to_string(cycle.front());
        emit(Severity::Error, "wait-cycle", "tasks " + names,
             "tasks form a wait-for cycle; none can ever run again",
             detail);
      } else if (color[target] == 0) {
        color[target] = 1;
        stack.push_back(target);
        dfs.emplace_back(target, 0);
      }
    }
  }

  // Starvation reports need certainty: only meaningful once the event
  // queue has drained (nothing in flight can still satisfy a wait).
  if (!os_.machine().engine().idle()) return;

  const auto pending = os_.pending_call_infos();
  for (const sysvm::TaskId id : live) {
    const auto& wait = waits[id];
    if (wait.kind == Kind::None) {
      // Ready/Running at idle: starved of a PE — its cluster must be dead.
      emit(Severity::Error, "stalled-task", task_label(os_, id),
           "runnable at simulation idle but never scheduled (its cluster "
           "has no serving kernel)",
           "state " + std::string(sysvm::task_state_name(os_.task_state(id))));
      continue;
    }
    if (wait.kind == Kind::Reply) {
      std::string where = "no pending call records the token";
      for (const auto& call : pending) {
        if (call.token == wait.token) {
          where = "call to cluster " +
                  std::to_string(call.destination.index) +
                  " never returned";
          break;
        }
      }
      emit(Severity::Error, "stranded-reply", task_label(os_, id),
           wait_description(wait) + " that can no longer arrive", where);
      continue;
    }
    emit(Severity::Error, "starved-wait", task_label(os_, id),
         wait_description(wait) + " at simulation idle; no source remains",
         "");
  }

  if (runtime_ != nullptr) {
    for (const auto& c : runtime_->collector_infos()) {
      if (!c.armed || c.deposited >= c.expected) continue;
      emit(Severity::Error, "underfull-collector",
           "collector " + std::to_string(c.id),
           "armed with " + std::to_string(c.deposited) + "/" +
               std::to_string(c.expected) +
               " deposits at simulation idle; owner " +
               task_label(os_, c.owner) + " waits forever",
           "");
    }
  }

  for (const auto& backlog : os_.transport_backlog()) {
    emit(Severity::Warning, "unacked-frames",
         "channel " + std::to_string(backlog.source.index) + "->" +
             std::to_string(backlog.destination.index),
         std::to_string(backlog.unacked) +
             " reliable-transport frame(s) unacknowledged at simulation "
             "idle",
         "");
  }
}

}  // namespace fem2::analyze
