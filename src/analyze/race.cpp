#include "analyze/race.hpp"

namespace fem2::analyze {

namespace {

bool windows_overlap(const navm::Window& a, const navm::Window& b) {
  if (a.array != b.array) return false;
  const bool rows = a.row0 < b.row0 + b.rows && b.row0 < a.row0 + a.rows;
  const bool cols = a.col0 < b.col0 + b.cols && b.col0 < a.col0 + a.cols;
  return rows && cols;
}

std::string window_to_string(const navm::Window& w) {
  return "array " + std::to_string(w.array) + " [" + std::to_string(w.row0) +
         ":" + std::to_string(w.row0 + w.rows) + ", " +
         std::to_string(w.col0) + ":" + std::to_string(w.col0 + w.cols) + ")";
}

}  // namespace

void RaceDetector::task_created(sysvm::TaskId task, sysvm::TaskId parent) {
  (void)parent;
  auto& clock = clocks_[task];
  if (const auto it = init_stamps_.find(task); it != init_stamps_.end()) {
    clock.merge(it->second);
    init_stamps_.erase(it);
  }
  clock.tick(task);
}

void RaceDetector::step_begin(sysvm::TaskId task) {
  clocks_[task].tick(task);
  exec_ = ExecContext{task, false, {}};
}

void RaceDetector::step_end(sysvm::TaskId task) {
  (void)task;
  exec_.reset();
}

void RaceDetector::task_send(sysvm::TaskId from,
                             const sysvm::Message& message) {
  const VectorClock& clock = clocks_[from];
  if (const auto* init = std::get_if<sysvm::MsgInitiate>(&message)) {
    init_stamps_[init->task] = clock;
  } else if (const auto* resume =
                 std::get_if<sysvm::MsgResumeChild>(&message)) {
    resume_stamps_[resume->child].push_back(clock);
  } else if (const auto* pause =
                 std::get_if<sysvm::MsgPauseNotify>(&message)) {
    pause_stamps_[pause->child] = clock;
  } else if (const auto* term =
                 std::get_if<sysvm::MsgTerminateNotify>(&message)) {
    term_stamps_[term->child] = clock;
  } else if (const auto* call = std::get_if<sysvm::MsgRemoteCall>(&message)) {
    call_stamps_[call->token] = clock;
  }
}

void RaceDetector::message_delivered(const sysvm::Message& message) {
  if (const auto* resume = std::get_if<sysvm::MsgResumeChild>(&message)) {
    auto it = resume_stamps_.find(resume->child);
    if (it != resume_stamps_.end() && !it->second.empty()) {
      clocks_[resume->child].merge(it->second.front());
      it->second.pop_front();
    }
  } else if (const auto* pause =
                 std::get_if<sysvm::MsgPauseNotify>(&message)) {
    if (const auto it = pause_stamps_.find(pause->child);
        it != pause_stamps_.end()) {
      clocks_[pause->parent].merge(it->second);
      pause_stamps_.erase(it);
    }
  } else if (const auto* term =
                 std::get_if<sysvm::MsgTerminateNotify>(&message)) {
    if (const auto it = term_stamps_.find(term->child);
        it != term_stamps_.end()) {
      clocks_[term->parent].merge(it->second);
      term_stamps_.erase(it);
    }
  } else if (const auto* ret = std::get_if<sysvm::MsgRemoteReturn>(&message)) {
    if (const auto it = return_stamps_.find(ret->token);
        it != return_stamps_.end()) {
      clocks_[ret->caller].merge(it->second);
      return_stamps_.erase(it);
    }
  }
}

void RaceDetector::procedure_begin(const sysvm::MsgRemoteCall& call) {
  ExecContext ctx;
  ctx.actor = call.caller;
  ctx.is_procedure = true;
  if (const auto it = call_stamps_.find(call.token);
      it != call_stamps_.end()) {
    ctx.proc_clock = it->second;
  }
  exec_ = std::move(ctx);
}

void RaceDetector::procedure_end(const sysvm::MsgRemoteCall& call) {
  if (exec_ && exec_->is_procedure) {
    return_stamps_[call.token] = std::move(exec_->proc_clock);
  }
  exec_.reset();
}

const VectorClock& RaceDetector::current_clock() {
  if (exec_->is_procedure) return exec_->proc_clock;
  return clocks_[exec_->actor];
}

void RaceDetector::array_read(const navm::Window& window) {
  record_access(window, /*write=*/false);
}

void RaceDetector::array_write(const navm::Window& window) {
  record_access(window, /*write=*/true);
}

void RaceDetector::record_access(const navm::Window& window, bool write) {
  // Accesses outside any observed execution context come from the host
  // harness (result extraction, test assertions) — not simulated actors.
  if (!exec_) return;
  ++accesses_tracked_;
  const VectorClock& clock = current_clock();
  const Epoch epoch = clock.epoch(exec_->actor);

  auto& history = histories_[window.array];
  for (const auto& prev : history.accesses) {
    if (!write && !prev.write) continue;        // read-read never races
    if (prev.epoch.actor == epoch.actor) continue;  // program order
    if (!windows_overlap(prev.window, window)) continue;
    if (clock.ordered_before(prev.epoch)) continue;  // happens-before
    report_race(prev, Access{epoch, window, write}, write, window.array);
  }

  history.accesses.push_back(Access{epoch, window, write});
  if (history.accesses.size() > options_.history_limit)
    history.accesses.pop_front();
}

void RaceDetector::report_race(const Access& prev, const Access& now,
                               bool now_write, navm::ArrayId array) {
  const std::string kind = prev.write && now_write ? "write-write-race"
                           : prev.write || now_write ? "read-write-race"
                                                     : "read-read";
  // One report per (array, unordered actor pair, kind): iterative solvers
  // repeat the same racy pattern every sweep.
  const std::uint64_t lo = std::min(prev.epoch.actor, now.epoch.actor);
  const std::uint64_t hi = std::max(prev.epoch.actor, now.epoch.actor);
  const std::string key = std::to_string(array) + "/" + std::to_string(lo) +
                          "/" + std::to_string(hi) + "/" + kind;
  if (!reported_.insert(key).second) return;

  Finding f;
  f.pass = Pass::Race;
  f.severity = Severity::Error;
  f.layer = Layer::Navm;
  f.rule = kind;
  f.entity = "array " + std::to_string(array);
  f.message = std::string(prev.write ? "write" : "read") + " by task " +
              std::to_string(prev.epoch.actor) + " on " +
              window_to_string(prev.window) + " is unordered with " +
              (now_write ? "write" : "read") + " by task " +
              std::to_string(now.epoch.actor) + " on " +
              window_to_string(now.window);
  f.evidence = "epochs " + std::to_string(prev.epoch.actor) + "@" +
               std::to_string(prev.epoch.clock) + " vs " +
               std::to_string(now.epoch.actor) + "@" +
               std::to_string(now.epoch.clock) + ", accessor clock " +
               current_clock().to_string();
  sink_.push_back(std::move(f));
}

void RaceDetector::deposit(std::uint64_t collector, sysvm::TaskId depositor) {
  (void)depositor;
  // The deposit executes inside the navm.collect procedure; joining the
  // execution context's clock into the collector accumulates every
  // depositor's history for the owner's take (the barrier join).
  if (!exec_) return;
  collector_clocks_[collector].merge(current_clock());
}

void RaceDetector::collector_take(std::uint64_t collector,
                                  sysvm::TaskId owner) {
  const auto it = collector_clocks_.find(collector);
  if (it == collector_clocks_.end()) return;
  clocks_[owner].merge(it->second);
  collector_clocks_.erase(it);
}

}  // namespace fem2::analyze
