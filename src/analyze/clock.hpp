// Vector clocks over task ids, the happens-before backbone of the race
// detector.  Sparse (map-based): the simulator creates task ids eagerly but
// most clocks only ever carry entries for the handful of tasks whose
// history reaches them.
//
// Access records use FastTrack-style epochs: an access by actor `a` at
// clock value `c` happened-before a later point iff that point's clock has
// component(a) >= c — no full vector comparison needed per check.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace fem2::analyze {

/// One component of a vector clock: (actor, count).
struct Epoch {
  std::uint64_t actor = 0;
  std::uint64_t clock = 0;
};

class VectorClock {
 public:
  void tick(std::uint64_t actor) { ++components_[actor]; }

  std::uint64_t component(std::uint64_t actor) const {
    const auto it = components_.find(actor);
    return it == components_.end() ? 0 : it->second;
  }

  Epoch epoch(std::uint64_t actor) const {
    return {actor, component(actor)};
  }

  /// Pointwise max (receive / barrier release).
  void merge(const VectorClock& other) {
    for (const auto& [actor, count] : other.components_) {
      auto& mine = components_[actor];
      if (count > mine) mine = count;
    }
  }

  /// The event recorded as `e` happened-before this point.
  bool ordered_before(const Epoch& e) const {
    return component(e.actor) >= e.clock;
  }

  bool empty() const { return components_.empty(); }
  void clear() { components_.clear(); }

  /// "{3:5, 7:2}" — components in actor order.
  std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [actor, count] : components_) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(actor) + ":" + std::to_string(count);
    }
    out += "}";
    return out;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> components_;
};

}  // namespace fem2::analyze
