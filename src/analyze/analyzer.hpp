// fem2::analyze::Analyzer — single facade over the three analysis passes:
//
//   1. Grammar lint      (lint.hpp)      static, on the layer grammars
//   2. Spec conformance  (conform.hpp)   H-graph snapshots vs layer grammars
//   3. Race + deadlock   (race.hpp,      happens-before vector clocks and
//                         deadlock.hpp)  wait-for-graph cycle detection
//
// Construction attaches the analyzer to a live navm::Runtime: it installs
// itself as the OS and runtime observer and hooks the event engine's
// quiescent/idle points.  Destruction detaches everything, so the analyzer
// can be scoped around just the region of a run under scrutiny.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analyze/conform.hpp"
#include "analyze/deadlock.hpp"
#include "analyze/finding.hpp"
#include "analyze/lint.hpp"
#include "analyze/race.hpp"
#include "navm/runtime.hpp"
#include "sysvm/observe.hpp"
#include "sysvm/os.hpp"

namespace fem2::analyze {

struct AnalyzerOptions {
  bool conformance = true;
  bool race_detection = true;
  bool deadlock_detection = true;
  /// Conformance snapshots every Nth engine quiescent point.
  std::size_t snapshot_stride = 64;
  /// Check each decoded sysvm message against the `message` production.
  bool check_messages = true;
  /// Access records kept per array by the race detector.
  std::size_t race_history_limit = 512;
};

struct AnalyzerStats {
  std::uint64_t quiescent_points = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t graphs_checked = 0;
  std::uint64_t messages_checked = 0;
  std::uint64_t accesses_tracked = 0;
  std::uint64_t steps_observed = 0;
};

class Analyzer final : public sysvm::OsObserver, public navm::RuntimeObserver {
 public:
  explicit Analyzer(navm::Runtime& runtime, AnalyzerOptions options = {});
  ~Analyzer() override;

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Lint all four layer grammars (pass 1).  Static: needs no live system.
  static std::vector<Finding> lint_layer_grammars();

  /// Replace a layer's conformance grammar (tests seed violations).
  void set_layer_grammar(Layer layer, hgraph::Grammar grammar);

  /// Force a full conformance snapshot and deadlock scan right now.
  void check_now();

  const std::vector<Finding>& findings() const { return findings_; }
  /// Errors (not warnings/infos) accumulated so far.
  std::size_t error_count() const {
    return count_at_least(findings_, Severity::Error);
  }
  AnalyzerStats stats() const;

  // --- sysvm::OsObserver --------------------------------------------------
  void on_task_created(sysvm::TaskId task, sysvm::TaskId parent) override;
  void on_task_finished(sysvm::TaskId task) override;
  void on_step_begin(sysvm::TaskId task) override;
  void on_step_end(sysvm::TaskId task) override;
  void on_task_send(sysvm::TaskId from, hw::ClusterId to,
                    const sysvm::Message& message) override;
  void on_message(hw::ClusterId cluster, const sysvm::Message& message) override;
  void on_procedure_begin(const sysvm::MsgRemoteCall& call,
                          hw::ClusterId cluster) override;
  void on_procedure_end(const sysvm::MsgRemoteCall& call,
                        hw::ClusterId cluster) override;

  // --- navm::RuntimeObserver ----------------------------------------------
  void on_array_read(const navm::Window& window) override;
  void on_array_write(const navm::Window& window) override;
  void on_deposit(std::uint64_t collector, sysvm::TaskId depositor) override;
  void on_collector_take(std::uint64_t collector,
                         sysvm::TaskId owner) override;

 private:
  navm::Runtime& runtime_;
  sysvm::Os& os_;
  AnalyzerOptions options_;

  std::vector<Finding> findings_;
  ConformanceChecker conformance_;
  RaceDetector race_;
  DeadlockDetector deadlock_;

  std::uint64_t quiescent_points_ = 0;
  std::uint64_t steps_observed_ = 0;
};

}  // namespace fem2::analyze
