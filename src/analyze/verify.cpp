#include "analyze/verify.hpp"

#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "hgraph/grammar_algorithms.hpp"
#include "hgraph/rulespec.hpp"
#include "spec/layers.hpp"
#include "spec/transforms.hpp"

namespace fem2::analyze {

namespace {

using hgraph::Alternative;
using hgraph::AtomKind;
using hgraph::Composite;
using hgraph::Grammar;
using hgraph::Multiplicity;
using hgraph::NonterminalRef;
using hgraph::RuleOp;
using hgraph::RuleSpec;
using hgraph::SimulationRelation;

/// Atom kind `a` acceptable where `b` is required (REAL accepts INT; ANY
/// accepts everything) — mirrors the conformance recognizer.
bool atom_subsumed(AtomKind a, AtomKind b) {
  return a == b || b == AtomKind::Any ||
         (a == AtomKind::Int && b == AtomKind::Real);
}

AtomKind builtin_kind(std::string_view name) {
  if (name == "NIL") return AtomKind::Nil;
  if (name == "INT") return AtomKind::Int;
  if (name == "REAL") return AtomKind::Real;
  if (name == "STRING") return AtomKind::String;
  return AtomKind::Any;
}

/// The alternatives of `nt` with alias chains flattened: composite
/// patterns and bare atom constraints.
struct FlatAlts {
  std::vector<const Composite*> composites;
  std::vector<AtomKind> atoms;
  bool defined = false;
};

void flatten_into(const Grammar& g, const std::string& nt, FlatAlts& out,
                  std::set<std::string>& seen) {
  if (!seen.insert(nt).second) return;
  if (Grammar::is_builtin(nt)) {
    out.defined = true;
    out.atoms.push_back(builtin_kind(nt));
    return;
  }
  const auto it = g.rules().find(nt);
  if (it == g.rules().end()) return;
  out.defined = true;
  for (const auto& rule : it->second) {
    if (const auto* atom = std::get_if<AtomKind>(&rule.alternative)) {
      out.atoms.push_back(*atom);
    } else if (const auto* comp =
                   std::get_if<Composite>(&rule.alternative)) {
      out.composites.push_back(comp);
    } else if (const auto* ref =
                   std::get_if<NonterminalRef>(&rule.alternative)) {
      flatten_into(g, ref->name, out, seen);
    }
  }
}

FlatAlts flatten(const Grammar& g, const std::string& nt) {
  FlatAlts out;
  std::set<std::string> seen;
  flatten_into(g, nt, out, seen);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: abstract interpretation of RuleSpecs

/// An abstract H-graph value: a node known to conform to a nonterminal, a
/// bare atom, or a node under construction (arcs/families accumulated so
/// far, held in an arena so aliases share mutations).
struct AbsValue {
  enum class Kind { Nonterminal, Atom, Node };
  Kind kind = Kind::Nonterminal;
  std::string nt;
  AtomKind atom = AtomKind::Nil;
  std::size_t node = 0;

  static AbsValue of_nt(std::string name) {
    AbsValue v;
    v.kind = Kind::Nonterminal;
    v.nt = std::move(name);
    return v;
  }
  static AbsValue of_atom(AtomKind k) {
    AbsValue v;
    v.kind = Kind::Atom;
    v.atom = k;
    return v;
  }
  static AbsValue of_node(std::size_t index) {
    AbsValue v;
    v.kind = Kind::Node;
    v.node = index;
    return v;
  }

  std::string describe() const {
    switch (kind) {
      case Kind::Nonterminal: return "<" + nt + ">";
      case Kind::Atom: return std::string(hgraph::atom_kind_name(atom));
      case Kind::Node: return "<node under construction>";
    }
    return "?";
  }
};

struct AbsNode {
  std::vector<std::pair<std::string, AbsValue>> arcs;
  std::map<std::string, std::vector<AbsValue>> families;
  std::string sealed_nt;  ///< non-empty once proven to conform
};

/// Abstractly interprets one registry's rule specs against its grammar.
class AbstractInterpreter {
 public:
  explicit AbstractInterpreter(const Grammar& grammar)
      : g_(grammar), sim_(grammar, grammar) {}

  /// True when `value` is acceptable where nonterminal `target` is
  /// required; on failure `why` explains.
  bool conforms(const AbsValue& value, const std::string& target,
                std::string& why) {
    switch (value.kind) {
      case AbsValue::Kind::Nonterminal:
        if (value.nt == target || sim_.holds(value.nt, target)) return true;
        why = "a " + value.describe() + " is not provably a <" + target +
              ">: " + sim_.explain(value.nt, target);
        return false;
      case AbsValue::Kind::Atom: {
        const FlatAlts alts = flatten(g_, target);
        if (!alts.defined) {
          why = "target nonterminal <" + target + "> is undefined";
          return false;
        }
        for (const AtomKind k : alts.atoms)
          if (atom_subsumed(value.atom, k)) return true;
        why = "a " + value.describe() + " atom is not admitted by <" +
              target + ">";
        return false;
      }
      case AbsValue::Kind::Node:
        return seal(value.node, target, why);
    }
    return false;
  }

  /// Prove the node under construction conforms to `target` (and remember
  /// the proof: later family appends check against the sealed type).
  bool seal(std::size_t index, const std::string& target, std::string& why) {
    if (!nodes_[index].sealed_nt.empty()) {
      return conforms(AbsValue::of_nt(nodes_[index].sealed_nt), target, why);
    }
    const FlatAlts alts = flatten(g_, target);
    if (!alts.defined) {
      why = "target nonterminal <" + target + "> is undefined";
      return false;
    }
    // A fresh node carries a NIL own-atom, so a bare atom alternative can
    // only admit it with no arcs attached.
    const AbsNode& node = nodes_[index];
    for (const AtomKind k : alts.atoms) {
      if (node.arcs.empty() && node.families.empty() &&
          atom_subsumed(AtomKind::Nil, k)) {
        nodes_[index].sealed_nt = target;
        return true;
      }
    }
    std::string last_error = "<" + target + "> has no composite alternative";
    for (const Composite* comp : alts.composites) {
      std::string error;
      if (matches_composite(node, *comp, error)) {
        nodes_[index].sealed_nt = target;
        return true;
      }
      last_error = std::move(error);
    }
    why = "constructed node does not conform to <" + target +
          ">: " + last_error;
    return false;
  }

  std::size_t fresh() {
    nodes_.emplace_back();
    return nodes_.size() - 1;
  }

  AbsNode& node(std::size_t index) { return nodes_[index]; }

  /// The target nonterminal of the mandatory arc `label` on `nt`, if
  /// every composite alternative guarantees it consistently.
  bool follow_target(const std::string& nt, const std::string& label,
                     std::string& out, std::string& why) {
    return member_target(nt, label, Multiplicity::One, out, why);
  }

  /// The element nonterminal of the indexed family `base` on `nt`.
  bool family_target(const std::string& nt, const std::string& base,
                     std::string& out, std::string& why) {
    return member_target(nt, base, Multiplicity::IndexedFamily, out, why);
  }

 private:
  bool member_target(const std::string& nt, const std::string& label,
                     Multiplicity required, std::string& out,
                     std::string& why) {
    const FlatAlts alts = flatten(g_, nt);
    const char* what =
        required == Multiplicity::One ? "mandatory arc" : "indexed family";
    if (!alts.defined || alts.composites.empty()) {
      why = "<" + nt + "> has no composite alternative with " +
            std::string(what) + " '" + label + "'";
      return false;
    }
    out.clear();
    for (const Composite* comp : alts.composites) {
      const hgraph::ArcPattern* found = nullptr;
      for (const auto& pattern : comp->arcs) {
        if (pattern.label == label && pattern.multiplicity == required) {
          found = &pattern;
          break;
        }
      }
      if (found == nullptr) {
        why = "not every alternative of <" + nt + "> declares " + what +
              " '" + label + "'";
        return false;
      }
      if (out.empty()) {
        out = found->nonterminal;
      } else if (out != found->nonterminal) {
        why = "alternatives of <" + nt + "> disagree on the type of '" +
              label + "' (" + out + " vs " + found->nonterminal + ")";
        return false;
      }
    }
    if (alts.atoms.size() > 0) {
      why = "an atom alternative of <" + nt + "> has no arc '" + label + "'";
      return false;
    }
    return true;
  }

  bool matches_composite(const AbsNode& node, const Composite& comp,
                         std::string& why) {
    if (comp.own_atom != AtomKind::Nil && comp.own_atom != AtomKind::Any) {
      why = "alternative requires an own atom of kind " +
            std::string(hgraph::atom_kind_name(comp.own_atom));
      return false;
    }
    std::set<std::string> claimed_arcs;
    std::set<std::string> claimed_families;
    for (const auto& pattern : comp.arcs) {
      std::size_t count = 0;
      if (pattern.multiplicity == Multiplicity::IndexedFamily) {
        claimed_families.insert(pattern.label);
        const auto members = node.families.find(pattern.label);
        if (members == node.families.end()) continue;
        for (const AbsValue& member : members->second) {
          std::string member_why;
          if (!conforms(member, pattern.nonterminal, member_why)) {
            why = "family '" + pattern.label + "' member: " + member_why;
            return false;
          }
        }
        continue;
      }
      claimed_arcs.insert(pattern.label);
      for (const auto& [label, value] : node.arcs) {
        if (label != pattern.label) continue;
        count += 1;
        std::string arc_why;
        if (!conforms(value, pattern.nonterminal, arc_why)) {
          why = "arc '" + label + "': " + arc_why;
          return false;
        }
      }
      if (pattern.multiplicity == Multiplicity::One && count != 1) {
        why = count == 0
                  ? "required arc '" + pattern.label + "' is never added"
                  : "arc '" + pattern.label + "' added more than once";
        return false;
      }
      if (pattern.multiplicity == Multiplicity::Optional && count > 1) {
        why = "optional arc '" + pattern.label + "' added more than once";
        return false;
      }
    }
    if (!comp.open) {
      for (const auto& [label, value] : node.arcs) {
        if (!claimed_arcs.contains(label)) {
          why = "arc '" + label + "' is not declared by the alternative";
          return false;
        }
      }
      for (const auto& [base, members] : node.families) {
        if (!claimed_families.contains(base) && !members.empty()) {
          why = "family '" + base + "' is not declared by the alternative";
          return false;
        }
      }
    }
    return true;
  }

  const Grammar& g_;
  SimulationRelation sim_;
  std::vector<AbsNode> nodes_;
};

/// Interpret one path of one rule; returns an error message, empty on
/// success.
std::string interpret_path(AbstractInterpreter& interp,
                           const hgraph::TransformRegistry& registry,
                           const hgraph::TransformSignature& signature,
                           const std::vector<RuleOp>& ops) {
  std::map<std::string, AbsValue> env;
  env.emplace("arg", AbsValue::of_nt(signature.input_nonterminal));

  const auto lookup = [&](const std::string& var,
                          AbsValue& out) -> std::string {
    const auto it = env.find(var);
    if (it == env.end()) return "unbound variable '" + var + "'";
    out = it->second;
    return "";
  };
  /// Resolve the nonterminal a variable is known to conform to (sealed
  /// nodes resolve to their sealed type).
  const auto resolve_nt = [&](const AbsValue& value,
                              std::string& out) -> std::string {
    if (value.kind == AbsValue::Kind::Nonterminal) {
      out = value.nt;
      return "";
    }
    if (value.kind == AbsValue::Kind::Node &&
        !interp.node(value.node).sealed_nt.empty()) {
      out = interp.node(value.node).sealed_nt;
      return "";
    }
    return "value " + value.describe() + " has no known nonterminal type";
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RuleOp& op = ops[i];
    const std::string at = "op " + std::to_string(i + 1) + ": ";
    std::string why;
    switch (op.kind) {
      case RuleOp::Kind::Let: {
        AbsValue src;
        if (auto e = lookup(op.src, src); !e.empty()) return at + e;
        std::string src_nt;
        if (auto e = resolve_nt(src, src_nt); !e.empty()) return at + e;
        std::string target;
        if (!interp.follow_target(src_nt, op.label, target, why))
          return at + "follow('" + op.label + "'): " + why;
        env.insert_or_assign(op.var, AbsValue::of_nt(target));
        break;
      }
      case RuleOp::Kind::PickFamily: {
        AbsValue src;
        if (auto e = lookup(op.src, src); !e.empty()) return at + e;
        std::string src_nt;
        if (auto e = resolve_nt(src, src_nt); !e.empty()) return at + e;
        std::string target;
        if (!interp.family_target(src_nt, op.label, target, why))
          return at + "pick('" + op.label + "'): " + why;
        env.insert_or_assign(op.var, AbsValue::of_nt(target));
        break;
      }
      case RuleOp::Kind::Fresh:
        env.insert_or_assign(op.var, AbsValue::of_node(interp.fresh()));
        break;
      case RuleOp::Kind::FreshAtom:
        env.insert_or_assign(op.var, AbsValue::of_atom(op.atom));
        break;
      case RuleOp::Kind::AddArc: {
        AbsValue dst, src;
        if (auto e = lookup(op.dst, dst); !e.empty()) return at + e;
        if (auto e = lookup(op.src, src); !e.empty()) return at + e;
        if (dst.kind != AbsValue::Kind::Node ||
            !interp.node(dst.node).sealed_nt.empty())
          return at + "add_arc target '" + op.dst +
                 "' is not a node under construction";
        interp.node(dst.node).arcs.emplace_back(op.label, src);
        break;
      }
      case RuleOp::Kind::AppendFamily: {
        AbsValue dst, src;
        if (auto e = lookup(op.dst, dst); !e.empty()) return at + e;
        if (auto e = lookup(op.src, src); !e.empty()) return at + e;
        std::string dst_nt;
        if (resolve_nt(dst, dst_nt).empty()) {
          // Appending to a node already known to conform: the member must
          // fit the family's element type, and the owner keeps its type.
          std::string elem;
          if (!interp.family_target(dst_nt, op.label, elem, why))
            return at + "append('" + op.label + "'): " + why;
          if (!interp.conforms(src, elem, why))
            return at + "append('" + op.label + "'): " + why;
        } else if (dst.kind == AbsValue::Kind::Node) {
          interp.node(dst.node).families[op.label].push_back(src);
        } else {
          return at + "append target '" + op.dst + "' is not a node";
        }
        break;
      }
      case RuleOp::Kind::Call: {
        AbsValue arg;
        if (auto e = lookup(op.src, arg); !e.empty()) return at + e;
        const auto* callee = registry.signature(op.name);
        if (callee == nullptr)
          return at + "call of unregistered transform '" + op.name + "'";
        if (!callee->input_nonterminal.empty() &&
            !interp.conforms(arg, callee->input_nonterminal, why))
          return at + "argument of call('" + op.name + "'): " + why;
        env.insert_or_assign(
            op.var,
            callee->output_nonterminal.empty()
                ? AbsValue::of_nt("ANY")
                : AbsValue::of_nt(callee->output_nonterminal));
        break;
      }
      case RuleOp::Kind::Return: {
        AbsValue src;
        if (auto e = lookup(op.src, src); !e.empty()) return at + e;
        if (!signature.output_nonterminal.empty() &&
            !interp.conforms(src, signature.output_nonterminal, why))
          return at + "returned value: " + why;
        return "";
      }
    }
  }
  return "path has no Return op";
}

Finding make_finding(Pass pass, Severity severity, Layer layer,
                     std::string rule, std::string entity,
                     std::string message, std::string evidence) {
  Finding f;
  f.pass = pass;
  f.severity = severity;
  f.layer = layer;
  f.rule = std::move(rule);
  f.entity = std::move(entity);
  f.message = std::move(message);
  f.evidence = std::move(evidence);
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: grammar language algorithms

std::vector<Finding> verify_grammar(const Grammar& grammar, Layer layer,
                                    VerifyStats* stats) {
  std::vector<Finding> findings;
  if (stats != nullptr) stats->grammars += 1;

  if (const auto valid = grammar.validate(); !valid) {
    findings.push_back(make_finding(
        Pass::Verification, Severity::Error, layer, "invalid-grammar", "",
        "grammar fails validation", valid.error));
    return findings;
  }

  const std::set<std::string> productive =
      hgraph::productive_nonterminals(grammar);
  for (const std::string& nt : grammar.nonterminals()) {
    if (stats != nullptr) stats->nonterminals += 1;
    if (!productive.contains(nt)) {
      const auto& rules = grammar.rules().at(nt);
      findings.push_back(make_finding(
          Pass::Verification, Severity::Error, layer, "empty-language", nt,
          "nonterminal derives no finite H-graph",
          rules.empty() ? std::string("no alternatives")
                        : rules.front().loc.to_string()));
      continue;
    }
    const auto witness = hgraph::witness_graph(grammar, nt);
    if (!witness) {
      findings.push_back(make_finding(
          Pass::Verification, Severity::Error, layer, "witness-failed", nt,
          "productive nonterminal has no witness", witness.error));
      continue;
    }
    if (stats != nullptr) stats->witnesses += 1;
    if (const auto check =
            grammar.conforms(witness.graph, witness.root, nt);
        !check) {
      findings.push_back(make_finding(
          Pass::Verification, Severity::Error, layer, "witness-mismatch", nt,
          "generated witness rejected by the conformance recognizer",
          check.error));
    }
  }
  return findings;
}

std::vector<Finding> verify_refinement(const Grammar& impl,
                                       std::string_view impl_root,
                                       Layer impl_layer, const Grammar& spec,
                                       std::string_view spec_root,
                                       VerifyStats* stats) {
  std::vector<Finding> findings;
  const auto refinement = hgraph::refines(impl, impl_root, spec, spec_root);
  if (stats != nullptr) stats->refinement_pairs += refinement.pairs_checked;
  if (!refinement.ok) {
    findings.push_back(make_finding(
        Pass::Verification, Severity::Error, impl_layer, "refinement-failed",
        std::string(impl_root) + " => " + std::string(spec_root),
        "implementation grammar does not refine its specification fragment",
        refinement.counterexample));
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 2: transformation-rule type preservation

std::vector<Finding> verify_transforms(
    const hgraph::TransformRegistry& registry, Layer layer,
    VerifyStats* stats) {
  std::vector<Finding> findings;
  AbstractInterpreter interp(registry.grammar());

  for (const std::string& name : registry.transform_names()) {
    const auto* signature = registry.signature(name);
    if (signature == nullptr) continue;
    if (stats != nullptr) stats->rules += 1;
    const std::string evidence =
        signature->spec.loc.known()
            ? "registered at " + signature->spec.loc.to_string()
            : std::string();
    if (signature->spec.empty()) {
      findings.push_back(make_finding(
          Pass::Verification, Severity::Info, layer, "unchecked-rule", name,
          "transform declares no rule spec; only runtime conformance "
          "checks apply",
          evidence));
      continue;
    }
    for (std::size_t p = 0; p < signature->spec.paths.size(); ++p) {
      if (stats != nullptr) stats->paths += 1;
      const std::string error = interpret_path(
          interp, registry, *signature, signature->spec.paths[p].ops);
      if (!error.empty()) {
        findings.push_back(make_finding(
            Pass::Verification, Severity::Error, layer,
            "type-preservation", name,
            "path " + std::to_string(p + 1) + " can violate the grammar: " +
                error,
            evidence));
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// The --verify facade

VerifyReport verify_specs(const VerifyOptions& options) {
  VerifyReport report;
  const auto append = [&report](std::vector<Finding> more) {
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(more.begin()),
                           std::make_move_iterator(more.end()));
  };

  if (options.grammar_language) {
    append(verify_grammar(spec::appvm_grammar(), Layer::Appvm,
                          &report.stats));
    append(verify_grammar(spec::db_grammar(), Layer::Db, &report.stats));
    append(verify_grammar(spec::navm_grammar(), Layer::Navm, &report.stats));
    append(
        verify_grammar(spec::sysvm_grammar(), Layer::Sysvm, &report.stats));
    append(verify_grammar(spec::hw_grammar(), Layer::Hw, &report.stats));
    // The db engine's state grammar must refine what layer 1 assumes of
    // its storage (the abstract `storage` fragment of the appvm grammar).
    append(verify_refinement(spec::db_grammar(), "dbengine", Layer::Db,
                             spec::appvm_grammar(), "storage",
                             &report.stats));
  }

  if (options.type_preservation) {
    append(verify_transforms(spec::make_appvm_transforms(), Layer::Appvm,
                             &report.stats));
  }

  if (options.protocols) {
    report.messaging = check_messaging(options.messaging);
    report.stats.protocol_states += report.messaging.states;
    report.stats.protocol_transitions += report.messaging.transitions;
    if (!report.messaging.ok) {
      report.findings.push_back(make_finding(
          Pass::ModelCheck, Severity::Error, Layer::Sysvm,
          "messaging-protocol", "reliable channel",
          report.messaging.violation,
          "trace: " + report.messaging.trace_to_string()));
    }
    report.db_health = check_db_health(options.db_health);
    report.stats.protocol_states += report.db_health.states;
    report.stats.protocol_transitions += report.db_health.transitions;
    if (!report.db_health.ok) {
      report.findings.push_back(make_finding(
          Pass::ModelCheck, Severity::Error, Layer::Db, "db-health",
          "engine health lifecycle", report.db_health.violation,
          "trace: " + report.db_health.trace_to_string()));
    }
  }
  return report;
}

}  // namespace fem2::analyze
