// Bounded explicit-state model checking of the two distributed protocols
// the runtime depends on:
//
//   1. the reliable inter-cluster messaging protocol (hw/channel.hpp:
//      sequence numbers, acks, retransmission, duplicate suppression,
//      out-of-order hold-back) under message loss, duplication and
//      reordering — checked for exactly-once in-order delivery;
//   2. the db engine health lifecycle (db/health.hpp) composed with
//      storage fault events in IoFaultPlan vocabulary — checked for "no
//      acknowledged commit is lost" and "degraded mode is sticky until
//      an explicit recover()".
//
// The checker does exhaustive breadth-first search over the reachable
// state space up to a configurable bound, keeps a parent map, and turns
// any invariant violation into a minimal counterexample trace (BFS order
// makes it shortest).  The protocol transition code is the *same* code
// the runtime executes — ReliableSender/ReliableReceiver and HealthModel
// are instantiated directly — so these are properties of the shipped
// protocols, not of a parallel re-implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fem2::analyze {

struct ModelCheckResult {
  bool ok = false;
  std::string property;       ///< invariant checked
  std::size_t states = 0;     ///< distinct states visited
  std::size_t transitions = 0;
  std::size_t depth = 0;      ///< deepest BFS layer reached
  bool bounded_out = false;   ///< frontier truncated by the state bound
  /// On violation: event labels from the initial state to the bad state.
  std::vector<std::string> trace;
  std::string violation;  ///< what broke (empty when ok)

  explicit operator bool() const { return ok; }
  std::string trace_to_string() const;
};

struct MessagingModelOptions {
  /// Messages the sender will try to deliver (payloads 1..n).
  std::size_t messages = 2;
  /// Retransmission budget per frame before the peer counts unreachable.
  std::size_t max_retransmits = 2;
  /// The network holds at most this many frames in flight at once.
  std::size_t network_capacity = 2;
  /// Seeded defect: disable receiver duplicate suppression.
  bool dedup = true;
  /// Stop exploring after this many distinct states (0 = unbounded).
  std::size_t max_states = 200'000;
};

/// Exhaust the reliable-channel protocol: every interleaving of frame
/// delivery, loss, duplication in flight, ack loss, and retransmission
/// timer firings.  Invariants: the receiver's delivered sequence is
/// exactly 1..k in order (no duplicate, no skip, no reordering), and a
/// sender that exhausts retransmissions has a genuinely lossy network.
ModelCheckResult check_messaging(const MessagingModelOptions& options = {});

struct HealthModelOptions {
  /// Commit attempts to explore.
  std::size_t commits = 3;
  /// Checkpoints interleaved with the commits.
  std::size_t checkpoints = 2;
  /// Seeded defect: degraded mode cleared by a later success.
  bool sticky = true;
  std::size_t max_states = 200'000;
};

/// Exhaust the engine health lifecycle against every interleaving of
/// storage fault events (IoFaultPlan vocabulary: append short-write,
/// fsync failure, truncate failure, snapshot-write failure) with commits,
/// checkpoints and recover().  Invariants: every acknowledged commit
/// survives to the durable state; degraded mode is only exited by
/// recover(); a degraded engine acknowledges nothing.
ModelCheckResult check_db_health(const HealthModelOptions& options = {});

}  // namespace fem2::analyze
