// Iterative solvers: conjugate gradients (the FEM-2 equation-level
// parallelism workhorse), Jacobi, and Gauss-Seidel/SOR (the relaxation
// methods the original Finite Element Machine ran).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "la/sparse.hpp"
#include "la/vec_ops.hpp"

namespace fem2::la {

class Preconditioner;

struct SolveOptions {
  double tolerance = 1e-10;      ///< relative residual ‖r‖/‖b‖ target
  std::size_t max_iterations = 10'000;
  double sor_omega = 1.0;        ///< 1.0 == plain Gauss-Seidel
  bool jacobi_preconditioner = false;  ///< for CG; shorthand for Jacobi
  /// For CG: explicit preconditioner (see la/precond.hpp).  Takes
  /// precedence over jacobi_preconditioner; not owned, must outlive
  /// the solve.
  const Preconditioner* preconditioner = nullptr;
};

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;    ///< final relative residual
  std::string method;

  std::string to_string() const;
};

/// Result bundle: solution plus convergence report.
struct SolveResult {
  Vector x;
  SolveReport report;
};

/// Conjugate gradients for SPD systems, with optional Jacobi (diagonal)
/// preconditioning.
SolveResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               const SolveOptions& options = {});

/// Jacobi iteration (requires nonzero diagonal; converges for strictly
/// diagonally dominant or SPD-with-small-spectral-radius systems).
SolveResult jacobi(const CsrMatrix& a, std::span<const double> b,
                   const SolveOptions& options = {});

/// Successive over-relaxation; omega = 1 gives Gauss–Seidel.
SolveResult sor(const CsrMatrix& a, std::span<const double> b,
                const SolveOptions& options = {});

/// Relative residual ‖b − A x‖₂ / ‖b‖₂ (returns absolute norm if b = 0).
double relative_residual(const CsrMatrix& a, std::span<const double> x,
                         std::span<const double> b);

}  // namespace fem2::la
