#include "la/iterative.hpp"

#include <cmath>
#include <sstream>

#include "la/precond.hpp"
#include "support/check.hpp"

namespace fem2::la {

std::string SolveReport::to_string() const {
  std::ostringstream os;
  os << method << ": " << (converged ? "converged" : "NOT converged")
     << " in " << iterations << " iterations, relative residual "
     << residual_norm;
  return os.str();
}

double relative_residual(const CsrMatrix& a, std::span<const double> x,
                         std::span<const double> b) {
  Vector ax = a.multiply(x);
  Vector r = subtract(b, ax);
  const double bn = norm2(b);
  return bn > 0.0 ? norm2(r) / bn : norm2(r);
}

SolveResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               const SolveOptions& options) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK(b.size() == a.rows());
  const std::size_t n = a.rows();

  SolveResult out;
  out.x.assign(n, 0.0);

  // Explicit preconditioner wins; the jacobi_preconditioner flag is
  // shorthand that builds one here.
  std::unique_ptr<JacobiPreconditioner> owned_jacobi;
  const Preconditioner* precond = options.preconditioner;
  if (precond == nullptr && options.jacobi_preconditioner) {
    owned_jacobi = std::make_unique<JacobiPreconditioner>(a);
    precond = owned_jacobi.get();
  }
  if (precond != nullptr) FEM2_CHECK(precond->size() == n);
  out.report.method = precond ? "pcg-" + precond->name() : "cg";

  auto precondition = [&](const Vector& r) {
    if (precond == nullptr) return r;
    Vector z(r.size());
    precond->apply(r, z);
    return z;
  };

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    out.report.converged = true;
    return out;
  }

  Vector r(b.begin(), b.end());  // r = b - A·0
  Vector z = precondition(r);
  Vector p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rn = norm2(r) / bnorm;
    out.report.iterations = it;
    out.report.residual_norm = rn;
    if (rn <= options.tolerance) {
      out.report.converged = true;
      return out;
    }
    Vector ap = a.multiply(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      // Not SPD (or breakdown); stop with the best iterate we have.
      return out;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, out.x);
    axpy(-alpha, ap, r);
    z = precondition(r);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    xpay(z, beta, p);
  }
  out.report.iterations = options.max_iterations;
  out.report.residual_norm = norm2(r) / bnorm;
  out.report.converged = out.report.residual_norm <= options.tolerance;
  return out;
}

SolveResult jacobi(const CsrMatrix& a, std::span<const double> b,
                   const SolveOptions& options) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK(b.size() == a.rows());
  const std::size_t n = a.rows();

  SolveResult out;
  out.report.method = "jacobi";
  out.x.assign(n, 0.0);

  Vector diag = a.diagonal();
  for (double d : diag)
    FEM2_CHECK_MSG(d != 0.0, "Jacobi requires a nonzero diagonal");

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    out.report.converged = true;
    return out;
  }

  Vector next(n);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Vector ax = a.multiply(out.x);
    const double rn = norm2(subtract(b, ax)) / bnorm;
    out.report.iterations = it;
    out.report.residual_norm = rn;
    if (rn <= options.tolerance) {
      out.report.converged = true;
      return out;
    }
    // x' = x + D⁻¹ (b - A x)
    for (std::size_t i = 0; i < n; ++i)
      next[i] = out.x[i] + (b[i] - ax[i]) / diag[i];
    out.x.swap(next);
  }
  out.report.iterations = options.max_iterations;
  out.report.residual_norm = relative_residual(a, out.x, b);
  out.report.converged = out.report.residual_norm <= options.tolerance;
  return out;
}

SolveResult sor(const CsrMatrix& a, std::span<const double> b,
                const SolveOptions& options) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK(b.size() == a.rows());
  FEM2_CHECK_MSG(options.sor_omega > 0.0 && options.sor_omega < 2.0,
                 "SOR requires omega in (0, 2)");
  const std::size_t n = a.rows();

  SolveResult out;
  out.report.method =
      options.sor_omega == 1.0 ? "gauss-seidel" : "sor";
  out.x.assign(n, 0.0);

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    out.report.converged = true;
    return out;
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rn = relative_residual(a, out.x, b);
    out.report.iterations = it;
    out.report.residual_norm = rn;
    if (rn <= options.tolerance) {
      out.report.converged = true;
      return out;
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::span<const std::size_t> cols;
      std::span<const double> vals;
      a.row(i, cols, vals);
      double sigma = 0.0;
      double diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == i) {
          diag = vals[k];
        } else {
          sigma += vals[k] * out.x[cols[k]];
        }
      }
      FEM2_CHECK_MSG(diag != 0.0, "SOR requires a nonzero diagonal");
      const double gs = (b[i] - sigma) / diag;
      out.x[i] += options.sor_omega * (gs - out.x[i]);
    }
  }
  out.report.iterations = options.max_iterations;
  out.report.residual_norm = relative_residual(a, out.x, b);
  out.report.converged = out.report.residual_norm <= options.tolerance;
  return out;
}

}  // namespace fem2::la
