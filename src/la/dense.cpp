#include "la/dense.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace fem2::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  FEM2_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  FEM2_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> DenseMatrix::row(std::size_t r) {
  FEM2_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> DenseMatrix::row(std::size_t r) const {
  FEM2_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector DenseMatrix::multiply(std::span<const double> x) const {
  FEM2_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

Vector DenseMatrix::multiply_transpose(std::span<const double> x) const {
  FEM2_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) axpy(x[r], row(r), y);
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  FEM2_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      axpy(a, other.row(k), out.row(r));
    }
  }
  return out;
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  FEM2_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

double DenseMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

std::string DenseMatrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c)
      os << (c ? " " : "") << (*this)(r, c);
    os << "]\n";
  }
  return os.str();
}

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  FEM2_CHECK_MSG(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw support::Error("LU factorization: matrix is singular at pivot " +
                           std::to_string(k));
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  FEM2_CHECK(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) y[i] -= lu_(i, j) * y[j];
    y[i] /= lu_(i, i);
  }
  return y;
}

double LuFactorization::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

CholeskyFactorization::CholeskyFactorization(const DenseMatrix& a) {
  FEM2_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = DenseMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw support::Error(
              "Cholesky factorization: matrix is not positive definite "
              "(diagonal " +
              std::to_string(i) + ")");
        }
        l_(i, j) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
}

Vector CholeskyFactorization::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  FEM2_CHECK(b.size() == n);
  Vector y(b.begin(), b.end());
  // L z = b
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= l_(i, j) * y[j];
    y[i] /= l_(i, i);
  }
  // Lᵀ x = z
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) y[i] -= l_(j, i) * y[j];
    y[i] /= l_(i, i);
  }
  return y;
}

}  // namespace fem2::la
