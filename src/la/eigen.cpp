#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>

#include "la/vec_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace fem2::la {

double rayleigh_quotient(const CsrMatrix& k, const CsrMatrix& m,
                         std::span<const double> phi) {
  const auto kp = k.multiply(phi);
  const auto mp = m.multiply(phi);
  const double denom = dot(phi, mp);
  FEM2_CHECK_MSG(denom > 0.0, "Rayleigh quotient with M-null vector");
  return dot(phi, kp) / denom;
}

namespace {

/// M-inner product.
double m_dot(const CsrMatrix& m, std::span<const double> a,
             std::span<const double> b) {
  return dot(a, m.multiply(b));
}

/// Gram–Schmidt M-orthonormalization of the columns in `basis`.
void m_orthonormalize(const CsrMatrix& m, std::vector<Vector>& basis) {
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double proj = m_dot(m, basis[i], basis[j]);
      axpy(-proj, basis[j], basis[i]);
    }
    const double norm = std::sqrt(m_dot(m, basis[i], basis[i]));
    FEM2_CHECK_MSG(norm > 1e-300, "degenerate subspace basis");
    scale(1.0 / norm, basis[i]);
  }
}

/// Solve the small dense projected eigenproblem A y = λ y (A symmetric,
/// p×p) by cyclic Jacobi rotations.  Returns eigenvalues ascending with
/// eigenvectors as rows of `vectors`.
void jacobi_eigen(DenseMatrix a, std::vector<double>& values,
                  DenseMatrix& vectors) {
  const std::size_t p = a.rows();
  vectors = DenseMatrix::identity(p);
  for (std::size_t sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < p; ++r)
      for (std::size_t c = r + 1; c < p; ++c) off += a(r, c) * a(r, c);
    if (off < 1e-24) break;
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t c = r + 1; c < p; ++c) {
        if (std::abs(a(r, c)) < 1e-300) continue;
        const double theta = (a(c, c) - a(r, r)) / (2.0 * a(r, c));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double cs = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * cs;
        for (std::size_t i = 0; i < p; ++i) {
          const double arc = a(i, r), acc = a(i, c);
          a(i, r) = cs * arc - sn * acc;
          a(i, c) = sn * arc + cs * acc;
        }
        for (std::size_t i = 0; i < p; ++i) {
          const double arc = a(r, i), acc = a(c, i);
          a(r, i) = cs * arc - sn * acc;
          a(c, i) = sn * arc + cs * acc;
          const double vrc = vectors(r, i), vcc = vectors(c, i);
          vectors(r, i) = cs * vrc - sn * vcc;
          vectors(c, i) = sn * vrc + cs * vcc;
        }
      }
    }
  }
  values.resize(p);
  for (std::size_t i = 0; i < p; ++i) values[i] = a(i, i);
  // Sort ascending, permuting the vector rows along.
  std::vector<std::size_t> order(p);
  for (std::size_t i = 0; i < p; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });
  std::vector<double> sorted_values(p);
  DenseMatrix sorted_vectors(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    sorted_values[i] = values[order[i]];
    for (std::size_t j = 0; j < p; ++j)
      sorted_vectors(i, j) = vectors(order[i], j);
  }
  values = std::move(sorted_values);
  vectors = std::move(sorted_vectors);
}

}  // namespace

EigenResult lowest_eigenpairs(const CsrMatrix& k, const CsrMatrix& m,
                              const EigenOptions& options) {
  FEM2_CHECK(k.rows() == k.cols());
  FEM2_CHECK(m.rows() == k.rows() && m.cols() == k.cols());
  const std::size_t n = k.rows();
  const std::size_t p = std::min(options.modes, n);
  FEM2_CHECK_MSG(p > 0, "requesting zero modes");
  // A slightly larger working subspace accelerates convergence.
  const std::size_t q = std::min(n, std::max(p + 2, 2 * p));

  CholeskyFactorization chol(k.to_dense());

  support::Rng rng(options.seed);
  std::vector<Vector> basis(q, Vector(n));
  for (auto& v : basis)
    for (auto& x : v) x = rng.uniform(-1, 1);
  m_orthonormalize(m, basis);

  EigenResult result;
  std::vector<double> previous(p, 0.0);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Inverse iteration step: z_i = K⁻¹ M x_i.
    for (auto& v : basis) v = chol.solve(m.multiply(v));
    m_orthonormalize(m, basis);

    // Rayleigh–Ritz: project K onto the subspace.
    DenseMatrix projected(q, q);
    std::vector<Vector> k_basis(q);
    for (std::size_t i = 0; i < q; ++i) k_basis[i] = k.multiply(basis[i]);
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = 0; j < q; ++j)
        projected(i, j) = dot(basis[i], k_basis[j]);

    std::vector<double> values;
    DenseMatrix rotations;
    jacobi_eigen(projected, values, rotations);

    // Rotate the basis to the Ritz vectors.
    std::vector<Vector> ritz(q, Vector(n, 0.0));
    for (std::size_t i = 0; i < q; ++i)
      for (std::size_t j = 0; j < q; ++j)
        axpy(rotations(i, j), basis[j], ritz[i]);
    basis = std::move(ritz);

    result.iterations = it + 1;
    double max_change = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      const double denom = std::max(std::abs(values[i]), 1e-300);
      max_change = std::max(max_change,
                            std::abs(values[i] - previous[i]) / denom);
      previous[i] = values[i];
    }
    if (max_change < options.tolerance) {
      result.converged = true;
      result.pairs.resize(p);
      for (std::size_t i = 0; i < p; ++i) {
        result.pairs[i].value = values[i];
        result.pairs[i].vector = basis[i];
      }
      return result;
    }
  }
  result.pairs.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    result.pairs[i].value = previous[i];
    result.pairs[i].vector = basis[i];
  }
  return result;
}

}  // namespace fem2::la
