#include "la/skyline.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace fem2::la {

SkylineMatrix SkylineMatrix::from_csr(const CsrMatrix& a) {
  FEM2_CHECK_MSG(a.rows() == a.cols(), "skyline requires a square matrix");
  const std::size_t n = a.rows();
  std::vector<std::size_t> first_row(n);
  for (std::size_t j = 0; j < n; ++j) first_row[j] = j;
  // The profile of column j starts at the smallest row index with a nonzero
  // in column j.  Scan CSR rows: entry (r, c) with r < c lowers column c.
  for (std::size_t r = 0; r < n; ++r) {
    std::span<const std::size_t> cols;
    std::span<const double> vals;
    a.row(r, cols, vals);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::size_t c = cols[k];
      if (r < c) first_row[c] = std::min(first_row[c], r);
      if (c < r) first_row[r] = std::min(first_row[r], c);
    }
  }
  SkylineMatrix s(std::move(first_row));
  for (std::size_t r = 0; r < n; ++r) {
    std::span<const std::size_t> cols;
    std::span<const double> vals;
    a.row(r, cols, vals);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] >= r) s.at(r, cols[k]) = vals[k];
    }
  }
  return s;
}

SkylineMatrix::SkylineMatrix(std::vector<std::size_t> first_row)
    : first_row_(std::move(first_row)) {
  const std::size_t n = first_row_.size();
  col_ptr_.resize(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    FEM2_CHECK_MSG(first_row_[j] <= j, "profile must include the diagonal");
    col_ptr_[j + 1] = col_ptr_[j] + col_height(j);
  }
  values_.assign(col_ptr_[n], 0.0);
}

double& SkylineMatrix::at(std::size_t i, std::size_t j) {
  FEM2_CHECK(j < size() && i <= j);
  FEM2_CHECK_MSG(i >= first_row_[j], "entry outside the skyline profile");
  return values_[col_ptr_[j] + (i - first_row_[j])];
}

double SkylineMatrix::value_at(std::size_t i, std::size_t j) const {
  if (i > j) std::swap(i, j);
  FEM2_CHECK(j < size());
  if (i < first_row_[j]) return 0.0;
  return values_[col_ptr_[j] + (i - first_row_[j])];
}

std::size_t SkylineMatrix::storage_bytes() const {
  return values_.size() * sizeof(double) +
         (first_row_.size() + col_ptr_.size()) * sizeof(std::size_t);
}

void SkylineMatrix::factorize() {
  FEM2_CHECK_MSG(!factorized_, "factorize called twice");
  const std::size_t n = size();
  // Column-oriented Crout/Cholesky inside the profile:
  //   L(i,j) = (A(i,j) - Σ_k L(i,k) L(j,k)) / L(j,j),  k in overlap
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = first_row_[j]; i <= j; ++i) {
      double sum = value_at(i, j);
      const std::size_t k_begin = std::max(first_row_[j], first_row_[i]);
      for (std::size_t k = k_begin; k < i; ++k)
        sum -= value_at(i, k) * value_at(k, j);
      if (i == j) {
        if (sum <= 0.0) {
          throw support::Error(
              "skyline Cholesky: matrix not positive definite at column " +
              std::to_string(j));
        }
        at(i, j) = std::sqrt(sum);
      } else {
        at(i, j) = sum / value_at(i, i);
      }
    }
  }
  factorized_ = true;
}

Vector SkylineMatrix::solve(std::span<const double> b) const {
  FEM2_CHECK_MSG(factorized_, "solve before factorize");
  const std::size_t n = size();
  FEM2_CHECK(b.size() == n);
  Vector y(b.begin(), b.end());
  // Forward: L z = b.  Column j of the stored upper profile holds L(j, i)
  // transposed; value_at handles the symmetry.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = first_row_[i]; k < i; ++k)
      y[i] -= value_at(k, i) * y[k];
    y[i] /= value_at(i, i);
  }
  // Backward: Lᵀ x = z, traversing columns right to left.
  for (std::size_t j = n; j-- > 0;) {
    y[j] /= value_at(j, j);
    for (std::size_t k = first_row_[j]; k < j; ++k)
      y[k] -= value_at(k, j) * y[j];
  }
  return y;
}

double SkylineMatrix::mean_column_height() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(values_.size()) / static_cast<double>(size());
}

std::size_t SkylineMatrix::max_column_height() const {
  std::size_t m = 0;
  for (std::size_t j = 0; j < size(); ++j) m = std::max(m, col_height(j));
  return m;
}

}  // namespace fem2::la
