// Preconditioners for conjugate gradients, split nekRS-style into an
// explicit setup phase (the constructor: extract/aggregate/factorize
// against a fixed matrix) and a cheap repeated solve phase (apply()).
// All preconditioners here are symmetric positive definite so CG theory
// still holds.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "la/dense.hpp"
#include "la/sparse.hpp"

namespace fem2::la {

/// z = M⁻¹ r.  apply() must be reentrant: the host backend may call it
/// from several lanes at once, so implementations keep no mutable state
/// after construction.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  virtual std::size_t size() const = 0;
  virtual std::string name() const = 0;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

/// Jacobi (diagonal): M = diag(A).  Setup extracts 1/a_ii once.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);

  std::size_t size() const override { return inv_diag_.size(); }
  std::string name() const override { return "jacobi"; }
  void apply(std::span<const double> r, std::span<double> z) const override;

  std::span<const double> inverse_diagonal() const { return inv_diag_; }

 private:
  Vector inv_diag_;
};

struct TwoLevelOptions {
  /// Target number of coarse aggregates (clamped to [1, n]); ignored when
  /// aggregate_of is supplied.
  std::size_t coarse_dofs = 32;
  /// Weight on the fine-level Jacobi term; must be > 0 to keep M SPD.
  double smoothing_omega = 0.5;
  /// Optional explicit fine-dof → aggregate map (size n).  Lets mesh-aware
  /// callers group whole nodes and keep displacement components separate
  /// (see fem::solve_reduced); ids may be sparse, they are compacted.
  /// When empty, contiguous index blocks are used.
  std::vector<std::size_t> aggregate_of;
};

/// Two-level V-cycle preconditioner: damped-Jacobi pre-smooth, Galerkin
/// coarse-grid correction, damped-Jacobi post-smooth,
///     z₁ = ω D⁻¹ r
///     z₂ = z₁ + Rᵀ A_c⁻¹ R (r − A z₁)
///     z  = z₂ + ω D⁻¹ (r − A z₂),
/// with R piecewise-constant restriction onto aggregates and A_c = R A Rᵀ
/// dense Cholesky-factorized at setup.  The symmetric smoother sandwich
/// keeps M SPD (for ω within the damped-Jacobi convergence range), so CG
/// theory holds; the coarse solve carries global corrections across the
/// mesh in one application, which plain Jacobi cannot.
class TwoLevelPreconditioner final : public Preconditioner {
 public:
  TwoLevelPreconditioner(const CsrMatrix& a,
                         const TwoLevelOptions& options = {});

  std::size_t size() const override { return aggregate_of_.size(); }
  std::string name() const override { return "two-level"; }
  void apply(std::span<const double> r, std::span<double> z) const override;

  std::size_t coarse_size() const { return coarse_->size(); }

 private:
  CsrMatrix a_;  ///< fine operator (pattern shared with the caller's matrix)
  double omega_;
  Vector inv_diag_;
  std::vector<std::size_t> aggregate_of_;  ///< fine dof -> aggregate
  std::unique_ptr<CholeskyFactorization> coarse_;  ///< A_c = R A Rᵀ
};

}  // namespace fem2::la
