// Symmetric generalized eigenproblem K φ = λ M φ for the lowest modes —
// the numerical core of structural vibration analysis.  Subspace (block
// inverse) iteration with Gram–Schmidt M-orthonormalization; K is factored
// once (dense Cholesky).
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense.hpp"
#include "la/sparse.hpp"

namespace fem2::la {

struct EigenOptions {
  std::size_t modes = 4;           ///< how many lowest eigenpairs
  std::size_t max_iterations = 500;
  double tolerance = 1e-10;        ///< relative eigenvalue change
  std::uint64_t seed = 0x5eed;     ///< start-vector generator
};

struct EigenPair {
  double value = 0.0;              ///< λ (rad²/s² in structural use)
  Vector vector;                   ///< M-normalized shape
};

struct EigenResult {
  std::vector<EigenPair> pairs;    ///< ascending by eigenvalue
  bool converged = false;
  std::size_t iterations = 0;
};

/// Lowest eigenpairs of K φ = λ M φ with K SPD and M symmetric positive
/// (semi-)definite diagonal-dominant (lumped mass).  Throws support::Error
/// if K is not positive definite.
EigenResult lowest_eigenpairs(const CsrMatrix& k, const CsrMatrix& m,
                              const EigenOptions& options = {});

/// Rayleigh quotient φᵀKφ / φᵀMφ.
double rayleigh_quotient(const CsrMatrix& k, const CsrMatrix& m,
                         std::span<const double> phi);

}  // namespace fem2::la
