// Dense matrices, row-major, with the direct factorizations the FEM
// substrate needs: LU with partial pivoting (general) and Cholesky (SPD).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "la/vec_ops.hpp"

namespace fem2::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<const double> data() const { return data_; }

  DenseMatrix transpose() const;

  Vector multiply(std::span<const double> x) const;         ///< A x
  Vector multiply_transpose(std::span<const double> x) const;  ///< Aᵀ x
  DenseMatrix multiply(const DenseMatrix& other) const;     ///< A B

  void add_scaled(const DenseMatrix& other, double alpha);  ///< A += αB

  double frobenius_norm() const;
  double max_abs() const;

  bool is_symmetric(double tol = 1e-12) const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting.  Throws support::Error on a
/// numerically singular matrix.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a);

  Vector solve(std::span<const double> b) const;
  double determinant() const;
  std::size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// Cholesky factorization A = L Lᵀ for symmetric positive-definite A.
/// Throws support::Error if the matrix is not positive definite.
class CholeskyFactorization {
 public:
  explicit CholeskyFactorization(const DenseMatrix& a);

  Vector solve(std::span<const double> b) const;
  std::size_t size() const { return l_.rows(); }
  const DenseMatrix& lower() const { return l_; }

 private:
  DenseMatrix l_;
};

}  // namespace fem2::la
