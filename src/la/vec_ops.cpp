#include "la/vec_ops.hpp"

#include <cmath>

#include "support/check.hpp"

namespace fem2::la {

double dot(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const double* a = x.data();
  const double* b = y.data();
  // Four independent accumulators: breaks the add dependency chain so the
  // loop vectorizes/pipelines; the summation order is fixed regardless of
  // lane count, keeping reductions bit-reproducible.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FEM2_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const double* a = x.data();
  double* b = y.data();
  for (std::size_t i = 0; i < n; ++i) b[i] += alpha * a[i];
}

void xpay(std::span<const double> x, double alpha, std::span<double> y) {
  FEM2_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const double* a = x.data();
  double* b = y.data();
  for (std::size_t i = 0; i < n; ++i) b[i] = a[i] + alpha * b[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z) {
  FEM2_CHECK(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  const double* a = x.data();
  const double* b = y.data();
  double* c = z.data();
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] * b[i];
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

Vector subtract(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

Vector add(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

void spmv_rows(std::span<const std::size_t> row_ptr,
               std::span<const std::size_t> col_idx,
               std::span<const double> values, std::span<const double> x,
               std::size_t row_begin, std::size_t row_end,
               std::span<double> y) {
  FEM2_CHECK(row_end < row_ptr.size() + 1 && row_begin <= row_end);
  FEM2_CHECK(y.size() >= row_end - row_begin);
  const std::size_t* cols = col_idx.data();
  const double* vals = values.data();
  const double* xv = x.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const std::size_t begin = row_ptr[r];
    const std::size_t end = row_ptr[r + 1];
    // Two accumulators over the row: short FEM rows (~9-18 nnz) still
    // benefit, long rows pipeline the gather + fma.
    double acc0 = 0.0, acc1 = 0.0;
    std::size_t k = begin;
    for (; k + 2 <= end; k += 2) {
      acc0 += vals[k] * xv[cols[k]];
      acc1 += vals[k + 1] * xv[cols[k + 1]];
    }
    if (k < end) acc0 += vals[k] * xv[cols[k]];
    y[r - row_begin] = acc0 + acc1;
  }
}

}  // namespace fem2::la
