#include "la/vec_ops.hpp"

#include <cmath>

#include "support/check.hpp"

namespace fem2::la {

double dot(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FEM2_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

Vector subtract(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

Vector add(std::span<const double> x, std::span<const double> y) {
  FEM2_CHECK(x.size() == y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

}  // namespace fem2::la
