#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace fem2::la {

SparsityPattern::SparsityPattern(std::size_t rows, std::size_t cols,
                                 std::vector<std::size_t> row_ptr,
                                 std::vector<std::size_t> col_idx)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)) {
  FEM2_CHECK(row_ptr_.size() == rows_ + 1);
  FEM2_CHECK(row_ptr_.back() == col_idx_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    FEM2_CHECK(row_ptr_[r] <= row_ptr_[r + 1]);
    for (std::size_t k = row_ptr_[r]; k + 1 < row_ptr_[r + 1]; ++k)
      FEM2_CHECK(col_idx_[k] < col_idx_[k + 1]);
    if (row_ptr_[r] < row_ptr_[r + 1])
      FEM2_CHECK(col_idx_[row_ptr_[r + 1] - 1] < cols_);
  }
}

SparsityPattern SparsityPattern::from_pairs(
    std::size_t rows, std::size_t cols,
    std::vector<std::pair<std::size_t, std::size_t>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::size_t> col_idx;
  col_idx.reserve(pairs.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    row_ptr[r] = col_idx.size();
    while (i < pairs.size() && pairs[i].first == r) {
      FEM2_CHECK(pairs[i].second < cols);
      col_idx.push_back(pairs[i].second);
      ++i;
    }
  }
  FEM2_CHECK(i == pairs.size());  // no row index >= rows
  row_ptr[rows] = col_idx.size();
  return SparsityPattern(rows, cols, std::move(row_ptr), std::move(col_idx));
}

std::size_t SparsityPattern::find(std::size_t row, std::size_t col) const {
  FEM2_CHECK(row < rows_ && col < cols_);
  const auto begin =
      col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end =
      col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return npos;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

std::size_t SparsityPattern::storage_bytes() const {
  return col_idx_.size() * sizeof(std::size_t) +
         row_ptr_.size() * sizeof(std::size_t);
}

TripletBuilder::TripletBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void TripletBuilder::add(std::size_t row, std::size_t col, double value) {
  FEM2_CHECK(row < rows_ && col < cols_);
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

CsrMatrix TripletBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    row_ptr[r] = values.size();
    while (i < sorted.size() && sorted[i].row == r) {
      const std::size_t c = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        sum += sorted[i].value;
        ++i;
      }
      if (sum != 0.0) {
        col_idx.push_back(c);
        values.push_back(sum);
      }
    }
  }
  row_ptr[rows_] = values.size();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : pattern_(std::make_shared<SparsityPattern>(
          rows, cols, std::move(row_ptr), std::move(col_idx))),
      values_(std::move(values)) {
  FEM2_CHECK(pattern_->nonzeros() == values_.size());
}

CsrMatrix::CsrMatrix(std::shared_ptr<const SparsityPattern> pattern,
                     std::vector<double> values)
    : pattern_(std::move(pattern)), values_(std::move(values)) {
  FEM2_CHECK(pattern_ != nullptr);
  FEM2_CHECK(pattern_->nonzeros() == values_.size());
}

Vector CsrMatrix::multiply(std::span<const double> x) const {
  Vector y(rows(), 0.0);
  multiply_rows(x, 0, rows(), y);
  return y;
}

void CsrMatrix::multiply_rows(std::span<const double> x, std::size_t row_begin,
                              std::size_t row_end, std::span<double> y) const {
  FEM2_CHECK(x.size() == cols());
  FEM2_CHECK(row_begin <= row_end && row_end <= rows());
  spmv_rows(pattern_->row_ptr(), pattern_->col_idx(), values_, x, row_begin,
            row_end, y);
}

Vector CsrMatrix::multiply_transpose(std::span<const double> x) const {
  FEM2_CHECK(x.size() == rows());
  const auto row_ptr = pattern_->row_ptr();
  const auto col_idx = pattern_->col_idx();
  Vector y(cols(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      y[col_idx[k]] += values_[k] * xr;
  }
  return y;
}

double CsrMatrix::value_at(std::size_t row, std::size_t col) const {
  const std::size_t k = pattern_->find(row, col);
  return k == SparsityPattern::npos ? 0.0 : values_[k];
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows(), cols());
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = value_at(i, i);
  return d;
}

DenseMatrix CsrMatrix::to_dense() const {
  const auto row_ptr = pattern_->row_ptr();
  const auto col_idx = pattern_->col_idx();
  DenseMatrix m(rows(), cols());
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      m(r, col_idx[k]) = values_[k];
  return m;
}

void CsrMatrix::row(std::size_t r, std::span<const std::size_t>& cols,
                    std::span<const double>& vals) const {
  FEM2_CHECK(r < rows());
  const auto row_ptr = pattern_->row_ptr();
  const std::size_t begin = row_ptr[r];
  const std::size_t count = row_ptr[r + 1] - begin;
  cols = pattern_->col_idx().subspan(begin, count);
  vals = {values_.data() + begin, count};
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows() != cols()) return false;
  const auto row_ptr = pattern_->row_ptr();
  const auto col_idx = pattern_->col_idx();
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      if (std::abs(values_[k] - value_at(col_idx[k], r)) > tol) return false;
  return true;
}

std::size_t CsrMatrix::storage_bytes() const {
  return values_.size() * sizeof(double) +
         (pattern_ ? pattern_->storage_bytes() : 0);
}

CsrAssembler::CsrAssembler(std::shared_ptr<const SparsityPattern> pattern)
    : pattern_(std::move(pattern)) {
  FEM2_CHECK(pattern_ != nullptr);
  values_.assign(pattern_->nonzeros(), 0.0);
}

void CsrAssembler::reset() { values_.assign(pattern_->nonzeros(), 0.0); }

void CsrAssembler::add(std::size_t row, std::size_t col, double value) {
  const std::size_t k = pattern_->find(row, col);
  FEM2_CHECK(k != SparsityPattern::npos);
  values_[k] += value;
}

Vector lower_triangular_solve(const CsrMatrix& a, std::span<const double> b) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK(b.size() == a.rows());
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  Vector x(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = b[r];
    double diag = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c < r) {
        acc -= values[k] * x[c];
      } else if (c == r) {
        diag = values[k];
        break;  // columns are sorted: nothing below-diagonal remains
      } else {
        break;
      }
    }
    FEM2_CHECK(diag != 0.0);
    x[r] = acc / diag;
  }
  return x;
}

Vector upper_triangular_solve(const CsrMatrix& a, std::span<const double> b) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK(b.size() == a.rows());
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const std::size_t n = a.rows();
  Vector x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    double diag = 0.0;
    for (std::size_t k = row_ptr[ri]; k < row_ptr[ri + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c > ri) {
        acc -= values[k] * x[c];
      } else if (c == ri) {
        diag = values[k];
      }
    }
    FEM2_CHECK(diag != 0.0);
    x[ri] = acc / diag;
  }
  return x;
}

}  // namespace fem2::la
