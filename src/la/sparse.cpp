#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace fem2::la {

TripletBuilder::TripletBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void TripletBuilder::add(std::size_t row, std::size_t col, double value) {
  FEM2_CHECK(row < rows_ && col < cols_);
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

CsrMatrix TripletBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    row_ptr[r] = values.size();
    while (i < sorted.size() && sorted[i].row == r) {
      const std::size_t c = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        sum += sorted[i].value;
        ++i;
      }
      if (sum != 0.0) {
        col_idx.push_back(c);
        values.push_back(sum);
      }
    }
  }
  row_ptr[rows_] = values.size();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  FEM2_CHECK(row_ptr_.size() == rows_ + 1);
  FEM2_CHECK(col_idx_.size() == values_.size());
  FEM2_CHECK(row_ptr_.back() == values_.size());
}

Vector CsrMatrix::multiply(std::span<const double> x) const {
  Vector y(rows_, 0.0);
  multiply_rows(x, 0, rows_, y);
  return y;
}

void CsrMatrix::multiply_rows(std::span<const double> x, std::size_t row_begin,
                              std::size_t row_end, std::span<double> y) const {
  FEM2_CHECK(x.size() == cols_);
  FEM2_CHECK(row_begin <= row_end && row_end <= rows_);
  FEM2_CHECK(y.size() >= row_end - row_begin);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_idx_[k]];
    y[r - row_begin] = acc;
  }
}

double CsrMatrix::value_at(std::size_t row, std::size_t col) const {
  FEM2_CHECK(row < rows_ && col < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = value_at(i, i);
  return d;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) = values_[k];
  return m;
}

void CsrMatrix::row(std::size_t r, std::span<const std::size_t>& cols,
                    std::span<const double>& vals) const {
  FEM2_CHECK(r < rows_);
  const std::size_t begin = row_ptr_[r];
  const std::size_t count = row_ptr_[r + 1] - begin;
  cols = {col_idx_.data() + begin, count};
  vals = {values_.data() + begin, count};
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (std::abs(values_[k] - value_at(col_idx_[k], r)) > tol) return false;
  return true;
}

std::size_t CsrMatrix::storage_bytes() const {
  return values_.size() * sizeof(double) +
         col_idx_.size() * sizeof(std::size_t) +
         row_ptr_.size() * sizeof(std::size_t);
}

}  // namespace fem2::la
