#include "la/precond.hpp"

#include <algorithm>

#include "la/vec_ops.hpp"
#include "support/check.hpp"

namespace fem2::la {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  FEM2_CHECK(a.rows() == a.cols());
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    FEM2_CHECK_MSG(d != 0.0, "zero diagonal with Jacobi preconditioner");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  hadamard(inv_diag_, r, z);
}

TwoLevelPreconditioner::TwoLevelPreconditioner(const CsrMatrix& a,
                                               const TwoLevelOptions& options)
    : a_(a) {
  FEM2_CHECK(a.rows() == a.cols());
  FEM2_CHECK_MSG(options.smoothing_omega > 0.0,
                 "two-level smoothing weight must be positive");
  const std::size_t n = a.rows();
  FEM2_CHECK(n > 0);
  omega_ = options.smoothing_omega;

  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    FEM2_CHECK_MSG(d != 0.0, "zero diagonal with two-level preconditioner");
    d = 1.0 / d;
  }

  if (options.aggregate_of.empty()) {
    // Piecewise-constant aggregation over contiguous index blocks.  Mesh
    // dof numbering is spatially coherent, so contiguous blocks approximate
    // geometric subdomains without needing mesh topology here.
    const std::size_t target = std::clamp<std::size_t>(options.coarse_dofs, 1, n);
    const std::size_t block = (n + target - 1) / target;
    aggregate_of_.resize(n);
    for (std::size_t i = 0; i < n; ++i) aggregate_of_[i] = i / block;
  } else {
    FEM2_CHECK_MSG(options.aggregate_of.size() == n,
                   "aggregate map size must equal matrix size");
    aggregate_of_ = options.aggregate_of;
  }
  // Compact aggregate ids to 0..nc-1 (id order preserved) so every coarse
  // row is non-empty — an empty aggregate would zero a diagonal of A_c.
  {
    std::vector<std::size_t> ids = aggregate_of_;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::size_t& a : aggregate_of_)
      a = static_cast<std::size_t>(
          std::lower_bound(ids.begin(), ids.end(), a) - ids.begin());
  }
  const std::size_t nc =
      1 + *std::max_element(aggregate_of_.begin(), aggregate_of_.end());

  // Galerkin coarse operator A_c = R A Rᵀ: one pass over the nonzeros.
  DenseMatrix coarse(nc, nc);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t ar = aggregate_of_[r];
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      coarse(ar, aggregate_of_[col_idx[k]]) += values[k];
  }
  // Throws if A_c is not SPD (e.g. A itself was not).
  coarse_ = std::make_unique<CholeskyFactorization>(coarse);
}

void TwoLevelPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  const std::size_t n = aggregate_of_.size();
  FEM2_CHECK(r.size() == n && z.size() == n);

  // Pre-smooth: z = ω D⁻¹ r.
  for (std::size_t i = 0; i < n; ++i) z[i] = omega_ * inv_diag_[i] * r[i];

  // Coarse correction on the smoothed residual: z += Rᵀ A_c⁻¹ R (r − A z).
  Vector az = a_.multiply(z);
  Vector rc(coarse_->size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) rc[aggregate_of_[i]] += r[i] - az[i];
  const Vector xc = coarse_->solve(rc);
  for (std::size_t i = 0; i < n; ++i) z[i] += xc[aggregate_of_[i]];

  // Post-smooth with the same weight; the symmetric sandwich keeps M SPD.
  az = a_.multiply(z);
  for (std::size_t i = 0; i < n; ++i)
    z[i] += omega_ * inv_diag_[i] * (r[i] - az[i]);
}

}  // namespace fem2::la
