// Compressed sparse row storage.
//
// Two assembly paths feed a CsrMatrix:
//  * TripletBuilder — one-shot: accumulate (row, col, value) triplets
//    (duplicates sum, as element contributions do) and compress.
//  * SparsityPattern + CsrAssembler — symbolic-then-numeric: the pattern
//    (row_ptr / col_idx) is built once per mesh and shared between every
//    numeric fill, so per-step assembly touches only the value array.
//    This is the MiniFE-style split the FEM assembly pipeline uses.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "la/dense.hpp"
#include "la/vec_ops.hpp"

namespace fem2::la {

/// Immutable CSR index structure: row pointers plus per-row sorted, unique
/// column indices.  Shared (via shared_ptr) between every matrix assembled
/// on the same mesh, so repeated numeric fills copy no index data.
class SparsityPattern {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SparsityPattern() = default;
  /// col_idx must be sorted and unique within each row.
  SparsityPattern(std::size_t rows, std::size_t cols,
                  std::vector<std::size_t> row_ptr,
                  std::vector<std::size_t> col_idx);

  /// Build from unsorted (row, col) pairs; duplicates collapse.
  static SparsityPattern from_pairs(
      std::size_t rows, std::size_t cols,
      std::vector<std::pair<std::size_t, std::size_t>> pairs);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return col_idx_.size(); }

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::size_t> col_idx() const { return col_idx_; }

  /// Offset of (row, col) in the value array, or npos if absent.
  std::size_t find(std::size_t row, std::size_t col) const;

  std::size_t storage_bytes() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
};

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix;

class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entries() const { return triplets_.size(); }

  /// Compress into CSR: duplicates summed, explicit zeros dropped.
  CsrMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);
  /// Numeric values over a shared symbolic pattern (zero index copies).
  CsrMatrix(std::shared_ptr<const SparsityPattern> pattern,
            std::vector<double> values);

  std::size_t rows() const { return pattern_ ? pattern_->rows() : 0; }
  std::size_t cols() const { return pattern_ ? pattern_->cols() : 0; }
  std::size_t nonzeros() const { return values_.size(); }

  Vector multiply(std::span<const double> x) const;  ///< y = A x

  /// y = A x restricted to rows [row_begin, row_end) — the kernel the
  /// distributed matvec (navm) runs per shard.
  void multiply_rows(std::span<const double> x, std::size_t row_begin,
                     std::size_t row_end, std::span<double> y) const;

  Vector multiply_transpose(std::span<const double> x) const;  ///< y = Aᵀ x

  double value_at(std::size_t row, std::size_t col) const;  ///< 0 if absent

  Vector diagonal() const;

  DenseMatrix to_dense() const;

  const SparsityPattern& pattern() const { return *pattern_; }
  std::shared_ptr<const SparsityPattern> pattern_ptr() const {
    return pattern_;
  }

  std::span<const std::size_t> row_ptr() const { return pattern_->row_ptr(); }
  std::span<const std::size_t> col_idx() const { return pattern_->col_idx(); }
  std::span<const double> values() const { return values_; }

  /// Nonzeros in one row as parallel spans.
  void row(std::size_t r, std::span<const std::size_t>& cols,
           std::span<const double>& vals) const;

  bool is_symmetric(double tol = 1e-12) const;

  /// Estimated bytes of storage (values + indices + row pointers).
  std::size_t storage_bytes() const;

 private:
  std::shared_ptr<const SparsityPattern> pattern_;
  std::vector<double> values_;
};

/// Numeric assembly over a fixed SparsityPattern: zero the values, scatter
/// element contributions (accumulating duplicates), take the matrix.
/// add() binary-searches the row; add_at() scatters by a precomputed
/// offset (see fem::AssemblyPlan) and is branch-free.
class CsrAssembler {
 public:
  explicit CsrAssembler(std::shared_ptr<const SparsityPattern> pattern);

  /// Zero all values for the next numeric pass.
  void reset();

  void add(std::size_t row, std::size_t col, double value);
  void add_at(std::size_t offset, double value) { values_[offset] += value; }

  const SparsityPattern& pattern() const { return *pattern_; }

  /// The assembled matrix (shares the pattern; copies the values so the
  /// assembler can keep filling future steps).
  CsrMatrix matrix() const { return CsrMatrix(pattern_, values_); }

  /// Move the values out (final step of a single-shot assembly).
  CsrMatrix take_matrix() { return CsrMatrix(pattern_, std::move(values_)); }

 private:
  std::shared_ptr<const SparsityPattern> pattern_;
  std::vector<double> values_;
};

/// Solve L x = b with L the lower-triangular part (diagonal included) of
/// `a`; entries above the diagonal are ignored.  Requires a nonzero
/// diagonal.  Building block for Gauss-Seidel-style smoothers.
Vector lower_triangular_solve(const CsrMatrix& a, std::span<const double> b);

/// Solve U x = b with U the upper-triangular part (diagonal included).
Vector upper_triangular_solve(const CsrMatrix& a, std::span<const double> b);

}  // namespace fem2::la
