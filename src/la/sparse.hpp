// Compressed sparse row storage.  FEM stiffness matrices are assembled into
// a TripletBuilder (duplicate entries accumulate, as element contributions
// do) and compressed into an immutable CsrMatrix for solves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/dense.hpp"
#include "la/vec_ops.hpp"

namespace fem2::la {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix;

class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entries() const { return triplets_.size(); }

  /// Compress into CSR: duplicates summed, explicit zeros dropped.
  CsrMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  Vector multiply(std::span<const double> x) const;  ///< y = A x

  /// y = A x restricted to rows [row_begin, row_end) — the kernel the
  /// distributed matvec (navm) runs per shard.
  void multiply_rows(std::span<const double> x, std::size_t row_begin,
                     std::size_t row_end, std::span<double> y) const;

  double value_at(std::size_t row, std::size_t col) const;  ///< 0 if absent

  Vector diagonal() const;

  DenseMatrix to_dense() const;

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::size_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// Nonzeros in one row as parallel spans.
  void row(std::size_t r, std::span<const std::size_t>& cols,
           std::span<const double>& vals) const;

  bool is_symmetric(double tol = 1e-12) const;

  /// Estimated bytes of storage (values + indices + row pointers).
  std::size_t storage_bytes() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace fem2::la
