// Skyline (profile) storage and Cholesky factorization — the direct solver
// of choice in 1980s finite-element codes.  Only the entries between each
// column's first nonzero row and the diagonal are stored; fill-in during
// factorization stays inside the profile.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/sparse.hpp"
#include "la/vec_ops.hpp"

namespace fem2::la {

/// Symmetric positive-definite matrix in skyline (column profile) form.
class SkylineMatrix {
 public:
  /// Build from the envelope of a symmetric CSR matrix.
  static SkylineMatrix from_csr(const CsrMatrix& a);

  /// Build an empty skyline from per-column first-row indices
  /// (first_row[j] <= j; column j stores rows first_row[j]..j).
  explicit SkylineMatrix(std::vector<std::size_t> first_row);

  std::size_t size() const { return first_row_.size(); }

  /// Entry (i, j) with i <= j inside the profile.
  double& at(std::size_t i, std::size_t j);
  double value_at(std::size_t i, std::size_t j) const;  ///< 0 outside profile

  /// Stored coefficients (profile entries only).
  std::size_t profile_entries() const { return values_.size(); }
  std::size_t storage_bytes() const;

  /// In-place L Lᵀ factorization.  Throws support::Error if not SPD.
  void factorize();
  bool factorized() const { return factorized_; }

  /// Solve A x = b using the factorization (factorize() must have run).
  Vector solve(std::span<const double> b) const;

  /// Mean/max column height of the profile (bandwidth statistics).
  double mean_column_height() const;
  std::size_t max_column_height() const;

 private:
  std::size_t col_height(std::size_t j) const { return j - first_row_[j] + 1; }

  std::vector<std::size_t> first_row_;  ///< first stored row per column
  std::vector<std::size_t> col_ptr_;    ///< offset of column j's first entry
  std::vector<double> values_;          ///< column-major profile entries
  bool factorized_ = false;
};

}  // namespace fem2::la
