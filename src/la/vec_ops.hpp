// Vector kernels.  Vectors are plain std::vector<double>; kernels take
// std::span so distributed-array shards (src/navm) reuse them unchanged.
//
// The kernels are written SIMD-friendly: unit-stride loops over raw
// pointers with multiple independent accumulators, no aliasing between
// inputs and outputs (except where documented), and no shared mutable
// state — the multi-threaded host backend calls them concurrently on
// disjoint lanes without locking.  Reduction order is fixed (4-way
// unrolled), so results are bit-identical at any host thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fem2::la {

using Vector = std::vector<double>;

double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = x + alpha * y (in place) — the CG direction update p = z + beta p.
void xpay(std::span<const double> x, double alpha, std::span<double> y);

/// x *= alpha
void scale(double alpha, std::span<double> x);

/// z = x .* y (elementwise) — diagonal preconditioner application.
void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z);

double norm2(std::span<const double> x);

double norm_inf(std::span<const double> x);

/// z = x - y
Vector subtract(std::span<const double> x, std::span<const double> y);

/// z = x + y
Vector add(std::span<const double> x, std::span<const double> y);

/// y[r - row_begin] = sum_k values[k] * x[col_idx[k]] over CSR rows
/// [row_begin, row_end).  The raw CSR SpMV kernel: CsrMatrix and the
/// per-lane distributed matvec both call it; each lane owns a disjoint
/// row range and a disjoint output slice, so no synchronization is needed.
void spmv_rows(std::span<const std::size_t> row_ptr,
               std::span<const std::size_t> col_idx,
               std::span<const double> values, std::span<const double> x,
               std::size_t row_begin, std::size_t row_end,
               std::span<double> y);

}  // namespace fem2::la
