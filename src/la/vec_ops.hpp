// Vector kernels.  Vectors are plain std::vector<double>; kernels take
// std::span so distributed-array shards (src/navm) reuse them unchanged.
#pragma once

#include <span>
#include <vector>

namespace fem2::la {

using Vector = std::vector<double>;

double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scale(double alpha, std::span<double> x);

double norm2(std::span<const double> x);

double norm_inf(std::span<const double> x);

/// z = x - y
Vector subtract(std::span<const double> x, std::span<const double> y);

/// z = x + y
Vector add(std::span<const double> x, std::span<const double> y);

}  // namespace fem2::la
